"""Render the Fig.-2 panels from benchmark series files — the analogue of
the paper artifact's ``python comparison.py -dirname <dir>`` step.

The artifact gathers google-benchmark JSON files and plots the six GLUPS
panels as PNGs; here the ``benchmarks/bench_fig2_glups.py`` run writes
series text files into ``benchmarks/results/`` and this tool renders them
into ASCII log-log panels (``fig2_panels.txt``), one panel per
device x library, one glyph per spline configuration.

Usage:
    python tools/comparison.py [-dirname benchmarks/results]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.bench.plot import parse_series_file, render_panels  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-dirname", default="benchmarks/results",
        help="directory containing fig2_*.txt series files",
    )
    args = parser.parse_args(argv)
    dirname = pathlib.Path(args.dirname)
    inputs = sorted(dirname.glob("fig2_glups_*.txt"))
    inputs = [p for p in inputs if p.name != "fig2_panels.txt"]
    if not inputs:
        print(f"no fig2_glups_*.txt files under {dirname}; run "
              "`pytest benchmarks/bench_fig2_glups.py --benchmark-disable` first")
        return 1
    series = {}
    for path in inputs:
        series.update(parse_series_file(path.read_text()))
    out = render_panels(series)
    target = dirname / "fig2_panels.txt"
    target.write_text(out + "\n")
    print(out)
    print(f"\n[{len(series)} series from {len(inputs)} files -> {target}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
