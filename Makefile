# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench reports figures examples all clean

install:
	pip install -e .

# Same suite as bare `pytest` and CI: tests/ + benchmarks/ (testpaths).
test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reports:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q
	$(PYTHON) tools/comparison.py -dirname benchmarks/results

figures: reports

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/characteristics_advection.py 0 3
	$(PYTHON) examples/advection_1d.py 256 1024 3
	$(PYTHON) examples/nonuniform_mesh.py
	$(PYTHON) examples/spline2d_field.py
	$(PYTHON) examples/portability_report.py

# The paper-sized run (slower; the sizes of §IV).
paper-size:
	REPRO_NX=1000 REPRO_NV=100000 $(PYTHON) -m pytest \
		benchmarks/bench_table3_optimizations.py --benchmark-disable -q -s

all: test reports bench

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
