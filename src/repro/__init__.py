"""repro — performance-portable batched spline solver (SC 2024 reproduction).

This package reproduces, in pure NumPy, the system described in
"Development of performance portable spline solver for exa-scale plasma
turbulence simulation" (Asahi et al., SC 2024):

* :mod:`repro.xspace` — a miniature Kokkos-like execution-space / View layer
  (layouts, subviews, ``parallel_for`` over the batch dimension).
* :mod:`repro.kbatched` — the Kokkos-kernels analogue: batched *serial*
  LAPACK-style solvers (``getrf/getrs``, ``gbtrf/gbtrs``, ``pbtrf/pbtrs``,
  ``pttrf/pttrs``), BLAS kernels (``gemm``, ``gemv``), COO sparse storage and
  ``spmv`` — each with a reference ``serial`` backend and a
  batch-``vectorized`` backend.
* :mod:`repro.iterative` — the Ginkgo analogue: CSR storage, CG / BiCG /
  BiCGStab / GMRES solvers, Jacobi and block-Jacobi preconditioners,
  convergence logging and chunk-pipelined multi-RHS application.
* :mod:`repro.core` — the paper's contribution: periodic B-spline bases
  (uniform and non-uniform, degrees 3-5), interpolation-matrix assembly and
  classification, the Schur-complement :class:`~repro.core.SplineBuilder`
  with the paper's three optimization versions (baseline / fused / spmv),
  an iterative :class:`~repro.core.GinkgoSplineBuilder`, and batched spline
  evaluation.
* :mod:`repro.advection` — the benchmark application: 1-D batched
  semi-Lagrangian advection (Algorithm 2) and a 2-D Vlasov–Poisson solver.
* :mod:`repro.runtime` — the batched solve engine: a plan cache (factor
  once per spline-space configuration), request coalescing into
  paper-scale batches, a bounded thread pool with backpressure and
  deadlines, and telemetry.
* :mod:`repro.perfmodel` — hardware catalog, roofline model, GLUPS /
  bandwidth metrics, the Pennycook performance-portability metric and an
  analytical device simulator standing in for A100 / MI250X hardware.
* :mod:`repro.verify` — the numerical verification layer: backward-error
  residual checks from the banded operator, Hager/Higham condition
  estimation, differential oracles across backends / versions / solver
  families, and the ``python -m repro.verify`` scoreboard sweep.

Quickstart::

    import numpy as np
    from repro import SplineBuilder, BSplineSpec

    spec = BSplineSpec(degree=3, n_points=64, uniform=True)
    builder = SplineBuilder(spec, version=2)
    values = np.sin(2 * np.pi * builder.interpolation_points())[:, None]
    coeffs = builder.solve(values)            # in-place semantics, like the paper
"""

from repro._version import __version__

#: Lazy (PEP 562) re-exports.  Importing ``repro`` must stay cheap and —
#: more importantly — must not make unrelated subpackages hostage to each
#: other: ``import repro.xspace`` should succeed even if something inside
#: ``repro.core`` is broken, so the heavy convenience names below resolve
#: only on first attribute access.
_LAZY_EXPORTS = {
    "BSplineSpec": "repro.core",
    "SplineBuilder": "repro.core",
    "GinkgoSplineBuilder": "repro.core",
    "SplineEvaluator": "repro.core",
    "SolveEngine": "repro.runtime",
    "EngineConfig": "repro.runtime",
    "PlanCache": "repro.runtime",
    "Telemetry": "repro.runtime",
    "ResidualChecker": "repro.verify",
    "BandedOperator": "repro.verify",
    "run_oracles": "repro.verify",
    "condest_from_solver": "repro.verify",
}

__all__ = [
    "__version__",
    "BSplineSpec",
    "SplineBuilder",
    "GinkgoSplineBuilder",
    "SplineEvaluator",
    "SolveEngine",
    "EngineConfig",
    "PlanCache",
    "Telemetry",
    "ResidualChecker",
    "BandedOperator",
    "run_oracles",
    "condest_from_solver",
]


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
