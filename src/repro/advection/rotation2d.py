"""2-D semi-Lagrangian advection: solid-body rotation.

The classic two-dimensional validation of a semi-Lagrangian interpolation
stack: rotate a profile around the domain centre with the exact backward
characteristic

.. math::

    (x, y)^* = R(-ω Δt) · (x - c, y - c) + c,

build a full 2-D tensor-product spline each step and evaluate it at the
feet.  After a full revolution the field must return to its initial state
up to interpolation error — a demanding test because the feet are nowhere
aligned with the grid.

Unlike the split Vlasov solver this uses *genuinely 2-D* interpolation
(:class:`~repro.core.SplineBuilder2D` + per-point evaluation), exercising
the tensor-product machinery end to end.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder.builder2d import SplineBuilder2D
from repro.core.evaluator.evaluator2d import SplineEvaluator2D
from repro.core.spec import BSplineSpec
from repro.exceptions import ShapeError


class RotationAdvection2D:
    """Rotates a field ``f(x, y)`` at angular speed *omega* about the
    domain centre, one full 2-D spline build + evaluation per step.

    The domain must be square and periodic; the rotated profile should be
    compactly supported inside the inscribed circle so its periodic images
    never interfere (the classic set-up).
    """

    def __init__(
        self,
        n: int = 64,
        degree: int = 3,
        omega: float = 2.0 * np.pi,
        version: int = 2,
    ):
        self.builder = SplineBuilder2D(
            BSplineSpec(degree=degree, n_points=n),
            BSplineSpec(degree=degree, n_points=n),
            version=version,
        )
        self.evaluator = SplineEvaluator2D(self.builder.space_x,
                                           self.builder.space_y)
        self.omega = float(omega)
        gx, gy = self.builder.interpolation_points()
        self.gx, self.gy = gx, gy
        self.xx, self.yy = np.meshgrid(gx, gy, indexing="ij")
        self.centre = 0.5

    def feet(self, dt: float):
        """Exact backward-rotated foot of every grid point."""
        c, s = np.cos(-self.omega * dt), np.sin(-self.omega * dt)
        dx = self.xx - self.centre
        dy = self.yy - self.centre
        fx = c * dx - s * dy + self.centre
        fy = s * dx + c * dy + self.centre
        return fx, fy

    def step(self, f: np.ndarray, dt: float) -> np.ndarray:
        """One rotation step; returns the advanced field ``f[ix, iy]``."""
        if f.shape != (self.builder.nx, self.builder.ny):
            raise ShapeError(
                f"field must have shape ({self.builder.nx}, {self.builder.ny}), "
                f"got {f.shape}"
            )
        coeffs = self.builder.solve(f)
        fx, fy = self.feet(dt)
        vals = self.evaluator.eval_points(coeffs, fx.ravel(), fy.ravel())
        return vals.reshape(f.shape)

    def run(self, f: np.ndarray, dt: float, steps: int) -> np.ndarray:
        for _ in range(steps):
            f = self.step(f, dt)
        return f

    def gaussian(self, x0: float = 0.65, y0: float = 0.5,
                 sigma: float = 0.06) -> np.ndarray:
        """A compact Gaussian blob offset from the rotation centre."""
        return np.exp(
            -((self.xx - x0) ** 2 + (self.yy - y0) ** 2) / (2.0 * sigma**2)
        )

    def exact(self, t: float, x0: float = 0.65, y0: float = 0.5,
              sigma: float = 0.06) -> np.ndarray:
        """The rotated blob at time *t* (exact solution)."""
        c, s = np.cos(self.omega * t), np.sin(self.omega * t)
        cx = self.centre + c * (x0 - self.centre) - s * (y0 - self.centre)
        cy = self.centre + s * (x0 - self.centre) + c * (y0 - self.centre)
        return np.exp(
            -((self.xx - cx) ** 2 + (self.yy - cy) ** 2) / (2.0 * sigma**2)
        )
