"""Layout transposes around the spline solve (Algorithm 2, lines 3 & 5).

The distribution function is stored batch-major — ``f[v_j, x_i]`` with the
``x`` dimension contiguous per batch row, the "contiguous row-major layout"
the paper keeps for both CPUs and GPUs — while the batched solvers want the
``(n, batch)`` orientation with the *batch* contiguous.  The paper pays two
explicit transpose kernels per step for this; we reproduce them as real
materializing copies (``np.ascontiguousarray`` of the transpose) so the
benchmark's timed pipeline has the same stages.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def transpose_to_x_major(f_batch_major: np.ndarray) -> np.ndarray:
    """``f[v, x] → f_T[x, v]`` with a contiguous copy (solver orientation)."""
    if f_batch_major.ndim != 2:
        raise ShapeError(f"expected a 2-D field, got shape {f_batch_major.shape}")
    return np.ascontiguousarray(f_batch_major.T)


def transpose_to_batch_major(f_x_major: np.ndarray) -> np.ndarray:
    """``f_T[x, v] → f[v, x]`` with a contiguous copy (storage orientation)."""
    if f_x_major.ndim != 2:
        raise ShapeError(f"expected a 2-D field, got shape {f_x_major.shape}")
    return np.ascontiguousarray(f_x_major.T)
