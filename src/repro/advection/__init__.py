"""Semi-Lagrangian advection — the paper's benchmark application.

:class:`~repro.advection.semilag.BatchedAdvection1D` is Algorithm 2: one
time step of 1-D advection of a batched distribution function
``f(x_i, v_j)`` where every batch row ``v_j`` advects at its own constant
speed — the x-advection sub-step of a split Vlasov solve.  It strings
together the full spline-interpolation pipeline: transpose → build splines
→ transpose back → evaluate at the feet of the characteristics.

:class:`~repro.advection.vlasov.VlasovPoisson1D1V` composes two of those
advections with an FFT Poisson solve into the actual physics application
GYSELA's intro motivates: a 1D1V Vlasov–Poisson solver (Landau damping,
two-stream instability), using Strang splitting.
"""

from repro.advection.characteristics import feet_constant_advection
from repro.advection.transpose import transpose_to_batch_major, transpose_to_x_major
from repro.advection.semilag import AdvectionResult, BatchedAdvection1D
from repro.advection.ndbatch import AxisAdvection
from repro.advection.rotation2d import RotationAdvection2D
from repro.advection.variable import VariableSpeedAdvection1D
from repro.advection.vlasov import VlasovDiagnostics, VlasovPoisson1D1V

__all__ = [
    "feet_constant_advection",
    "transpose_to_batch_major",
    "transpose_to_x_major",
    "BatchedAdvection1D",
    "AdvectionResult",
    "AxisAdvection",
    "RotationAdvection2D",
    "VariableSpeedAdvection1D",
    "VlasovPoisson1D1V",
    "VlasovDiagnostics",
]
