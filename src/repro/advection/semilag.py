"""1-D batched semi-Lagrangian advection — Algorithm 2.

One time step advances ``f(x_i, v_j)`` (stored batch-major as
``f[v_j, x_i]``) by:

1. transpose to the solver orientation ``f_T[x, v]``;
2. solve ``A η_T = f_T`` for the spline coefficients (the batched spline
   builder — direct or iterative);
3. transpose the coefficients back;
4. for every ``(x_i, v_j)`` evaluate the spline at the foot
   ``x_i − v_j Δt`` (periodic wrap) — the interpolated value is
   ``f^{n+1}(x_i, v_j)``.

Steps 1-3 are the *spline building* the paper optimizes; step 4 is the
*interpolation*.  Both are timed separately so GLUPS (Eq. 7) and the
building-kernel bandwidth (Table V) can be extracted from the same run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.advection.characteristics import feet_constant_advection
from repro.advection.transpose import transpose_to_batch_major, transpose_to_x_major
from repro.core.builder.builder import SplineBuilder
from repro.core.builder.ginkgo_builder import GinkgoSplineBuilder
from repro.core.evaluator.evaluator import SplineEvaluator
from repro.exceptions import ShapeError

BuilderLike = Union[SplineBuilder, GinkgoSplineBuilder]


@dataclass
class AdvectionResult:
    """Timing breakdown accumulated over the steps of one run."""

    steps: int = 0
    seconds_total: float = 0.0
    seconds_transpose: float = 0.0
    seconds_solve: float = 0.0
    seconds_interpolate: float = 0.0

    def accumulate(self, transpose: float, solve: float, interp: float) -> None:
        self.steps += 1
        self.seconds_transpose += transpose
        self.seconds_solve += solve
        self.seconds_interpolate += interp
        self.seconds_total += transpose + solve + interp

    def glups(self, nx: int, nv: int) -> float:
        """Giga lattice updates per second over the whole pipeline (Eq. 7)."""
        if self.seconds_total == 0.0:
            return 0.0
        return nx * nv * self.steps * 1e-9 / self.seconds_total

    def solve_bandwidth_gbs(self, nx: int, nv: int) -> float:
        """Achieved spline-building bandwidth (§V-B): one load + store of
        the right-hand sides, ``N_x · N_v · 8 / t`` bytes per second."""
        if self.seconds_solve == 0.0:
            return 0.0
        return nx * nv * 8.0 * self.steps / self.seconds_solve / 1e9


class BatchedAdvection1D:
    """Semi-Lagrangian advection of a batched field along its x dimension.

    Parameters
    ----------
    builder:
        A spline builder for the x grid (direct
        :class:`~repro.core.SplineBuilder` or iterative
        :class:`~repro.core.GinkgoSplineBuilder`).
    velocities:
        Per-batch advection speeds ``v_j``, shape ``(nv,)``.
    dt:
        Time-step size.
    engine:
        Optional :class:`~repro.runtime.SolveEngine`.  When given, the
        per-step ``(nx, nv)`` spline build is routed through the engine's
        bulk path (``map_batches``): the factorization comes from the
        shared plan cache and the solve lands in the engine's telemetry
        alongside every other caller's.  Requires a direct
        :class:`~repro.core.SplineBuilder` constructed from a
        :class:`~repro.core.spec.BSplineSpec`, and is mutually exclusive
        with *fuse_transpose* (the fused path solves in the storage
        layout, which the engine does not reorder).
    """

    def __init__(
        self,
        builder: BuilderLike,
        velocities: np.ndarray,
        dt: float,
        evaluator: Optional[SplineEvaluator] = None,
        fuse_transpose: bool = False,
        engine=None,
    ):
        if fuse_transpose and not hasattr(builder, "solve_transposed"):
            raise ShapeError(
                "fuse_transpose requires a builder with solve_transposed "
                "(the direct SplineBuilder)"
            )
        if engine is not None:
            if fuse_transpose:
                raise ValueError(
                    "engine routing and fuse_transpose are mutually exclusive"
                )
            if getattr(builder, "spec", None) is None:
                raise ValueError(
                    "engine routing needs a SplineBuilder constructed from "
                    "a BSplineSpec (so the plan cache can key it)"
                )
        self.engine = engine
        #: §V-C's proposed optimization: solve in the storage layout via
        #: cache-sized slabs, skipping the full materializing transposes.
        self.fuse_transpose = fuse_transpose
        self.builder = builder
        self.velocities = np.asarray(velocities, dtype=np.float64)
        if self.velocities.ndim != 1:
            raise ShapeError(f"velocities must be 1-D, got {self.velocities.shape}")
        self.dt = float(dt)
        self.evaluator = evaluator or SplineEvaluator(builder.space_1d)
        self.x = builder.interpolation_points()
        #: Feet of characteristics, fixed for constant-speed advection.
        self.feet = feet_constant_advection(self.x, self.velocities, self.dt)
        self.result = AdvectionResult()

    @property
    def nx(self) -> int:
        return self.x.size

    @property
    def nv(self) -> int:
        return self.velocities.size

    def step(self, f: np.ndarray) -> np.ndarray:
        """Advance ``f[v_j, x_i]`` by one time step; returns the new field."""
        if f.shape != (self.nv, self.nx):
            raise ShapeError(
                f"field must have shape (nv={self.nv}, nx={self.nx}), got {f.shape}"
            )
        t0 = time.perf_counter()
        if self.fuse_transpose:
            # Fused path: coefficients stay batch-major; only the post-
            # evaluation transpose remains.
            eta_bm = np.array(f, dtype=np.float64, copy=True)
            t1 = time.perf_counter()
            self.builder.solve_transposed(eta_bm)
            t2 = time.perf_counter()
            new_t = self.evaluator.eval_batched(
                eta_bm, self.feet, coeffs_batch_major=True
            )
            t3 = time.perf_counter()
            out = transpose_to_batch_major(new_t)
            t4 = time.perf_counter()
            self.result.accumulate(
                transpose=(t1 - t0) + (t4 - t3), solve=t2 - t1, interp=t3 - t2
            )
            return out
        f_t = transpose_to_x_major(f)  # (nx, nv), batch contiguous
        t1 = time.perf_counter()
        if self.engine is not None:
            # Bulk path: one (nx, nv) block through the shared engine.
            eta = self.engine.map_batches(
                self.builder.spec,
                [f_t],
                version=self.builder.version,
                dtype=self.builder.dtype,
                backend=self.builder.backend,
            )[0]
        else:
            self.builder.solve(f_t, in_place=True)  # η_T overwrites f_T
            eta = f_t
        t2 = time.perf_counter()
        new_t = self.evaluator.eval_batched(eta, self.feet)  # (nx, nv)
        t3 = time.perf_counter()
        out = transpose_to_batch_major(new_t)
        t4 = time.perf_counter()
        self.result.accumulate(
            transpose=(t1 - t0) + (t4 - t3), solve=t2 - t1, interp=t3 - t2
        )
        return out

    def run(self, f: np.ndarray, steps: int) -> np.ndarray:
        """Advance *steps* time steps, returning the final field."""
        for _ in range(steps):
            f = self.step(f)
        return f

    def exact_solution(self, f0_callable, t: float) -> np.ndarray:
        """Exact field at time *t* for initial profile ``f0(x)`` advected at
        each ``v_j``: ``f(x, v_j, t) = f0(x − v_j t)`` (periodic)."""
        shifted = self.x[None, :] - t * self.velocities[:, None]
        return f0_callable(self.builder.space_1d.wrap(shifted))
