"""Batched advection of one axis of an N-dimensional field.

This is the paper's actual production shape (§II-B): GYSELA's distribution
function is 5-D; a 1-D spline interpolation runs along the dimension of
interest while *all* remaining dimensions are flattened into the
embarrassingly parallel batch ("the number of batches can be 10¹² =
(10³)⁴").  :class:`AxisAdvection` wraps the 1-D machinery with the axis
moves and reshapes so callers advect ``f[..., x, ...]`` along any axis in
one call.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.core.builder.builder import SplineBuilder
from repro.core.builder.ginkgo_builder import GinkgoSplineBuilder
from repro.core.evaluator.evaluator import SplineEvaluator
from repro.exceptions import ShapeError

BuilderLike = Union[SplineBuilder, GinkgoSplineBuilder]


class AxisAdvection:
    """Semi-Lagrangian advection along one axis of an N-D field.

    Parameters
    ----------
    builder:
        Spline builder whose size matches the advected axis's extent.
    axis:
        Which axis of the input fields is the advected dimension.
    """

    def __init__(self, builder: BuilderLike, axis: int = 0):
        self.builder = builder
        self.axis = int(axis)
        self.evaluator = SplineEvaluator(builder.space_1d)
        self.x = builder.interpolation_points()

    def _to_solver_layout(self, f: np.ndarray) -> tuple:
        """Move the advected axis first and flatten the rest into batch."""
        if not -f.ndim <= self.axis < f.ndim:
            raise ShapeError(f"axis {self.axis} out of range for ndim {f.ndim}")
        moved = np.moveaxis(f, self.axis, 0)
        if moved.shape[0] != self.builder.n:
            raise ShapeError(
                f"axis {self.axis} has extent {moved.shape[0]}, but the "
                f"builder expects {self.builder.n}"
            )
        batch_shape = moved.shape[1:]
        # Always copy: the caller's field must never be mutated by the
        # in-place solve (ascontiguousarray would alias for axis == 0).
        flat = np.array(moved.reshape(self.builder.n, -1), dtype=np.float64,
                        copy=True)
        return flat, batch_shape

    def _from_solver_layout(self, flat: np.ndarray, batch_shape) -> np.ndarray:
        full = flat.reshape((self.builder.n,) + batch_shape)
        return np.ascontiguousarray(np.moveaxis(full, 0, self.axis))

    def interpolate_at(self, f: np.ndarray, feet: np.ndarray) -> np.ndarray:
        """Spline-interpolate *f* along the axis at per-point *feet*.

        ``feet`` must have the same shape as *f*: every element gives the
        (periodic) coordinate its new value is read from.  This is the
        fully general entry point — the advection field may depend on all
        dimensions.
        """
        if feet.shape != f.shape:
            raise ShapeError(
                f"feet shape {feet.shape} must match field shape {f.shape}"
            )
        flat, batch_shape = self._to_solver_layout(np.asarray(f, dtype=np.float64))
        feet_flat, _ = self._to_solver_layout(np.asarray(feet, dtype=np.float64))
        self.builder.solve(flat, in_place=True)
        out = self.evaluator.eval_batched(flat, feet_flat)
        return self._from_solver_layout(out, batch_shape)

    def advect_constant(self, f: np.ndarray, speed_of, dt: float) -> np.ndarray:
        """Advect with a speed that may depend on the *batch* indices but
        not on the advected coordinate (the Vlasov x-advection pattern).

        ``speed_of`` is either a scalar, an array broadcastable to the
        batch shape, or a callable receiving the batch-shape index grids.
        """
        f = np.asarray(f, dtype=np.float64)
        flat, batch_shape = self._to_solver_layout(f)
        if callable(speed_of):
            grids = np.meshgrid(
                *[np.arange(s) for s in batch_shape], indexing="ij"
            )
            speed = np.asarray(speed_of(*grids), dtype=np.float64)
        else:
            speed = np.broadcast_to(
                np.asarray(speed_of, dtype=np.float64), batch_shape
            )
        speed_flat = speed.reshape(-1)
        feet = self.x[:, None] - dt * speed_flat[None, :]
        self.builder.solve(flat, in_place=True)
        out = self.evaluator.eval_batched(flat, feet)
        return self._from_solver_layout(out, batch_shape)
