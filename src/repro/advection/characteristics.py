"""Backward characteristics for the semi-Lagrangian scheme (§II-A).

For the benchmark's constant-coefficient advection the characteristic
through ``(x_i, t_{n+1})`` with speed ``v_j`` lands exactly at
``x_i − v_j Δt`` — the first-order backward formula of §II-A is *exact*
here, so the only numerical error in the whole scheme is interpolation
error.  That property is what makes the 1-D advection test a clean probe of
the spline solver (and gives the test suite an analytic solution).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def feet_constant_advection(
    x: np.ndarray, v: np.ndarray, dt: float
) -> np.ndarray:
    """Feet of characteristics ``x_i − v_j Δt`` as an ``(nx, nv)`` array.

    Parameters
    ----------
    x:
        Grid points along the advected dimension, shape ``(nx,)``.
    v:
        Per-batch advection speeds, shape ``(nv,)``.
    dt:
        Time-step size.
    """
    x = np.asarray(x, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if x.ndim != 1 or v.ndim != 1:
        raise ShapeError(
            f"x and v must be 1-D, got shapes {x.shape} and {v.shape}"
        )
    return x[:, None] - dt * v[None, :]
