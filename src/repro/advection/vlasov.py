"""1D1V Vlasov–Poisson solver — the physics application around the kernels.

GYSELA solves a 5-D gyrokinetic Vlasov equation; its 1D1V reduction

.. math::

    \\partial_t f + v\\,\\partial_x f + E(x,t)\\,\\partial_v f = 0,
    \\qquad \\partial_x E = \\int f\\,dv - 1,

captures the same numerical structure: two directional advections, each a
*batched 1-D spline interpolation* problem along one dimension with the
other dimension embarrassingly parallel (§II-B).  Strang splitting is used:

    half x-advection → full v-advection (with E from the mid-state) →
    half x-advection.

The velocity domain ``[-vmax, vmax]`` is treated as periodic; with ``f``
decaying to ~0 well inside the boundary (Maxwellian tails) the periodic
images are negligible, which the diagnostics verify (mass conservation).

Classic test cases:

* **Landau damping** — ``f₀ = (1 + α cos(kx)) M(v)``; the electric-field
  energy decays at the analytic Landau rate.
* **Two-stream instability** — two counter-propagating beams; the field
  energy grows exponentially, then saturates into a phase-space vortex.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.advection.semilag import BatchedAdvection1D
from repro.core.builder.builder import SplineBuilder
from repro.core.evaluator.evaluator import SplineEvaluator
from repro.core.spec import BSplineSpec
from repro.exceptions import ShapeError


@dataclass
class VlasovDiagnostics:
    """Time series of the conserved / monitored quantities.

    Conservation expectations for the split semi-Lagrangian scheme:
    mass exactly (up to interpolation round-off), momentum exactly for the
    constant-E-per-column v-advection, total energy (kinetic + field) to
    the splitting order O(Δt²) per unit time.
    """

    times: List[float] = field(default_factory=list)
    mass: List[float] = field(default_factory=list)
    l2_norm: List[float] = field(default_factory=list)
    electric_energy: List[float] = field(default_factory=list)
    momentum: List[float] = field(default_factory=list)
    kinetic_energy: List[float] = field(default_factory=list)

    def record(self, t: float, mass: float, l2: float, ee: float,
               momentum: float = 0.0, kinetic: float = 0.0) -> None:
        self.times.append(t)
        self.mass.append(mass)
        self.l2_norm.append(l2)
        self.electric_energy.append(ee)
        self.momentum.append(momentum)
        self.kinetic_energy.append(kinetic)

    @property
    def total_energy(self) -> List[float]:
        """Kinetic + electric field energy per recorded time."""
        return [k + e for k, e in zip(self.kinetic_energy, self.electric_energy)]


class VlasovPoisson1D1V:
    """Strang-split semi-Lagrangian Vlasov–Poisson solver.

    The state is ``f[ix, iv]`` on a tensor grid: ``nx`` periodic points in
    ``x ∈ [0, Lx)`` and ``nv`` points in ``v ∈ [-vmax, vmax)``.

    Parameters
    ----------
    nx, nv:
        Grid sizes (each also the spline matrix size of one direction).
    lx:
        Spatial period.
    vmax:
        Velocity cut-off.
    degree:
        Spline degree used for both directions.
    version, uniform:
        Forwarded to the spline builders (the Vlasov solver exercises the
        same optimization versions as the micro-benchmarks).
    """

    def __init__(
        self,
        nx: int = 64,
        nv: int = 64,
        lx: float = 4.0 * np.pi,
        vmax: float = 6.0,
        degree: int = 3,
        version: int = 2,
        uniform: bool = True,
    ):
        self.spec_x = BSplineSpec(degree=degree, n_points=nx, uniform=uniform,
                                  xmin=0.0, xmax=lx)
        self.spec_v = BSplineSpec(degree=degree, n_points=nv, uniform=uniform,
                                  xmin=-vmax, xmax=vmax)
        self.builder_x = SplineBuilder(self.spec_x, version=version)
        self.builder_v = SplineBuilder(self.spec_v, version=version)
        self.eval_x = SplineEvaluator(self.builder_x.space_1d)
        self.eval_v = SplineEvaluator(self.builder_v.space_1d)
        self.x = self.builder_x.interpolation_points()
        self.v = self.builder_v.interpolation_points()
        order_x = np.argsort(self.x)
        order_v = np.argsort(self.v)
        # Keep grids sorted for quadrature / FFT; remember the permutation
        # back to builder ordering.
        self.x = self.x[order_x]
        self.v = self.v[order_v]
        self._order_x, self._order_v = order_x, order_v
        self.lx, self.vmax = float(lx), float(vmax)
        self.nx, self.nv = int(nx), int(nv)
        # Trapezoid weights on the (possibly non-uniform) sorted v grid,
        # periodic-style (last interval wraps with negligible f).
        dv = np.diff(np.concatenate([self.v, [self.v[0] + 2 * vmax]]))
        self.wv = 0.5 * (dv + np.roll(dv, 1))
        dx = np.diff(np.concatenate([self.x, [self.x[0] + lx]]))
        self.wx = 0.5 * (dx + np.roll(dx, 1))
        self.diagnostics = VlasovDiagnostics()
        self.time = 0.0

    # -- field solve -------------------------------------------------------
    def charge_density(self, f: np.ndarray) -> np.ndarray:
        """``ρ(x) = ∫ f dv`` by quadrature over the v grid."""
        return f @ self.wv

    def electric_field(self, f: np.ndarray) -> np.ndarray:
        """Solve ``∂x E = ρ − ⟨ρ⟩`` spectrally (periodic, zero-mean E).

        Uniform x grids use the FFT directly; non-uniform grids fall back
        to cumulative trapezoid integration with the mean removed.
        """
        rho = self.charge_density(f)
        rho = rho - np.sum(rho * self.wx) / self.lx  # neutralizing background
        if self.spec_x.uniform:
            k = 2.0 * np.pi * np.fft.rfftfreq(self.nx, d=self.lx / self.nx)
            rho_hat = np.fft.rfft(rho)
            e_hat = np.zeros_like(rho_hat)
            e_hat[1:] = rho_hat[1:] / (1j * k[1:])
            return np.fft.irfft(e_hat, n=self.nx)
        # Non-uniform: E(x) = ∫_0^x ρ dx', shifted to zero mean.
        dx = np.diff(self.x)
        e = np.concatenate(
            [[0.0], np.cumsum(0.5 * (rho[1:] + rho[:-1]) * dx)]
        )
        return e - np.sum(e * self.wx) / self.lx

    # -- split advections ----------------------------------------------------
    def _advect_x(self, f: np.ndarray, dt: float) -> np.ndarray:
        """x-advection at speed v (batched over v)."""
        # Builder works on (nx, batch) with x in builder ordering.
        coeffs = self.builder_x.solve(f[np.argsort(self._order_x)])
        feet = self.x[:, None] - dt * self.v[None, :]
        return self.eval_x.eval_batched(coeffs, feet)

    def _advect_v(self, f: np.ndarray, e: np.ndarray, dt: float) -> np.ndarray:
        """v-advection at acceleration ``E(x)`` (batched over x).

        Convention (Cheng–Knorr): ``∂t f + v ∂x f + E ∂v f = 0`` with
        ``∂x E = ρ − 1`` — the restoring combination that yields plasma
        oscillations and Landau damping.
        """
        ft = np.ascontiguousarray(f.T)  # (nv, nx)
        coeffs = self.builder_v.solve(ft[np.argsort(self._order_v)])
        feet = self.v[:, None] - dt * e[None, :]
        out_t = self.eval_v.eval_batched(coeffs, feet)
        return np.ascontiguousarray(out_t.T)

    def step(self, f: np.ndarray, dt: float) -> np.ndarray:
        """One Strang-split step; returns the advanced ``f[ix, iv]``."""
        if f.shape != (self.nx, self.nv):
            raise ShapeError(
                f"f must have shape ({self.nx}, {self.nv}), got {f.shape}"
            )
        f = self._advect_x(f, 0.5 * dt)
        e = self.electric_field(f)
        f = self._advect_v(f, e, dt)
        f = self._advect_x(f, 0.5 * dt)
        self.time += dt
        return f

    def run(
        self,
        f: np.ndarray,
        dt: float,
        steps: int,
        record_every: int = 1,
    ) -> np.ndarray:
        """Advance *steps* steps, recording diagnostics every *record_every*."""
        self._record(f)
        for s in range(steps):
            f = self.step(f, dt)
            if (s + 1) % record_every == 0:
                self._record(f)
        return f

    def _record(self, f: np.ndarray) -> None:
        e = self.electric_field(f)
        mass = float(self.wx @ (f @ self.wv))
        l2 = float(np.sqrt(self.wx @ ((f * f) @ self.wv)))
        ee = float(0.5 * np.sum(e * e * self.wx))
        momentum = float(self.wx @ (f @ (self.wv * self.v)))
        kinetic = float(0.5 * self.wx @ (f @ (self.wv * self.v**2)))
        self.diagnostics.record(self.time, mass, l2, ee, momentum, kinetic)

    # -- checkpoint / restart ---------------------------------------------
    def save_checkpoint(self, path, f: np.ndarray) -> None:
        """Write the state (field, clock, diagnostics, grid config) to an
        ``.npz`` checkpoint for later restart.

        The write is atomic (temp file + fsync + rename): a kill or disk
        error mid-write leaves the previous checkpoint intact, so
        :meth:`load_checkpoint` always sees the old state or the new one
        — never a torn file.
        """
        if f.shape != (self.nx, self.nv):
            raise ShapeError(
                f"f must have shape ({self.nx}, {self.nv}), got {f.shape}"
            )
        d = self.diagnostics
        # np.savez appends ``.npz`` to suffix-less *path*s; mirror that so
        # existing call sites keep finding their checkpoints.
        final = os.fspath(path)
        if not final.endswith(".npz"):
            final += ".npz"
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(final) + ".tmp.",
            dir=os.path.dirname(final) or ".",
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    f=f,
                    time=self.time,
                    config=np.array([self.nx, self.nv, self.spec_x.degree,
                                     int(self.spec_x.uniform)], dtype=np.int64),
                    domain=np.array([self.lx, self.vmax]),
                    diag_times=np.asarray(d.times),
                    diag_mass=np.asarray(d.mass),
                    diag_l2=np.asarray(d.l2_norm),
                    diag_ee=np.asarray(d.electric_energy),
                    diag_momentum=np.asarray(d.momentum),
                    diag_kinetic=np.asarray(d.kinetic_energy),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_checkpoint(self, path) -> np.ndarray:
        """Restore clock and diagnostics from a checkpoint; returns the
        field.  The checkpoint must match this solver's grid configuration
        (a mismatch raises :class:`ShapeError` rather than silently
        reinterpreting the data)."""
        with np.load(path) as data:
            config = data["config"]
            expected = np.array([self.nx, self.nv, self.spec_x.degree,
                                 int(self.spec_x.uniform)], dtype=np.int64)
            if not np.array_equal(config, expected):
                raise ShapeError(
                    f"checkpoint grid config {config.tolist()} does not match "
                    f"solver config {expected.tolist()}"
                )
            domain = data["domain"]
            if not np.allclose(domain, [self.lx, self.vmax]):
                raise ShapeError("checkpoint domain does not match solver domain")
            self.time = float(data["time"])
            d = self.diagnostics
            d.times[:] = data["diag_times"].tolist()
            d.mass[:] = data["diag_mass"].tolist()
            d.l2_norm[:] = data["diag_l2"].tolist()
            d.electric_energy[:] = data["diag_ee"].tolist()
            d.momentum[:] = data["diag_momentum"].tolist()
            d.kinetic_energy[:] = data["diag_kinetic"].tolist()
            return np.array(data["f"])

    # -- canonical initial conditions ----------------------------------------
    def maxwellian(self, vth: float = 1.0) -> np.ndarray:
        return np.exp(-0.5 * (self.v / vth) ** 2) / np.sqrt(2.0 * np.pi) / vth

    def landau_initial_condition(self, alpha: float = 0.01, mode: int = 1) -> np.ndarray:
        """``f₀ = (1 + α cos(k x)) M(v)`` with ``k = 2π·mode/Lx``."""
        k = 2.0 * np.pi * mode / self.lx
        return (1.0 + alpha * np.cos(k * self.x))[:, None] * self.maxwellian()[None, :]

    def two_stream_initial_condition(
        self, v0: float = 2.4, alpha: float = 0.001, mode: int = 1
    ) -> np.ndarray:
        """Two counter-propagating beams at ±v0 with a seed perturbation."""
        k = 2.0 * np.pi * mode / self.lx
        beams = 0.5 * (
            np.exp(-0.5 * (self.v - v0) ** 2) + np.exp(-0.5 * (self.v + v0) ** 2)
        ) / np.sqrt(2.0 * np.pi)
        return (1.0 + alpha * np.cos(k * self.x))[:, None] * beams[None, :]
