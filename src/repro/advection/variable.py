"""Semi-Lagrangian advection with a space-dependent velocity field.

§II-A presents the general backward-characteristics scheme
``ṡ = V(s, t)`` with a first-order approximation of the foot; the
benchmark then specializes to constant speed (where first order is exact).
This module implements the general 1-D case

.. math::

    \\partial_t f + v(x)\\,\\partial_x f = 0

with three foot integrators of increasing order:

* ``"euler"`` — the paper's first-order formula ``x* = x − Δt·v(x)``;
* ``"midpoint"`` — one fixed-point refinement through the velocity spline:
  ``x* = x − Δt·v(x − Δt/2·v(x))`` (second order);
* ``"rk4"`` — classical Runge–Kutta backward integration (fourth order).

The velocity field itself is represented as a spline (built once), so foot
integration uses the same interpolation machinery as the field — everything
stays inside the library.

Note: for non-divergence-free ``v(x)`` the advective form does not conserve
∫f; it preserves function values along characteristics (maxima/minima),
which the tests assert instead.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.builder.builder import SplineBuilder
from repro.core.evaluator.evaluator import SplineEvaluator
from repro.exceptions import ShapeError


class VariableSpeedAdvection1D:
    """1-D advection with velocity ``v(x)`` (periodic), batched fields.

    Parameters
    ----------
    builder:
        Spline builder for the grid (shared by field and velocity).
    velocity:
        Callable ``v(x)`` evaluated at the interpolation points; the
        velocity is then *splined* so foot integration can sample it
        anywhere.
    dt:
        Time-step size.
    integrator:
        ``"euler"`` / ``"midpoint"`` / ``"rk4"``.
    """

    def __init__(
        self,
        builder: SplineBuilder,
        velocity: Callable[[np.ndarray], np.ndarray],
        dt: float,
        integrator: str = "midpoint",
    ):
        if integrator not in ("euler", "midpoint", "rk4"):
            raise ShapeError(
                f"integrator must be euler/midpoint/rk4, got {integrator!r}"
            )
        self.builder = builder
        self.evaluator = SplineEvaluator(builder.space_1d)
        self.dt = float(dt)
        self.integrator = integrator
        self.x = builder.interpolation_points()
        #: Spline coefficients of the velocity field.
        self.v_coeffs = builder.solve(np.asarray(velocity(self.x), dtype=np.float64))
        self.feet = self._integrate_feet(self.x, self.dt)

    # -- characteristics ---------------------------------------------------
    def v_at(self, x: np.ndarray) -> np.ndarray:
        """Velocity sampled from its spline (periodic)."""
        return self.evaluator.eval_1d(self.v_coeffs, x)

    def _integrate_feet(self, x: np.ndarray, dt: float) -> np.ndarray:
        if self.integrator == "euler":
            return x - dt * self.v_at(x)
        if self.integrator == "midpoint":
            half = x - 0.5 * dt * self.v_at(x)
            return x - dt * self.v_at(half)
        # RK4, integrating dx/ds = -v(x) over s in [0, dt].
        k1 = self.v_at(x)
        k2 = self.v_at(x - 0.5 * dt * k1)
        k3 = self.v_at(x - 0.5 * dt * k2)
        k4 = self.v_at(x - dt * k3)
        return x - dt * (k1 + 2 * k2 + 2 * k3 + k4) / 6.0

    # -- stepping -------------------------------------------------------------
    def step(self, f: np.ndarray) -> np.ndarray:
        """Advance one step; ``f`` is ``(n,)`` or ``(n, batch)``."""
        f = np.asarray(f, dtype=np.float64)
        squeeze = f.ndim == 1
        work = f[:, None].copy() if squeeze else f.copy()
        if work.shape[0] != self.x.size:
            raise ShapeError(
                f"field leading extent {work.shape[0]} != grid size {self.x.size}"
            )
        self.builder.solve(work, in_place=True)
        out = self.evaluator.eval_batched(
            work, np.broadcast_to(self.feet[:, None], work.shape).copy()
        )
        return out[:, 0] if squeeze else out

    def run(self, f: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            f = self.step(f)
        return f

    def reference_feet(self, t: float, substeps: int = 2000) -> np.ndarray:
        """High-resolution RK4 backward integration over time *t* — the
        oracle the integrator-order tests compare against."""
        x = self.x.copy()
        h = t / substeps
        for _ in range(substeps):
            k1 = self.v_at(x)
            k2 = self.v_at(x - 0.5 * h * k1)
            k3 = self.v_at(x - 0.5 * h * k2)
            k4 = self.v_at(x - h * k3)
            x = x - h * (k1 + 2 * k2 + 2 * k3 + k4) / 6.0
        return x
