"""Clients for the solve service — sync and asyncio, with hedged sends.

Both clients multiplex one TCP connection: requests carry unique wire
ids, responses arrive in any order, and a reader (thread or task)
resolves the matching future.  Connection reuse is therefore free —
issue as many concurrent ``submit()`` calls as you like on one client.

**Hedging** (sync client): a request still unanswered after a hedge
delay is *re-sent* under a fresh wire id; whichever copy answers first
wins and the loser is cancelled with a CANCEL frame.  The delay defaults
to an empirical p99 of recent request latencies (so only genuine
stragglers hedge), or can be fixed via ``hedge_delay``.  Solves are pure
— the loser at worst burns duplicate compute, never duplicate side
effects — which is what makes hedging safe here.  ``stats()`` reports
``hedges`` (sent) and ``hedge_wins`` (the duplicate answered first).

**Throttle retries** (sync client): a ``THROTTLED`` rejection that
carries the server's ``retry_after`` hint is retried automatically —
the delay grows exponentially from the hint (capped), with a little
seeded jitter so a herd of throttled clients does not re-converge on
the same instant — up to ``throttle_retries`` attempts before the error
surfaces.  A throttle *without* ``retry_after`` is a quota exhaustion
(the server's :class:`QuotaExceededError`): permanent for this window,
never retried.

Errors come back as :class:`ServiceError` carrying the wire-level
``code`` (``THROTTLED``, ``TIMEOUT``, ``SHUTDOWN``, ...) and, for
throttles, a ``retry_after`` hint.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, Optional, Set

import numpy as np

from repro.core.spec import BSplineSpec
from repro.exceptions import ReproError
from repro.service import protocol

__all__ = ["ServiceError", "ServiceClient", "AsyncServiceClient"]

#: below this many latency samples the empirical hedge delay is unknown
#: and hedging stays off (unless a fixed ``hedge_delay`` was given)
MIN_HEDGE_SAMPLES = 20

#: never hedge faster than this, whatever the quantile says
MIN_HEDGE_DELAY = 1e-3


class ServiceError(ReproError, RuntimeError):
    """A solve failed on the service side.

    ``code`` is the stable wire code (see
    :class:`repro.service.protocol.ErrorInfo`); ``retry_after`` is the
    server's back-off hint for ``THROTTLED`` rejections.
    """

    def __init__(self, info: protocol.ErrorInfo):
        super().__init__(f"[{info.code}] {info.message}")
        self.code = info.code
        self.info = info
        self.retry_after = info.retry_after


class _Call:
    """One logical request: possibly several wire ids, one future."""

    __slots__ = (
        "future", "wire_ids", "started", "timer", "hedged", "request",
        "attempts",
    )

    def __init__(self, future: Future, request=None) -> None:
        self.future = future
        self.wire_ids: Set[int] = set()
        self.started = time.perf_counter()
        self.timer: Optional[threading.Timer] = None
        self.hedged = False
        #: retained verbatim so a throttle retry re-sends the same solve
        self.request = request
        #: throttle retries already spent on this call
        self.attempts = 0


class ServiceClient:
    """Synchronous client for one solve service endpoint.

    Parameters
    ----------
    host, port:
        The service endpoint.
    hedge_delay:
        ``None`` (default) derives the hedge trigger from the p99 of
        recent request latencies; a float pins it; ``0`` disables
        hedging entirely.
    timeout:
        Default per-request deadline in seconds (None = no deadline).
    throttle_retries:
        Automatic re-submissions of a ``THROTTLED`` rejection that
        carries a ``retry_after`` hint (``0`` disables retries; the
        error then surfaces immediately).  Quota exhaustion — a
        throttle with no hint — is never retried.
    throttle_backoff_cap:
        Upper bound in seconds on one throttle back-off sleep, however
        far the exponential growth would take it.
    retry_seed:
        Seed for the back-off jitter stream, so chaos tests replay the
        exact retry schedule.
    """

    def __init__(
        self,
        host: str,
        port: int,
        hedge_delay: Optional[float] = None,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        throttle_retries: int = 3,
        throttle_backoff_cap: float = 5.0,
        retry_seed: int = 0,
    ) -> None:
        if throttle_retries < 0:
            raise ValueError(
                f"throttle_retries must be >= 0, got {throttle_retries}"
            )
        if throttle_backoff_cap <= 0:
            raise ValueError(
                f"throttle_backoff_cap must be > 0, got {throttle_backoff_cap}"
            )
        self.host = host
        self.port = port
        self.hedge_delay = hedge_delay
        self.default_timeout = timeout
        self.throttle_retries = int(throttle_retries)
        self.throttle_backoff_cap = float(throttle_backoff_cap)
        self._retry_rng = random.Random(retry_seed)
        self._sock = socket.create_connection((host, port), connect_timeout)
        self._sock.settimeout(None)
        self._wlock = threading.Lock()
        self._plock = threading.Lock()
        self._ids = itertools.count(1)
        self._calls: Dict[int, _Call] = {}  # wire id -> call
        self._telemetry: Deque[Future] = deque()
        self._pong: Deque[Future] = deque()
        self._latencies: Deque[float] = deque(maxlen=512)
        #: calls sleeping out a throttle back-off (not in ``_calls``);
        #: close() must still fail their futures
        self._backoff: Set[_Call] = set()
        self._closed = False
        self.hedges = 0
        self.hedge_wins = 0
        self.throttle_retries_sent = 0
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True
        )
        self._reader.start()

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        spec: BSplineSpec,
        rhs: np.ndarray,
        *,
        version: int = 2,
        dtype: str = "float64",
        backend: str = "vectorized",
        tenant: str = "anonymous",
        priority: str = "normal",
        timeout: Optional[float] = None,
    ) -> Future:
        """Send one solve; the future resolves to the coefficient array."""
        if self._closed:
            raise ServiceError(
                protocol.ErrorInfo("SHUTDOWN", "client is closed")
            )
        timeout = timeout if timeout is not None else self.default_timeout
        request = protocol.Request(
            id=0,  # assigned per wire send
            spec=spec,
            rhs=np.asarray(rhs),
            version=version,
            dtype=str(np.dtype(dtype)),
            backend=backend,
            tenant=tenant,
            priority=priority,
            deadline=timeout,
        )
        future: Future = Future()
        future.set_running_or_notify_cancel()
        call = _Call(future, request=request)
        self._send_copy(call, request)
        delay = self._hedge_after()
        if delay is not None:
            call.timer = threading.Timer(
                delay, self._hedge, args=(call, request)
            )
            call.timer.daemon = True
            call.timer.start()
        return future

    def solve(self, spec: BSplineSpec, rhs: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(...).result()``."""
        timeout = kwargs.get("timeout", self.default_timeout)
        return self.submit(spec, rhs, **kwargs).result(
            timeout=None if timeout is None else timeout + 30.0
        )

    def telemetry(self, timeout: float = 10.0) -> dict:
        """The server's merged telemetry snapshot (adds a ``service`` part)."""
        future: Future = Future()
        with self._plock:
            self._telemetry.append(future)
        with self._wlock:
            protocol.write_frame(
                self._sock,
                protocol.encode_frame(protocol.FrameType.TELEMETRY_REQ, b""),
            )
        return future.result(timeout=timeout)

    def ping(self, timeout: float = 10.0) -> float:
        """Round-trip one PING; returns the latency in seconds."""
        future: Future = Future()
        start = time.perf_counter()
        with self._plock:
            self._pong.append(future)
        with self._wlock:
            protocol.write_frame(
                self._sock,
                protocol.encode_frame(protocol.FrameType.PING, b""),
            )
        future.result(timeout=timeout)
        return time.perf_counter() - start

    def stats(self) -> dict:
        """Client-side counters: hedges sent, hedge wins, latency samples."""
        return {
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "throttle_retries": self.throttle_retries_sent,
            "latency_samples": len(self._latencies),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)
        self._fail_all(ConnectionError("client closed"))

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _send_copy(self, call: _Call, request: protocol.Request) -> None:
        wire_id = next(self._ids)
        request.id = wire_id
        frame = protocol.encode_request(request)
        with self._plock:
            call.wire_ids.add(wire_id)
            self._calls[wire_id] = call
        try:
            with self._wlock:
                protocol.write_frame(self._sock, frame)
        except OSError as exc:
            self._resolve(wire_id, error=exc)

    def _hedge_after(self) -> Optional[float]:
        """Seconds after which to duplicate a request, or None (no hedge)."""
        if self.hedge_delay is not None:
            return self.hedge_delay if self.hedge_delay > 0 else None
        with self._plock:
            if len(self._latencies) < MIN_HEDGE_SAMPLES:
                return None
            samples = sorted(self._latencies)
        p99 = samples[min(len(samples) - 1, int(0.99 * len(samples)))]
        return max(MIN_HEDGE_DELAY, p99)

    def _hedge(self, call: _Call, request: protocol.Request) -> None:
        with self._plock:
            if call.future.done() or self._closed:
                return
            call.hedged = True
            self.hedges += 1
        self._send_copy(call, request)

    def _resolve(
        self,
        wire_id: int,
        result: Optional[np.ndarray] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        losers = []
        with self._plock:
            call = self._calls.pop(wire_id, None)
            if call is None:
                return
            for other in call.wire_ids:
                if other != wire_id:
                    self._calls.pop(other, None)
                    losers.append(other)
            if not call.future.done():
                self._latencies.append(time.perf_counter() - call.started)
                if call.hedged and losers and error is None:
                    # The winning id is not the first-sent one iff the
                    # duplicate overtook — but either way a hedged call
                    # that resolved while a loser was outstanding means
                    # hedging returned an answer; count the duplicate's
                    # win only when the *later* id won.
                    if wire_id == max(call.wire_ids):
                        self.hedge_wins += 1
        if call.timer is not None:
            call.timer.cancel()
        for loser in losers:
            try:
                with self._wlock:
                    protocol.write_frame(
                        self._sock, protocol.encode_cancel(loser)
                    )
            except OSError:
                break
        if call.future.done():
            return
        if error is not None:
            if self._maybe_retry_throttle(call, error):
                return
            call.future.set_exception(error)
        else:
            call.future.set_result(result)

    def _maybe_retry_throttle(
        self, call: _Call, error: BaseException
    ) -> bool:
        """Schedule a backed-off re-send of a retryable throttle.

        Retryable means: a ``THROTTLED`` rejection *with* a
        ``retry_after`` hint (one without is the server's quota
        exhaustion — permanent for this accounting window), budget
        remaining, and the client still open.  The delay doubles per
        attempt from the server's hint, capped, plus seeded jitter so a
        herd of throttled clients spreads back out.
        """
        if not isinstance(error, ServiceError) or error.code != "THROTTLED":
            return False
        if error.retry_after is None or call.request is None:
            return False
        if call.attempts >= self.throttle_retries:
            return False
        with self._plock:
            if self._closed:
                return False
            call.attempts += 1
            self.throttle_retries_sent += 1
            self._backoff.add(call)
        delay = min(
            float(error.retry_after) * (2.0 ** (call.attempts - 1)),
            self.throttle_backoff_cap,
        )
        delay += self._retry_rng.uniform(0.0, 0.1 * delay)
        call.wire_ids.clear()  # the throttled ids are dead; fresh race
        call.hedged = False
        call.timer = threading.Timer(delay, self._retry_send, args=(call,))
        call.timer.daemon = True
        call.timer.start()
        return True

    def _retry_send(self, call: _Call) -> None:
        with self._plock:
            self._backoff.discard(call)
            if self._closed or call.future.done():
                return
        call.started = time.perf_counter()
        self._send_copy(call, call.request)
        delay = self._hedge_after()
        if delay is not None:
            call.timer = threading.Timer(
                delay, self._hedge, args=(call, call.request)
            )
            call.timer.daemon = True
            call.timer.start()

    def _fail_all(self, exc: BaseException) -> None:
        with self._plock:
            calls = list(self._calls.values()) + list(self._backoff)
            self._calls.clear()
            self._backoff.clear()
            aux = list(self._telemetry) + list(self._pong)
            self._telemetry.clear()
            self._pong.clear()
        for call in calls:
            if call.timer is not None:
                call.timer.cancel()
            if not call.future.done():
                call.future.set_exception(exc)
        for future in aux:
            if not future.done():
                future.set_exception(exc)

    def _read_loop(self) -> None:
        try:
            while True:
                ftype, _flags, payload = protocol.read_frame(self._sock)
                if ftype == protocol.FrameType.RESULT:
                    res = protocol.decode_result(payload)
                    self._resolve(res.id, result=res.coeffs)
                elif ftype == protocol.FrameType.ERROR:
                    info = protocol.decode_error(payload)
                    if info.id is None:
                        self._fail_all(ServiceError(info))
                    else:
                        self._resolve(info.id, error=ServiceError(info))
                elif ftype == protocol.FrameType.TELEMETRY:
                    snap = protocol.decode_telemetry(payload)
                    with self._plock:
                        future = (
                            self._telemetry.popleft()
                            if self._telemetry
                            else None
                        )
                    if future is not None and not future.done():
                        future.set_result(snap)
                elif ftype == protocol.FrameType.PONG:
                    with self._plock:
                        future = self._pong.popleft() if self._pong else None
                    if future is not None and not future.done():
                        future.set_result(True)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except protocol.ProtocolError:
            pass
        finally:
            self._fail_all(ConnectionError("connection to service lost"))


class AsyncServiceClient:
    """Asyncio client: same wire protocol, natively awaitable.

    Hedging is intentionally left to the sync client — asyncio callers
    typically own their own concurrency structure (``asyncio.wait`` with
    shields and timeouts composes better than a built-in policy would).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = None):
        self.host = host
        self.port = port
        self.default_timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._telemetry: Deque[asyncio.Future] = deque()
        self._reader_task: Optional[asyncio.Task] = None
        self._wlock: Optional[asyncio.Lock] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._wlock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def submit(
        self,
        spec: BSplineSpec,
        rhs: np.ndarray,
        *,
        version: int = 2,
        dtype: str = "float64",
        backend: str = "vectorized",
        tenant: str = "anonymous",
        priority: str = "normal",
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Send one solve and await its coefficients."""
        if self._writer is None:
            raise RuntimeError("call connect() first")
        wire_id = next(self._ids)
        request = protocol.Request(
            id=wire_id,
            spec=spec,
            rhs=np.asarray(rhs),
            version=version,
            dtype=str(np.dtype(dtype)),
            backend=backend,
            tenant=tenant,
            priority=priority,
            deadline=timeout if timeout is not None else self.default_timeout,
        )
        future = asyncio.get_running_loop().create_future()
        self._pending[wire_id] = future
        async with self._wlock:
            self._writer.write(protocol.encode_request(request))
            await self._writer.drain()
        return await future

    async def telemetry(self) -> dict:
        future = asyncio.get_running_loop().create_future()
        self._telemetry.append(future)
        async with self._wlock:
            self._writer.write(
                protocol.encode_frame(protocol.FrameType.TELEMETRY_REQ, b"")
            )
            await self._writer.drain()
        return await future

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_all(ConnectionError("client closed"))

    def _fail_all(self, exc: BaseException) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        while self._telemetry:
            future = self._telemetry.popleft()
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                ftype, _flags, payload = await protocol.read_frame_async(
                    self._reader
                )
                if ftype == protocol.FrameType.RESULT:
                    res = protocol.decode_result(payload)
                    future = self._pending.pop(res.id, None)
                    if future is not None and not future.done():
                        future.set_result(res.coeffs)
                elif ftype == protocol.FrameType.ERROR:
                    info = protocol.decode_error(payload)
                    if info.id is None:
                        self._fail_all(ServiceError(info))
                    else:
                        future = self._pending.pop(info.id, None)
                        if future is not None and not future.done():
                            future.set_exception(ServiceError(info))
                elif ftype == protocol.FrameType.TELEMETRY:
                    snap = protocol.decode_telemetry(payload)
                    if self._telemetry:
                        future = self._telemetry.popleft()
                        if not future.done():
                            future.set_result(snap)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self._fail_all(ConnectionError("connection to service lost"))
        except asyncio.CancelledError:
            raise
