"""Multi-tenant load generator for the solve service.

Three scripted scenarios, each a self-contained service + engine + client
run with seeded randomness, reported as paper-style tables and one
machine-readable ``benchmarks/results/BENCH_service_loadgen.json``:

``fairshare``
    Tenant popularity follows a bounded Zipf(s≈1.1): tenant 1 is the hot
    head of the distribution and sends far more columns than anyone
    else.  The hot tenant gets a tight quota, the background tenants a
    generous one; the engine is slowed (a seeded ``slow`` fault on
    ``engine.batch_solve``) so the service is genuinely saturated.  The
    scenario records per-tenant p50/p99 latency and throttle counts —
    the pass condition is a throttled hot tenant *and* bounded
    background p99.

``hedging``
    A seeded fault makes a fraction of batch solves stall (the "slow
    shard").  The same workload runs twice — hedging off, then hedging
    on with a fixed delay well under the stall — and records both p99s
    plus hedge counters.  Results stay bitwise-checked against a direct
    engine solve, demonstrating no duplicate side effects.

``poisoned``
    One tenant sends NaN-poisoned right-hand sides with
    ``verify_every=1`` on: the poisoned requests are quarantined (visible
    per tenant in telemetry) while the clean tenant's solves succeed.

``--quick`` shrinks every scenario to a few seconds total for CI.

Run as ``python -m repro.service.bench [--quick] [--scenario NAME]``.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np

from repro.bench.report import Table, write_bench_json
from repro.core.spec import BSplineSpec
from repro.runtime.engine import EngineConfig, SolveEngine
from repro.runtime.resilience.faults import FaultPlan, FaultSpec
from repro.service.admission import AdmissionController, TenantQuota
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig, ServiceThread

__all__ = ["zipf_tenants", "run_fairshare", "run_hedging", "run_poisoned", "main"]

SPEC = BSplineSpec(degree=3, n_points=48)
SEED = 20240711


def zipf_tenants(
    rng: np.random.Generator, n_tenants: int, n_draws: int, s: float = 1.1
) -> List[int]:
    """Bounded Zipf(s) tenant indices in ``[0, n_tenants)``.

    ``p_k ∝ (k+1)^-s`` — tenant 0 is the hot head.  Bounded (unlike
    ``rng.zipf``) so the support is exactly the tenant set.
    """
    ranks = np.arange(1, n_tenants + 1, dtype=float)
    weights = ranks**-s
    probs = weights / weights.sum()
    return list(rng.choice(n_tenants, size=n_draws, p=probs))


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples), q))


def _drain(futures: List, per_tenant: Dict[str, List[float]]) -> Dict[str, int]:
    """Wait out *futures* (``(tenant, started, future)``), bucket latency by
    tenant, and count error codes."""
    codes: Dict[str, int] = {}
    for tenant, started, future in futures:
        try:
            future.result(timeout=120.0)
            per_tenant.setdefault(tenant, []).append(
                time.perf_counter() - started
            )
        except ServiceError as exc:
            codes[exc.code] = codes.get(exc.code, 0) + 1
        except Exception as exc:  # noqa: BLE001 - count, don't crash the bench
            codes[type(exc).__name__] = codes.get(type(exc).__name__, 0) + 1
    return codes


def run_fairshare(quick: bool = False, seed: int = SEED) -> dict:
    """Zipf(1.1) tenants at saturation: hot tenant throttled, rest served."""
    rng = np.random.default_rng(seed)
    n_tenants = 5
    n_requests = 60 if quick else 400
    solve_delay = 0.002 if quick else 0.005
    # A deterministic drag on every batch solve saturates the engine at a
    # known rate, so admission and fair share actually have work to do.
    faults = FaultPlan(
        [
            FaultSpec(
                site="engine.batch_solve",
                kind="slow",
                delay=solve_delay,
                times=None,
            )
        ],
        seed=seed,
    )
    engine = SolveEngine(
        EngineConfig(max_batch=32, max_linger=0.002, faults=faults)
    )
    # The hot head gets a tight quota; background tenants a generous one.
    admission = AdmissionController(
        default_quota=TenantQuota(rate=100_000.0, burst=200_000.0),
        quotas={"tenant-0": TenantQuota(rate=40.0, burst=60.0)},
    )
    tenants = [f"tenant-{k}" for k in zipf_tenants(rng, n_tenants, n_requests)]
    per_tenant: Dict[str, List[float]] = {}
    with ServiceThread(
        engine, ServiceConfig(admission=admission), own_engine=True
    ) as hosted:
        with ServiceClient(hosted.host, hosted.port, hedge_delay=0) as client:
            futures = []
            for tenant in tenants:
                cols = int(rng.integers(1, 6))
                rhs = rng.standard_normal((SPEC.n_points, cols))
                priority = "batch" if tenant == "tenant-0" else "normal"
                started = time.perf_counter()
                futures.append(
                    (
                        tenant,
                        started,
                        client.submit(
                            SPEC, rhs, tenant=tenant, priority=priority
                        ),
                    )
                )
            codes = _drain(futures, per_tenant)
            snap = client.telemetry()
    background = [
        lat
        for tenant, lats in per_tenant.items()
        if tenant != "tenant-0"
        for lat in lats
    ]
    throttled = codes.get("THROTTLED", 0)
    result = {
        "scenario": "fairshare",
        "n_tenants": n_tenants,
        "n_requests": n_requests,
        "zipf_s": 1.1,
        "hot_tenant": "tenant-0",
        "hot_throttled": throttled,
        "error_codes": codes,
        "background_p50_s": _percentile(background, 50),
        "background_p99_s": _percentile(background, 99),
        "per_tenant": {
            tenant: {
                "completed": len(lats),
                "p50_s": _percentile(lats, 50),
                "p99_s": _percentile(lats, 99),
            }
            for tenant, lats in sorted(per_tenant.items())
        },
        "tenant_telemetry": {
            tenant: data.get("counters", {})
            for tenant, data in snap.get("tenants", {}).items()
        },
        "passed": bool(
            throttled > 0
            and background
            and _percentile(background, 99) < 30.0
        ),
    }
    return result


def run_hedging(quick: bool = False, seed: int = SEED) -> dict:
    """Straggler batches: hedged resends cut p99, results stay bitwise."""
    n_requests = 40 if quick else 200
    stall = 0.25 if quick else 0.5
    p_stall = 0.15

    def run_pass(hedge_delay: Optional[float]) -> dict:
        faults = FaultPlan(
            [
                FaultSpec(
                    site="engine.batch_solve",
                    kind="slow",
                    delay=stall,
                    probability=p_stall,
                    times=None,
                )
            ],
            seed=seed,  # same seed: both passes face the same stall pattern
        )
        # max_batch=1 keeps one request per batch so a stall hits exactly
        # one logical request — the textbook slow-shard shape.
        engine = SolveEngine(
            EngineConfig(max_batch=1, max_linger=0.0005, faults=faults)
        )
        reference = SolveEngine(EngineConfig(max_batch=1))
        latencies: List[float] = []
        mismatches = 0
        with ServiceThread(engine, own_engine=True) as hosted:
            with ServiceClient(
                hosted.host, hosted.port, hedge_delay=hedge_delay
            ) as client:
                local = np.random.default_rng(seed)
                for _ in range(n_requests):
                    rhs = local.standard_normal(SPEC.n_points)
                    started = time.perf_counter()
                    got = client.solve(SPEC, rhs, tenant="hedger")
                    latencies.append(time.perf_counter() - started)
                    want = reference.submit(SPEC, rhs).result(timeout=60)
                    if not np.array_equal(got, want):
                        mismatches += 1
                stats = client.stats()
        reference.shutdown()
        return {
            "p50_s": _percentile(latencies, 50),
            "p99_s": _percentile(latencies, 99),
            "mismatches": mismatches,
            **stats,
        }

    unhedged = run_pass(hedge_delay=0)  # 0 disables hedging
    hedged = run_pass(hedge_delay=stall / 5.0)
    return {
        "scenario": "hedging",
        "n_requests": n_requests,
        "stall_s": stall,
        "stall_probability": p_stall,
        "unhedged": unhedged,
        "hedged": hedged,
        "p99_improvement_s": unhedged["p99_s"] - hedged["p99_s"],
        "passed": bool(
            hedged["p99_s"] < unhedged["p99_s"]
            and hedged["mismatches"] == 0
            and unhedged["mismatches"] == 0
            and hedged["hedges"] > 0
        ),
    }


def run_poisoned(quick: bool = False, seed: int = SEED) -> dict:
    """A NaN-poisoning tenant is quarantined; the clean tenant sails on."""
    rng = np.random.default_rng(seed)
    n_clean = 20 if quick else 100
    n_poison = 5 if quick else 20
    engine = SolveEngine(EngineConfig(verify_every=1, max_batch=16))
    outcomes: Dict[str, int] = {}
    clean_ok = 0
    with ServiceThread(engine, own_engine=True) as hosted:
        with ServiceClient(hosted.host, hosted.port, hedge_delay=0) as client:
            futures = []
            for i in range(n_clean + n_poison):
                poisoned = i % (n_clean // n_poison + 1) == 0 and n_poison > 0
                tenant = "mallory" if poisoned else "clean"
                rhs = rng.standard_normal(SPEC.n_points)
                if poisoned:
                    rhs[rng.integers(0, SPEC.n_points)] = np.nan
                futures.append(
                    (tenant, client.submit(SPEC, rhs, tenant=tenant))
                )
            for tenant, future in futures:
                try:
                    future.result(timeout=60.0)
                    if tenant == "clean":
                        clean_ok += 1
                    else:
                        outcomes["poison_succeeded"] = (
                            outcomes.get("poison_succeeded", 0) + 1
                        )
                except Exception:
                    key = f"{tenant}_failed"
                    outcomes[key] = outcomes.get(key, 0) + 1
            snap = client.telemetry()
    tenants = snap.get("tenants", {})
    mallory = tenants.get("mallory", {}).get("counters", {})
    clean = tenants.get("clean", {}).get("counters", {})
    return {
        "scenario": "poisoned",
        "clean_submitted": clean.get("requests_submitted", 0),
        "clean_completed": clean_ok,
        "mallory_failed": outcomes.get("mallory_failed", 0),
        "mallory_quarantined": mallory.get("requests_quarantined", 0),
        "outcomes": outcomes,
        "passed": bool(
            clean_ok > 0
            and outcomes.get("mallory_failed", 0) > 0
            and clean_ok >= clean.get("requests_submitted", 0) - 1
        ),
    }


SCENARIOS = {
    "fairshare": run_fairshare,
    "hedging": run_hedging,
    "poisoned": run_poisoned,
}


def render_results(results: List[dict]) -> str:
    table = Table(
        "Service load generator", ["scenario", "passed", "headline"]
    )
    for res in results:
        if res["scenario"] == "fairshare":
            headline = (
                f"hot throttled {res['hot_throttled']}x, "
                f"background p99 {res['background_p99_s']:.3f}s"
            )
        elif res["scenario"] == "hedging":
            headline = (
                f"p99 {res['unhedged']['p99_s']:.3f}s -> "
                f"{res['hedged']['p99_s']:.3f}s "
                f"({res['hedged']['hedges']} hedges, "
                f"{res['hedged']['hedge_wins']} wins)"
            )
        else:
            headline = (
                f"clean {res['clean_completed']} ok, "
                f"mallory {res['mallory_failed']} rejected"
            )
        table.add_row(res["scenario"], "yes" if res["passed"] else "NO", headline)
    return table.render()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.bench",
        description="multi-tenant load generator for the solve service",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (a few seconds)"
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        action="append",
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=SEED, help="randomness seed"
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip BENCH_service_loadgen.json"
    )
    args = parser.parse_args(argv)
    names = args.scenario or sorted(SCENARIOS)
    results = [SCENARIOS[name](quick=args.quick, seed=args.seed) for name in names]
    print(render_results(results))
    if not args.no_json:
        path = write_bench_json(
            "service_loadgen",
            {
                "quick": args.quick,
                "seed": args.seed,
                "scenarios": {res["scenario"]: res for res in results},
            },
        )
        print(f"\nwrote {path}")
    return 0 if all(res["passed"] for res in results) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via bench entry
    raise SystemExit(main())
