"""Asyncio TCP solve service bridging the wire protocol onto the engine.

One :class:`SolveService` wraps one :class:`~repro.runtime.engine.SolveEngine`
and serves the :mod:`repro.service.protocol` framing over TCP:

* connections are handled on a single asyncio event loop; each runs a
  frame-read loop and owns a write lock so responses from concurrent
  solves interleave at frame granularity;
* every decoded REQUEST passes :class:`~repro.service.admission.
  AdmissionController` first (over-quota tenants bounce with a
  ``THROTTLED`` error frame and a ``retry_after`` hint, costing the
  engine nothing), then queues in a :class:`~repro.service.admission.
  FairShareQueue` so dispatch order honours priority classes and
  deficit-weighted tenant fair share;
* a single dispatcher task pops the fair-share queue and bridges onto
  ``engine.submit()`` via the service's own thread pool — ``submit()``
  can block under ``backpressure="block"`` and must stall neither the
  loop nor the loop's shared default executor — then chains the
  returned :class:`concurrent.futures.Future` back into the loop with
  ``asyncio.wrap_future``;
* responses carry the request's wire id, which is client-chosen and
  therefore scoped *per connection* (pending requests and CANCELs are
  keyed by ``(connection, id)``), so a client may pipeline requests and
  receive results out of order;
* shutdown is a graceful drain: stop accepting, fail still-queued
  requests with ``SHUTDOWN`` error frames, wait for in-flight solves,
  then close the engine (when the service owns it).

:class:`ServiceThread` hosts a service on a background thread with its
own event loop — the sync client, the load generator and the tests all
use it so they can stay synchronous.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import logging
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ShapeError, VerificationError
from repro.runtime.engine import (
    BackpressureError,
    EngineClosedError,
    EngineTimeoutError,
    SolveEngine,
)
from repro.runtime.resilience.circuit import CircuitOpenError
from repro.service import protocol
from repro.service.admission import (
    AdmissionController,
    FairShareQueue,
    PRIORITIES,
    QuotaExceededError,
    ThrottledError,
)

__all__ = ["ServiceConfig", "SolveService", "ServiceThread", "serve"]

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Knobs for one :class:`SolveService`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port off ``service.port``
    #: fair-share scheduling quantum in columns (see FairShareQueue)
    quantum: float = 64.0
    #: seconds the drain phase waits for in-flight solves before giving up
    drain_timeout: float = 10.0
    #: cap on requests queued in the fair-share stage (0 = unbounded);
    #: beyond it requests bounce with BACKPRESSURE instead of queueing
    max_queued: int = 4096
    #: per-frame payload cap enforced from the header, *before* the body
    #: is read — an over-quota client cannot force large allocations;
    #: size it to the largest plausible RHS (default 64 MiB)
    max_payload: int = 64 << 20
    #: threads in the service's own dispatch pool bridging the (possibly
    #: blocking) ``engine.submit()`` calls — the asyncio *default*
    #: executor is deliberately not used, so parked submits under
    #: ``backpressure="block"`` cannot starve other users of the loop
    dispatch_workers: int = 32
    admission: Optional[AdmissionController] = None
    #: durable plan-store directory: when the service builds its own
    #: engine the store backs every plan cache (engine + sharded
    #: workers) and the engine warm-starts from it on boot, so a
    #: restarted service performs zero re-factorizations
    plan_store_dir: Optional[str] = None
    #: default directory for out-of-core campaign checkpoints run
    #: against this service's engine (``engine.solve_stream``)
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.admission is None:
            self.admission = AdmissionController()
        if self.max_payload <= 0 or self.max_payload > protocol.MAX_PAYLOAD:
            raise ValueError(
                f"max_payload must be in (0, {protocol.MAX_PAYLOAD}], "
                f"got {self.max_payload}"
            )
        if self.dispatch_workers <= 0:
            raise ValueError(
                f"dispatch_workers must be > 0, got {self.dispatch_workers}"
            )


def classify_error(exc: BaseException) -> Tuple[str, Optional[float]]:
    """Map a server-side exception to ``(wire code, retry_after)``."""
    if isinstance(exc, ThrottledError):
        return "THROTTLED", exc.retry_after
    if isinstance(exc, BackpressureError):
        return "BACKPRESSURE", None
    if isinstance(exc, (EngineTimeoutError, TimeoutError)):
        return "TIMEOUT", None
    if isinstance(exc, EngineClosedError):
        return "SHUTDOWN", None
    if isinstance(exc, CircuitOpenError) or getattr(exc, "short_circuited", False):
        return "CIRCUIT_OPEN", None
    if isinstance(exc, VerificationError):
        return "VERIFY_FAILED", None
    if isinstance(exc, (protocol.ProtocolError, ShapeError, ValueError)):
        return "BAD_REQUEST", None
    return "INTERNAL", None


class _Connection:
    """Per-connection state: the streams plus a frame-granular write lock."""

    __slots__ = ("reader", "writer", "lock", "closed")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, frame: bytes) -> None:
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


class _Pending:
    """One admitted request travelling queue → engine → response."""

    __slots__ = ("conn", "request", "cancelled", "future")

    def __init__(self, conn: _Connection, request: protocol.Request) -> None:
        self.conn = conn
        self.request = request
        self.cancelled = False
        self.future: Optional[concurrent.futures.Future] = None


class SolveService:
    """The asyncio TCP front end for one :class:`SolveEngine`.

    ``own_engine=True`` (the default when the service built the engine)
    means :meth:`stop` also shuts the engine down.
    """

    def __init__(
        self,
        engine: SolveEngine,
        config: Optional[ServiceConfig] = None,
        own_engine: bool = False,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.own_engine = own_engine
        # Warm boot: adopt every durable plan entry before the first
        # request, so a restarted service re-factorizes nothing.
        if getattr(engine, "plan_store", None) is not None:
            loaded = engine.warm_start()
            if loaded:
                logger.info(
                    "warm-started %d plan(s) from %s",
                    loaded,
                    engine.plan_store.root,
                )
        self.queue = FairShareQueue(quantum=self.config.quantum)
        self._server: Optional[asyncio.base_events.Server] = None
        # Wire ids are client-chosen and only unique *per connection*
        # (every client numbers from 1), so pending requests are keyed
        # by (connection, wire id) — one tenant's CANCEL or id reuse
        # must never touch another connection's requests.
        self._queued_ids: Dict[Tuple[_Connection, int], _Pending] = {}
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.dispatch_workers,
            thread_name_prefix="repro-service-dispatch",
        )
        self._inflight: Set[asyncio.Future] = set()
        self._work = asyncio.Event()
        self._draining = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._conns: Set[_Connection] = set()
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        logger.info("service listening on %s:%d", self.config.host, self.port)

    async def stop(self) -> None:
        """Graceful drain: refuse new work, flush queued and in-flight."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Queued-but-not-dispatched requests fail fast with SHUTDOWN.
        for pending in self.queue.drain():
            self._queued_ids.pop((pending.conn, pending.request.id), None)
            await self._send_error(
                pending.conn,
                pending.request.id,
                EngineClosedError("service draining"),
            )
        # In-flight solves get drain_timeout to finish and respond.
        if self._inflight:
            await asyncio.wait(
                list(self._inflight), timeout=self.config.drain_timeout
            )
        if self._dispatcher is not None:
            self._work.set()
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for conn in list(self._conns):
            conn.closed = True
            try:
                conn.writer.close()
            except RuntimeError:
                pass
        self._executor.shutdown(wait=False)
        if self.own_engine:
            self.engine.shutdown()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    ftype, _flags, payload = await protocol.read_frame_async(
                        reader, self.config.max_payload
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                except protocol.ProtocolError as exc:
                    # Framing is broken: report once, then hang up — we can
                    # no longer find frame boundaries on this connection.
                    await self._send_error(conn, None, exc)
                    return
                try:
                    await self._handle_frame(conn, ftype, payload)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # per-frame fault isolation
                    await self._send_error(conn, None, exc)
        finally:
            conn.closed = True
            self._conns.discard(conn)
            # Nobody is listening for this connection's queued requests
            # any more — mark them cancelled so dispatch skips them.
            for key in [k for k in self._queued_ids if k[0] is conn]:
                self._queued_ids.pop(key).cancelled = True
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_frame(
        self, conn: _Connection, ftype: int, payload: bytes
    ) -> None:
        if ftype == protocol.FrameType.PING:
            await conn.send(
                protocol.encode_frame(protocol.FrameType.PONG, payload)
            )
            return
        if ftype == protocol.FrameType.TELEMETRY_REQ:
            snap = self.engine.telemetry_snapshot()
            snap["service"] = self.service_stats()
            await conn.send(protocol.encode_telemetry(snap))
            return
        if ftype == protocol.FrameType.CANCEL:
            self._cancel(conn, protocol.decode_cancel(payload))
            return
        if ftype != protocol.FrameType.REQUEST:
            raise protocol.ProtocolError(
                f"unexpected frame type {ftype} from client"
            )
        try:
            request = protocol.decode_request(payload)
        except protocol.ProtocolError as exc:
            await self._send_error(conn, None, exc)
            return
        await self._admit(conn, request)

    async def _admit(self, conn: _Connection, request: protocol.Request) -> None:
        if self._draining:
            await self._send_error(
                conn, request.id, EngineClosedError("service draining")
            )
            return
        if request.priority not in PRIORITIES:
            await self._send_error(
                conn,
                request.id,
                protocol.ProtocolError(
                    f"unknown priority {request.priority!r}"
                ),
            )
            return
        if self.config.max_queued and len(self.queue) >= self.config.max_queued:
            await self._send_error(
                conn,
                request.id,
                BackpressureError(
                    f"service queue full ({self.config.max_queued} requests)"
                ),
            )
            return
        try:
            self.config.admission.admit(request.tenant, request.cols)
        except ThrottledError as exc:
            self.engine.telemetry.tenant_incr(request.tenant, "requests_rejected")
            self.engine.telemetry.incr("service.throttled")
            await self._send_error(conn, request.id, exc)
            return
        except QuotaExceededError as exc:
            # Permanent: the request can never fit the tenant's burst.
            self.engine.telemetry.tenant_incr(request.tenant, "requests_rejected")
            self.engine.telemetry.incr("service.rejected_oversize")
            await self._send_error(conn, request.id, exc)
            return
        pending = _Pending(conn, request)
        self._queued_ids[(conn, request.id)] = pending
        self.queue.push(
            pending, request.tenant, request.priority, float(request.cols)
        )
        self._work.set()

    def _cancel(self, conn: _Connection, request_id: int) -> None:
        # Scoped to the connection that sent the CANCEL: ids from other
        # connections may collide (every client numbers from 1) and must
        # be unreachable here.
        pending = self._queued_ids.pop((conn, request_id), None)
        if pending is None:
            return
        pending.cancelled = True
        if pending.future is not None:
            pending.future.cancel()
        self.engine.telemetry.incr("service.cancelled")

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            pending = self.queue.pop()
            if pending is None:
                self._work.clear()
                await self._work.wait()
                continue
            if pending.cancelled:
                continue
            self._queued_ids.pop((pending.conn, pending.request.id), None)
            task = asyncio.ensure_future(self._dispatch_one(loop, pending))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _dispatch_one(
        self, loop: asyncio.AbstractEventLoop, pending: _Pending
    ) -> None:
        request = pending.request
        try:
            # submit() may block (backpressure="block"), so keep it off
            # the event loop — on the service's own pool, not the loop's
            # default executor, so parked submits cannot starve other
            # default-executor users or cap dispatch below intent.
            fut = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.submit(
                    request.spec,
                    request.rhs,
                    version=request.version,
                    dtype=np.dtype(request.dtype),
                    backend=request.backend,
                    timeout=request.deadline,
                    tenant=request.tenant,
                    priority=request.priority,
                ),
            )
            pending.future = fut
            if pending.cancelled:
                fut.cancel()
                return
            coeffs = await asyncio.wrap_future(fut)
        except concurrent.futures.CancelledError:
            return
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if not pending.cancelled:
                await self._send_error(
                    pending.conn, request.id, exc, tenant=request.tenant
                )
            return
        if not pending.cancelled:
            await pending.conn.send(
                protocol.encode_result(request.id, np.asarray(coeffs))
            )

    async def _send_error(
        self,
        conn: _Connection,
        request_id: Optional[int],
        exc: BaseException,
        tenant: Optional[str] = None,
    ) -> None:
        code, retry_after = classify_error(exc)
        await conn.send(
            protocol.encode_error(
                protocol.ErrorInfo(
                    code=code,
                    message=str(exc),
                    id=request_id,
                    error=type(exc).__name__,
                    retry_after=retry_after,
                    tenant=tenant if tenant is not None
                    else getattr(exc, "tenant", None),
                )
            )
        )

    def service_stats(self) -> dict:
        """Front-end counters for the TELEMETRY frame's ``service`` section."""
        admission = self.config.admission
        return {
            "queued": len(self.queue),
            "inflight": len(self._inflight),
            "admitted": admission.admitted,
            "throttled": admission.rejected,
            "draining": self._draining,
        }


class ServiceThread:
    """Host a :class:`SolveService` on a dedicated event-loop thread.

    The synchronous world's handle on the service: ``start()`` blocks
    until the port is bound, ``stop()`` until the drain completes.  Used
    by the sync client tests, the load generator, and ``repro serve``.
    """

    def __init__(
        self,
        engine: SolveEngine,
        config: Optional[ServiceConfig] = None,
        own_engine: bool = False,
    ) -> None:
        self.service = SolveService(engine, config, own_engine=own_engine)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        port = self.service.port
        if port is None:
            raise RuntimeError("service not started")
        return port

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        done = concurrent.futures.Future()

        async def _shutdown() -> None:
            try:
                await self.service.stop()
            finally:
                done.set_result(None)
                loop.stop()

        loop.call_soon_threadsafe(lambda: asyncio.ensure_future(_shutdown()))
        done.result(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8157,
    engine: Optional[SolveEngine] = None,
    plan_store_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    **engine_kwargs,
) -> None:
    """Run a solve service until interrupted (``python -m repro serve``).

    *plan_store_dir* (also read from ``REPRO_PLAN_STORE`` by the engine)
    makes the boot durable: plans load from disk instead of being
    refactorized, and new factorizations are written back for the next
    restart.
    """
    own = engine is None
    if engine is None:
        if plan_store_dir is not None:
            engine_kwargs.setdefault("plan_store_dir", plan_store_dir)
        if checkpoint_dir is not None:
            engine_kwargs.setdefault("checkpoint_dir", checkpoint_dir)
        engine = SolveEngine(**engine_kwargs)
    hosted = ServiceThread(
        engine,
        ServiceConfig(
            host=host,
            port=port,
            plan_store_dir=plan_store_dir,
            checkpoint_dir=checkpoint_dir,
        ),
        own_engine=own,
    )
    hosted.start()
    print(f"repro solve service listening on {hosted.host}:{hosted.port}")
    print("press Ctrl+C to drain and exit")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining ...")
    finally:
        hosted.stop()
