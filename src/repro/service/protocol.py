"""The wire protocol of the solve service — compact length-prefixed frames.

Every message on a service connection is one **frame**:

.. code-block:: text

    0      4      5      6      8          12
    +------+------+------+------+----------+=================+
    | MAGC | ver  | type | flags| payload  |  payload bytes  |
    | 4 B  | u8   | u8   | u16  | len u32  |  (len bytes)    |
    +------+------+------+------+----------+=================+

The 12-byte header is ``!4sBBHI`` big-endian: the magic ``b"RSPL"``, the
protocol :data:`VERSION`, a frame type from :class:`FrameType`, reserved
flags, and the payload length.  A reader that sees a wrong magic or an
unknown version fails the connection immediately with
:class:`ProtocolError` — no resynchronization is attempted, a framing bug
must be loud.

Payloads carrying arrays (:data:`FrameType.REQUEST` /
:data:`FrameType.RESULT`) are a 4-byte JSON-metadata length, the UTF-8
JSON metadata, then the **raw C-order array bytes** exactly as NumPy
holds them (``dtype.str`` in the metadata preserves byte order).  Raw
bytes — not a textual encoding — are what make the service's end-to-end
bitwise-parity guarantee possible: the engine solves the very same IEEE
values the client held.  Control payloads (:data:`FrameType.ERROR`,
:data:`FrameType.CANCEL`, telemetry) are plain JSON.

Request metadata carries the full :class:`~repro.runtime.plan_cache.PlanKey`
spec — the frozen :class:`~repro.core.spec.BSplineSpec` fields plus
version / dtype / backend — and the multi-tenant envelope: tenant id,
priority class, per-request deadline (relative seconds), and the
client-chosen request id responses are matched on, which is what lets
responses return out of order (and hedged duplicates be told apart).
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import struct
from dataclasses import asdict, dataclass
from enum import IntEnum
from typing import Optional, Tuple

import numpy as np

from repro.core.spec import BSplineSpec
from repro.exceptions import ReproError

__all__ = [
    "MAGIC",
    "VERSION",
    "MAX_PAYLOAD",
    "FrameType",
    "ProtocolError",
    "Request",
    "Result",
    "ErrorInfo",
    "encode_frame",
    "decode_header",
    "HEADER",
    "HEADER_SIZE",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "encode_cancel",
    "decode_cancel",
    "encode_telemetry",
    "decode_telemetry",
    "spec_to_dict",
    "spec_from_dict",
    "pack_meta_and_array",
    "unpack_meta_and_array",
    "read_frame",
    "write_frame",
    "read_frame_async",
]

#: the four magic bytes opening every frame
MAGIC = b"RSPL"

#: protocol version; bumped on any incompatible framing change
VERSION = 1

#: absolute ceiling on payload size (a corrupt length prefix must not
#: OOM us); servers typically enforce a much smaller per-connection cap
#: via the ``max_payload`` argument of the frame readers — the declared
#: length is checked against it *before* any payload byte is read, so an
#: over-cap (or over-quota) client cannot force large allocations
MAX_PAYLOAD = 1 << 30

#: header: magic, version, frame type, flags, payload length
HEADER = struct.Struct("!4sBBHI")
HEADER_SIZE = HEADER.size


class FrameType(IntEnum):
    """What a frame's payload means."""

    REQUEST = 1  #: (spec, RHS, tenant, priority, deadline) solve request
    RESULT = 2  #: solved coefficients for one request id
    ERROR = 3  #: structured failure for one request id (or the connection)
    CANCEL = 4  #: drop a queued/hedged request id, no response owed
    TELEMETRY_REQ = 5  #: ask the server for its telemetry snapshot
    TELEMETRY = 6  #: the snapshot, as JSON
    PING = 7  #: liveness probe
    PONG = 8  #: liveness answer


class ProtocolError(ReproError, RuntimeError):
    """Malformed framing: bad magic, unknown version, truncated frame."""


# -- spec (de)serialization --------------------------------------------------

_SPEC_FIELDS = (
    "degree",
    "n_points",
    "uniform",
    "xmin",
    "xmax",
    "boundary",
    "nonuniform_kind",
    "nonuniform_strength",
    "seed",
)


def spec_to_dict(spec: BSplineSpec) -> dict:
    """A :class:`BSplineSpec` as a JSON-safe dict (all fields, explicit)."""
    return {name: getattr(spec, name) for name in _SPEC_FIELDS}


def spec_from_dict(data: dict) -> BSplineSpec:
    """Rebuild a :class:`BSplineSpec`; unknown keys are a protocol error."""
    unknown = set(data) - set(_SPEC_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown BSplineSpec fields {sorted(unknown)}")
    try:
        return BSplineSpec(**data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid BSplineSpec: {exc}") from exc


# -- message dataclasses -----------------------------------------------------


@dataclass
class Request:
    """One decoded solve request (the server-side view)."""

    id: int
    spec: BSplineSpec
    rhs: np.ndarray
    version: int = 2
    dtype: str = "float64"
    backend: str = "vectorized"
    tenant: str = "anonymous"
    priority: str = "normal"
    deadline: Optional[float] = None  #: relative seconds, not a wall time

    @property
    def cols(self) -> int:
        return 1 if self.rhs.ndim == 1 else int(self.rhs.shape[1])


@dataclass
class Result:
    """One decoded solve result (the client-side view)."""

    id: int
    coeffs: np.ndarray


@dataclass
class ErrorInfo:
    """One decoded error frame.

    ``code`` is a stable machine-readable string (``THROTTLED``,
    ``BACKPRESSURE``, ``TIMEOUT``, ``SHUTDOWN``, ``CIRCUIT_OPEN``,
    ``VERIFY_FAILED``, ``BAD_REQUEST``, ``INTERNAL``); ``error`` the
    server-side exception type name; ``retry_after`` a hint in seconds
    for ``THROTTLED`` rejections.  ``id`` is ``None`` for connection-level
    failures (e.g. an undecodable frame).
    """

    code: str
    message: str
    id: Optional[int] = None
    error: str = ""
    retry_after: Optional[float] = None
    tenant: Optional[str] = None


# -- frame encode / decode ---------------------------------------------------


def encode_frame(ftype: int, payload: bytes, flags: int = 0) -> bytes:
    """One complete frame: header + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD={MAX_PAYLOAD}"
        )
    return HEADER.pack(MAGIC, VERSION, int(ftype), flags, len(payload)) + payload


def decode_header(
    header: bytes, max_payload: int = MAX_PAYLOAD
) -> Tuple[int, int, int]:
    """Validate a 12-byte header; return ``(frame_type, flags, length)``.

    *max_payload* lets a reader enforce a cap tighter than the absolute
    :data:`MAX_PAYLOAD` ceiling; an over-cap declared length fails here,
    before any payload byte is read or buffered.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"short frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, ftype, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking {VERSION})"
        )
    if length > min(max_payload, MAX_PAYLOAD):
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{min(max_payload, MAX_PAYLOAD)}-byte payload cap"
        )
    return ftype, flags, length


def _pack_meta_and_array(meta: dict, array: np.ndarray) -> bytes:
    body = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    raw = np.ascontiguousarray(array)
    return struct.pack("!I", len(body)) + body + raw.tobytes(order="C")


def _unpack_meta_and_array(payload: bytes) -> Tuple[dict, np.ndarray]:
    if len(payload) < 4:
        raise ProtocolError("array payload shorter than its metadata prefix")
    (meta_len,) = struct.unpack_from("!I", payload)
    if 4 + meta_len > len(payload):
        raise ProtocolError("metadata length prefix exceeds payload")
    try:
        meta = json.loads(payload[4 : 4 + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame metadata: {exc}") from exc
    try:
        dtype = np.dtype(meta["array_dtype"])
        shape = tuple(int(s) for s in meta["array_shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad array metadata: {exc}") from exc
    if any(s < 0 for s in shape):
        raise ProtocolError(f"negative extent in declared shape {shape}")
    # Pure-Python ints: a huge declared shape must fail loudly here, not
    # wrap to a spuriously-passing expected byte count.
    count = math.prod(shape)
    if count > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared shape {shape} ({count} elements) exceeds any "
            f"payload the protocol admits"
        )
    expected = dtype.itemsize * count
    raw = payload[4 + meta_len :]
    if len(raw) != expected:
        raise ProtocolError(
            f"array byte count {len(raw)} does not match declared "
            f"shape {shape} / dtype {dtype} ({expected} bytes)"
        )
    array = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return meta, array


def pack_meta_and_array(meta: dict, array: np.ndarray) -> bytes:
    """JSON *meta* + raw C-order bytes of *array* as one array payload.

    The shared array-payload convention of this protocol (4-byte JSON
    length, UTF-8 JSON, then the array bytes exactly as NumPy holds
    them).  *meta* must carry ``array_shape`` / ``array_dtype`` for
    :func:`unpack_meta_and_array` to rebuild the array — callers (the
    service frames above, the cluster shard transport) add them.
    """
    return _pack_meta_and_array(meta, array)


def unpack_meta_and_array(payload: bytes) -> Tuple[dict, np.ndarray]:
    """Inverse of :func:`pack_meta_and_array`: ``(meta, array)``.

    Validates the declared shape/dtype against the actual byte count —
    a truncated or corrupt payload raises :class:`ProtocolError` rather
    than yielding a silently wrong array.
    """
    return _unpack_meta_and_array(payload)


def encode_request(req: Request) -> bytes:
    """A :class:`Request` as one REQUEST frame."""
    meta = {
        "id": int(req.id),
        "spec": spec_to_dict(req.spec),
        "version": int(req.version),
        "dtype": str(req.dtype),
        "backend": str(req.backend),
        "tenant": str(req.tenant),
        "priority": str(req.priority),
        "deadline": req.deadline,
        "array_shape": list(req.rhs.shape),
        "array_dtype": req.rhs.dtype.str,  # byte order included: bitwise
    }
    return encode_frame(FrameType.REQUEST, _pack_meta_and_array(meta, req.rhs))


def decode_request(payload: bytes) -> Request:
    meta, rhs = _unpack_meta_and_array(payload)
    try:
        return Request(
            id=int(meta["id"]),
            spec=spec_from_dict(meta["spec"]),
            rhs=rhs,
            version=int(meta.get("version", 2)),
            dtype=str(meta.get("dtype", "float64")),
            backend=str(meta.get("backend", "vectorized")),
            tenant=str(meta.get("tenant", "anonymous")),
            priority=str(meta.get("priority", "normal")),
            deadline=meta.get("deadline"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad request metadata: {exc}") from exc


def encode_result(request_id: int, coeffs: np.ndarray) -> bytes:
    meta = {
        "id": int(request_id),
        "array_shape": list(coeffs.shape),
        "array_dtype": coeffs.dtype.str,
    }
    return encode_frame(FrameType.RESULT, _pack_meta_and_array(meta, coeffs))


def decode_result(payload: bytes) -> Result:
    meta, coeffs = _unpack_meta_and_array(payload)
    try:
        return Result(id=int(meta["id"]), coeffs=coeffs)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad result metadata: {exc}") from exc


def encode_error(info: ErrorInfo) -> bytes:
    payload = json.dumps(
        {k: v for k, v in asdict(info).items() if v is not None},
        separators=(",", ":"),
    ).encode("utf-8")
    return encode_frame(FrameType.ERROR, payload)


def decode_error(payload: bytes) -> ErrorInfo:
    try:
        data = json.loads(payload.decode("utf-8"))
        return ErrorInfo(
            code=str(data["code"]),
            message=str(data.get("message", "")),
            id=data.get("id"),
            error=str(data.get("error", "")),
            retry_after=data.get("retry_after"),
            tenant=data.get("tenant"),
        )
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ProtocolError(f"undecodable error frame: {exc}") from exc


def encode_cancel(request_id: int) -> bytes:
    return encode_frame(
        FrameType.CANCEL,
        json.dumps({"id": int(request_id)}, separators=(",", ":")).encode(),
    )


def decode_cancel(payload: bytes) -> int:
    try:
        return int(json.loads(payload.decode("utf-8"))["id"])
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ProtocolError(f"undecodable cancel frame: {exc}") from exc


def encode_telemetry(snapshot: dict) -> bytes:
    # allow_nan: telemetry quantiles are NaN before any sample; both ends
    # of this protocol are Python's json module, which round-trips them.
    return encode_frame(
        FrameType.TELEMETRY, json.dumps(snapshot, default=str).encode("utf-8")
    )


def decode_telemetry(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable telemetry frame: {exc}") from exc


# -- blocking socket I/O (sync client, tests) --------------------------------


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* bytes or raise on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_payload: int = MAX_PAYLOAD
) -> Tuple[int, int, bytes]:
    """Read one frame from a blocking socket: ``(type, flags, payload)``.

    Raises :class:`ConnectionError` on clean EOF *before* a header (the
    peer closed between frames) with an empty message marker, and on EOF
    mid-frame with a diagnostic.  A declared length beyond *max_payload*
    raises :class:`ProtocolError` before any payload byte is read.
    """
    try:
        header = _recv_exactly(sock, HEADER_SIZE)
    except ConnectionError as exc:
        if "0 of" in str(exc):
            raise ConnectionError("connection closed") from None
        raise
    ftype, flags, length = decode_header(header, max_payload)
    payload = _recv_exactly(sock, length) if length else b""
    return ftype, flags, payload


def write_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(frame)


# -- asyncio stream I/O (server, async client) -------------------------------


async def read_frame_async(
    reader: "asyncio.StreamReader", max_payload: int = MAX_PAYLOAD
) -> Tuple[int, int, bytes]:
    """Read one frame from an asyncio stream: ``(type, flags, payload)``.

    Raises :class:`asyncio.IncompleteReadError` on EOF (empty partial
    means the peer closed cleanly between frames) and
    :class:`ProtocolError` — before buffering any payload byte — when
    the declared length exceeds *max_payload*.
    """
    header = await reader.readexactly(HEADER_SIZE)
    ftype, flags, length = decode_header(header, max_payload)
    payload = await reader.readexactly(length) if length else b""
    return ftype, flags, payload
