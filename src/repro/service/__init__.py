"""repro.service — serve spline solves over the network.

Layer on top of the runtime engine: a compact binary wire protocol
(:mod:`~repro.service.protocol`), an asyncio TCP server with per-tenant
admission control and fair-share dispatch (:mod:`~repro.service.server`,
:mod:`~repro.service.admission`), sync/async clients with hedged sends
(:mod:`~repro.service.client`), and a multi-tenant load generator
(:mod:`~repro.service.loadgen`, runnable as
``python -m repro.service.bench``).

Quick start::

    from repro.runtime.engine import SolveEngine
    from repro.service import ServiceThread, ServiceClient

    engine = SolveEngine()
    with ServiceThread(engine, own_engine=True) as hosted:
        with ServiceClient(hosted.host, hosted.port) as client:
            coeffs = client.solve(spec, rhs, tenant="alice")
"""

from repro.service.admission import (
    AdmissionController,
    FairShareQueue,
    QuotaExceededError,
    TenantQuota,
    ThrottledError,
    TokenBucket,
)
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.protocol import ErrorInfo, FrameType, ProtocolError, Request
from repro.service.server import ServiceConfig, ServiceThread, SolveService, serve

__all__ = [
    "AdmissionController",
    "FairShareQueue",
    "QuotaExceededError",
    "TenantQuota",
    "ThrottledError",
    "TokenBucket",
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceError",
    "ErrorInfo",
    "FrameType",
    "ProtocolError",
    "Request",
    "ServiceConfig",
    "ServiceThread",
    "SolveService",
    "serve",
]
