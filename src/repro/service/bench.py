"""``python -m repro.service.bench`` — the service load generator CLI.

Thin runnable alias for :mod:`repro.service.loadgen` (kept separate so
the loadgen module stays importable without argparse side effects).
"""

from repro.service.loadgen import main

if __name__ == "__main__":
    raise SystemExit(main())
