"""Multi-tenant admission control — quotas, priorities, fair share.

The engine under the service already has *global* safety valves
(backpressure, deadlines, a circuit breaker); what it cannot do is tell
tenants apart.  This module adds the *who* dimension in three pieces:

:class:`TokenBucket` / :class:`TenantQuota` / :class:`AdmissionController`
    Per-tenant rate limiting in columns per second.  Each tenant owns a
    token bucket (``rate`` columns/s refill, ``burst`` columns capacity);
    a request that cannot afford its column cost is rejected **at the
    door** with a ``retry_after`` hint, before any engine work — the
    service maps this to a ``THROTTLED`` error frame.  A hot tenant is
    therefore throttled to its quota no matter how fast it sends.

:class:`FairShareQueue`
    Deficit-weighted round-robin (DWRR) dispatch ordering across the
    *admitted* requests.  Priority classes are strict — every queued
    ``interactive`` request dispatches before any ``normal``, which beats
    any ``batch`` — and within a class each tenant accumulates deficit
    (``quantum × weight`` columns per round-robin turn) and may dispatch
    requests while its deficit covers their column cost.  Cost-aware
    deficits are what make one tenant's *wide* requests count against it:
    fairness is in columns, the unit the engine's batches are made of.

Both pieces are clock-injectable (``clock=``) so tests drive them
deterministically, and both are plain data structures — the asyncio
server wraps them, they do not know about sockets or the engine.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "TokenBucket",
    "TenantQuota",
    "AdmissionController",
    "ThrottledError",
    "QuotaExceededError",
    "FairShareQueue",
]

#: priority classes in dispatch order: lower rank dispatches first
PRIORITIES: Dict[str, int] = {"interactive": 0, "normal": 1, "batch": 2}

DEFAULT_PRIORITY = "normal"


class ThrottledError(ReproError, RuntimeError):
    """A tenant exceeded its quota; retry after :attr:`retry_after` seconds."""

    def __init__(self, message: str, retry_after: float = 0.0, tenant=None):
        super().__init__(message)
        self.retry_after = retry_after
        self.tenant = tenant


class QuotaExceededError(ReproError, ValueError):
    """A single request's cost exceeds the tenant's *burst* capacity.

    Unlike :class:`ThrottledError` this is permanent — no amount of
    waiting refills a bucket beyond its burst, so retrying the same
    request can never succeed.  Subclasses :class:`ValueError` so the
    service maps it to a ``BAD_REQUEST`` error frame (no misleading
    ``retry_after`` hint).
    """

    def __init__(self, message: str, tenant=None):
        super().__init__(message)
        self.tenant = tenant


class TokenBucket:
    """A classic token bucket: *rate* tokens/s refill, *burst* capacity.

    Starts full.  ``try_acquire(cost)`` spends tokens if the bucket
    holds at least *cost*, else reports how long until it would.
    Unsynchronized — the owner (:class:`AdmissionController`) locks.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now

    def try_acquire(self, cost: float, now: float) -> Optional[float]:
        """Spend *cost* tokens; ``None`` on success, else seconds to wait.

        A *cost* beyond the burst capacity can **never** succeed — tokens
        cap at ``burst`` — so it returns ``math.inf`` rather than a
        finite wait a client would fruitlessly honour forever; callers
        must surface that as a permanent rejection, not a retry hint.
        """
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return None
        if cost > self.burst:
            return math.inf
        return (cost - self.tokens) / self.rate


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission parameters.

    ``rate``/``burst`` are in *columns* per second / columns — the unit
    of engine work — so a tenant sending wide blocks spends its quota
    exactly as fast as one sending many single columns.  ``weight``
    scales the tenant's DWRR deficit refill: weight 2 earns twice the
    batch share of weight 1 when both are backlogged.
    """

    rate: float = 10_000.0
    burst: float = 20_000.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


class AdmissionController:
    """Per-tenant token-bucket admission, thread-safe.

    Parameters
    ----------
    default_quota:
        Applied to tenants without an explicit entry in *quotas*.
    quotas:
        Per-tenant overrides (the "paying customer" table).
    clock:
        Monotonic-seconds source; injected by tests.
    """

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def admit(self, tenant: str, cols: int) -> None:
        """Charge *cols* columns to *tenant*; raise :class:`ThrottledError`
        (with a ``retry_after`` hint) when its bucket cannot afford them
        yet, or :class:`QuotaExceededError` when *cols* exceeds the
        tenant's burst capacity outright (permanently unserviceable).

        Zero-column requests are always admitted — they cost the engine
        nothing and keep the protocol's edge cases boring.
        """
        if cols <= 0:
            with self._lock:
                self.admitted += 1
            return
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                quota = self.quota_for(tenant)
                bucket = self._buckets[tenant] = TokenBucket(
                    quota.rate, quota.burst, now
                )
            wait = bucket.try_acquire(float(cols), now)
            if wait is None:
                self.admitted += 1
                return
            self.rejected += 1
        if math.isinf(wait):
            raise QuotaExceededError(
                f"request of {cols} columns exceeds tenant {tenant!r} "
                f"burst capacity "
                f"({self.quota_for(tenant).burst:g} columns); "
                f"split the request — retrying cannot succeed",
                tenant=tenant,
            )
        raise ThrottledError(
            f"tenant {tenant!r} over quota "
            f"({self.quota_for(tenant).rate:g} cols/s): "
            f"retry in {wait:.3f}s",
            retry_after=wait,
            tenant=tenant,
        )


class FairShareQueue:
    """Strict-priority, deficit-weighted-round-robin dispatch queue.

    Items are pushed with ``(tenant, priority, cost)`` and popped in the
    order the service should hand them to the engine:

    1. priority classes are strict — any queued item of a higher class
       (lower :data:`PRIORITIES` rank) dispatches first;
    2. within a class, tenants are served round-robin; each visit tops a
       tenant's deficit up by ``quantum × weight`` columns, and the
       tenant dispatches queued items (FIFO) while the deficit covers
       their cost.  Deficit persists across turns — a wide request is
       eventually affordable — and resets when the tenant's queue
       empties, so idle tenants cannot bank credit.

    Not thread-safe by itself; the asyncio server owns it from one loop
    (the sync tests drive it directly).
    """

    def __init__(
        self,
        quantum: float = 64.0,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.quantum = float(quantum)
        self.weights = dict(weights or {})
        # class rank -> (ring of tenant keys, tenant -> FIFO of (cost, item))
        self._classes: Dict[int, Tuple[Deque[str], "OrderedDict[str, Deque]"]] = {}
        self._deficits: Dict[Tuple[int, str], float] = {}
        # rank -> tenant currently mid-visit at the ring head (already
        # topped up; drains without further refill until it rotates)
        self._visiting: Dict[int, Optional[str]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _rank(self, priority: str) -> int:
        try:
            return PRIORITIES[priority]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r}; expected one of "
                f"{sorted(PRIORITIES)}"
            ) from None

    def push(self, item, tenant: str, priority: str, cost: float) -> None:
        """Queue *item* for dispatch under (*tenant*, *priority*)."""
        rank = self._rank(priority)
        entry = self._classes.get(rank)
        if entry is None:
            entry = self._classes[rank] = (deque(), OrderedDict())
        ring, queues = entry
        queue = queues.get(tenant)
        if queue is None:
            queue = queues[tenant] = deque()
            ring.append(tenant)
        queue.append((max(0.0, float(cost)), item))
        self._size += 1

    def pop(self):
        """The next item in fair-share order, or ``None`` when empty."""
        for rank in sorted(self._classes):
            ring, queues = self._classes[rank]
            if not ring:
                continue
            # DWRR: arriving at the ring head earns one quantum×weight
            # top-up; the tenant then drains FIFO while the deficit
            # covers head costs (it stays "visiting" across pop calls,
            # with no further refill) and rotates away when it cannot
            # afford its next item.  A cost above quantum×weight just
            # takes several arrivals — deficit persists across turns.
            while True:
                tenant = ring[0]
                queue = queues[tenant]
                key = (rank, tenant)
                if self._visiting.get(rank) != tenant:
                    weight = self.weights.get(tenant, 1.0)
                    self._deficits[key] = (
                        self._deficits.get(key, 0.0) + self.quantum * weight
                    )
                    self._visiting[rank] = tenant
                cost, item = queue[0]
                if self._deficits[key] >= cost:
                    queue.popleft()
                    self._deficits[key] -= cost
                    self._size -= 1
                    if not queue:
                        # Emptied: forget the deficit so credit does not
                        # bank across idle periods.
                        self._deficits.pop(key, None)
                        self._visiting[rank] = None
                        ring.popleft()
                        del queues[tenant]
                    return item
                self._visiting[rank] = None
                ring.rotate(-1)
        return None

    def drain(self) -> List:
        """Every queued item, highest priority first, fair-share within."""
        items = []
        while True:
            item = self.pop()
            if item is None:
                return items
            items.append(item)
