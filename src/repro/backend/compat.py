"""Portability helpers bridging the array-API standard and fast NumPy paths.

The kernels in :mod:`repro.kbatched` are written against the array-API
standard, but three categories of operation need a helper:

* **ordering-sensitive contractions** — the batch-width-invariant corner
  update must keep its exact ``einsum(..., optimize=False)`` evaluation
  order on NumPy (bitwise reproducibility across batch widths), while
  non-NumPy backends fall back to ``matmul``;
* **scatter/gather** — ``np.add.at`` and 2-D fancy indexing are not in the
  standard; the helpers keep the fast NumPy ufunc path and provide a
  loop-free (or small-loop) standard-compliant fallback;
* **ingress/egress shims** — ``asnumpy`` / ``ascopy`` convert at the public
  boundaries where host-side NumPy is part of the contract (factorization
  setup, shared-memory transport).

Every helper preserves the operand dtype: float32 in, float32 out.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.backend.registry import get_namespace, is_numpy_namespace

__all__ = [
    "add_at_2d",
    "ascontiguous",
    "ascopy",
    "asnumpy",
    "astype",
    "isdtype",
    "is_floating",
    "is_integral",
    "ordered_batched_vecmat",
    "ordered_matmul",
    "outer",
    "outer_update",
    "take_2d",
]


def ordered_matmul(xp, a, b):
    """``a @ b`` with a pinned summation order on NumPy.

    On the NumPy reference backend this is the batch-width-invariant
    contraction ``einsum("ik,kj->ij", a, b, optimize=False)`` — the fixed
    k-ordered accumulation that keeps column results independent of how
    many columns share the call (PR 4).  Other backends use ``matmul``;
    their accumulation order is theirs to define.
    """
    if is_numpy_namespace(xp):
        return np.einsum("ik,kj->ij", a, b, optimize=False)
    return xp.matmul(a, b)


def ordered_batched_vecmat(xp, a, b):
    """Batched ``a[b,k] · b[b,k,r] -> y[b,r]`` with pinned order on NumPy.

    NumPy uses ``einsum("bk,bkr->br", ..., optimize=False)``; standard
    backends reshape through ``matmul``.
    """
    if is_numpy_namespace(xp):
        return np.einsum("bk,bkr->br", a, b, optimize=False)
    batch, k = a.shape
    a3 = xp.reshape(a, (batch, 1, k))
    return xp.reshape(xp.matmul(a3, b), (batch, b.shape[2]))


def outer(xp, u, v):
    """``outer(u, v)`` for 1-D ``u`` (m) and ``v`` (n) without ``None``
    indexing; bitwise equal to ``np.outer`` on NumPy."""
    return xp.reshape(u, (u.shape[0], 1)) * xp.reshape(v, (1, v.shape[0]))


def outer_update(xp, y, alpha, u, v):
    """``y += alpha * outer(u, v)`` for 1-D ``u`` (m), ``v`` (n), 2-D ``y``.

    ``np.outer`` / ``None``-indexing are not in the standard; the reshape
    product is, and it matches NumPy's ``outer`` bitwise.
    """
    m = u.shape[0]
    n = v.shape[0]
    y += alpha * (xp.reshape(u, (m, 1)) * xp.reshape(v, (1, n)))


def take_2d(xp, a, rows, cols):
    """Gather ``a[rows[i], cols[i]]`` from 2-D *a* (1-D result).

    2-D integer-array indexing is a NumPy extension; the standard path
    flattens and uses ``take``.  *rows*/*cols* are host NumPy index
    arrays.
    """
    if is_numpy_namespace(xp):
        return a[rows, cols]
    flat = xp.reshape(a, (-1,))
    idx = xp.asarray(rows * a.shape[1] + cols)
    return xp.take(flat, idx)


def add_at_2d(xp, out, rows, cols, values):
    """Scatter-add ``out[rows[i], cols[i]] += values[i]`` (duplicates
    accumulate).

    NumPy uses the ``np.add.at`` unbuffered ufunc; the standard fallback
    is a scalar loop — acceptable because corner COO patterns hold a
    handful of entries (O(degree²)), never the dense interior.
    """
    if is_numpy_namespace(xp) and isinstance(values, np.ndarray):
        np.add.at(out, (rows, cols), values)
        return
    for i in range(len(rows)):
        r = int(rows[i])
        c = int(cols[i])
        out[r, c] += values[i]


def asnumpy(x) -> np.ndarray:
    """Materialise *x* as a host :class:`numpy.ndarray` (egress shim)."""
    if isinstance(x, np.ndarray):
        return x
    unwrap = getattr(x, "__array__", None)
    if unwrap is not None:
        return np.asarray(x)
    # Standard-compliant but NumPy-opaque arrays (e.g. the strict test
    # namespace): copy element-wise through the namespace.
    xp = get_namespace(x)
    out = np.empty(x.shape, dtype=_numpy_dtype(x.dtype))
    flat = xp.reshape(x, (-1,))
    for i in range(out.size):
        out.reshape(-1)[i] = flat[i]
    return out


def _numpy_dtype(dtype) -> np.dtype:
    """Best-effort conversion of a backend dtype object to a NumPy dtype."""
    try:
        return np.dtype(dtype)
    except TypeError:
        return np.dtype(str(dtype).rsplit(".", maxsplit=1)[-1])


def ascopy(x, dtype=None, xp=None):
    """A fresh, writable copy of *x* (optionally cast), same namespace.

    The NumPy path pins C order for downstream kernels; standard backends
    own their layout.
    """
    if xp is None:
        xp = get_namespace(x)
    if is_numpy_namespace(xp):
        return np.array(x, dtype=dtype, copy=True, order="C")
    if dtype is not None and x.dtype != dtype:
        return xp.astype(x, dtype, copy=True)
    return xp.asarray(x, copy=True)


def ascontiguous(x):
    """C-contiguous view-or-copy on NumPy; identity elsewhere (the
    standard has no layout concept)."""
    if isinstance(x, np.ndarray):
        return np.ascontiguousarray(x)
    return x


def astype(xp, x, dtype, copy: bool = True):
    """``xp.astype`` with a NumPy fast path (NumPy 2 has ``np.astype``
    too, but the method form avoids a copy when ``copy=False``)."""
    if is_numpy_namespace(xp):
        return x.astype(dtype, copy=copy)
    return xp.astype(x, dtype, copy=copy)


def isdtype(xp, dtype, kind) -> bool:
    """``xp.isdtype`` with a NumPy fallback for pre-2.0 namespaces."""
    fn = getattr(xp, "isdtype", None)
    if fn is not None:
        return bool(fn(dtype, kind))
    kinds = kind if isinstance(kind, tuple) else (kind,)
    np_dtype = _numpy_dtype(dtype)
    checks = {
        "bool": lambda d: d == np.bool_,
        "signed integer": lambda d: np.issubdtype(d, np.signedinteger),
        "unsigned integer": lambda d: np.issubdtype(d, np.unsignedinteger),
        "integral": lambda d: np.issubdtype(d, np.integer),
        "real floating": lambda d: np.issubdtype(d, np.floating),
        "complex floating": lambda d: np.issubdtype(d, np.complexfloating),
        "numeric": lambda d: np.issubdtype(d, np.number),
    }
    for k in kinds:
        if isinstance(k, str):
            if checks[k](np_dtype):
                return True
        elif np_dtype == np.dtype(k):
            return True
    return False


def is_floating(xp, dtype) -> bool:
    """True for real- or complex-floating *dtype* (the dtypes the solver
    kernels preserve end to end)."""
    return isdtype(xp, dtype, ("real floating", "complex floating"))


def is_integral(xp, dtype) -> bool:
    """True for boolean or integer *dtype* (the only inputs COO ingestion
    may promote)."""
    return isdtype(xp, dtype, ("bool", "integral"))
