"""A minimal strict array-API namespace for conformance testing.

``array_api_strict`` is the canonical strictness oracle, but it is an
optional install.  This module is an in-repo stand-in: a thin wrapper
around NumPy that *rejects* the NumPy extensions the array-API standard
does not guarantee, so the kernel conformance suite can fail loudly even
when ``array_api_strict`` is absent:

* partial indexing of multi-dimensional arrays (``a[i]`` on 2-D) — a
  tuple with one index per axis, or an explicit ellipsis, is required;
* ``None`` (newaxis) and integer-array/boolean-mask indexing;
* ``.T`` on anything but 2-D arrays;
* ``__array__`` interop (NumPy functions cannot silently absorb these
  arrays) and float/int coercion of non-0-d arrays.

It implements exactly the subset of the standard the kernel layer uses;
it is a test oracle, not a performance backend.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Array",
    "abs",
    "any",
    "arange",
    "argmax",
    "asarray",
    "astype",
    "bool",
    "complex128",
    "complex64",
    "empty",
    "float32",
    "float64",
    "int32",
    "int64",
    "isdtype",
    "matmul",
    "max",
    "min",
    "nonzero",
    "reshape",
    "sqrt",
    "stack",
    "sum",
    "take",
    "zeros",
]

_builtin_bool = bool
_builtin_abs = abs

float32 = np.float32
float64 = np.float64
complex64 = np.complex64
complex128 = np.complex128
int32 = np.int32
int64 = np.int64
bool = np.bool_

_SCALARS = (_builtin_bool, int, float, complex)


def _unwrap(x):
    if isinstance(x, Array):
        return x._a
    if isinstance(x, _SCALARS):
        return x
    raise TypeError(
        f"minimal backend operations accept minimal arrays and Python "
        f"scalars, not {type(x).__name__}"
    )


def _wrap(a):
    return Array(np.asarray(a))


def _check_index(ndim: int, idx) -> tuple:
    """Enforce the standard's indexing rules; return a NumPy-safe index."""
    if not isinstance(idx, tuple):
        idx = (idx,)
    has_ellipsis = False
    n_axes = 0
    clean = []
    for item in idx:
        if item is Ellipsis:
            if has_ellipsis:
                raise IndexError("an index may contain at most one ellipsis")
            has_ellipsis = True
            clean.append(item)
        elif item is None:
            raise IndexError(
                "newaxis (None) indexing is not part of the array API "
                "standard; use reshape"
            )
        elif isinstance(item, slice):
            for bound in (item.start, item.stop, item.step):
                if bound is not None and not isinstance(bound, int):
                    try:
                        bound = bound.__index__()
                    except AttributeError:
                        raise IndexError(
                            "slice bounds must be integers"
                        ) from None
            n_axes += 1
            clean.append(item)
        elif isinstance(item, (Array, np.ndarray, list)):
            raise IndexError(
                "integer-array / boolean-mask indexing is not part of the "
                "array API standard; use take"
            )
        else:
            try:
                clean.append(item.__index__())
            except AttributeError:
                raise IndexError(
                    f"unsupported index component {item!r}"
                ) from None
            n_axes += 1
    if not has_ellipsis and n_axes != ndim:
        raise IndexError(
            f"the array API standard requires one index per axis (or an "
            f"explicit ellipsis): got {n_axes} indices for {ndim} axes"
        )
    if n_axes > ndim:
        raise IndexError(f"too many indices ({n_axes}) for {ndim} axes")
    return tuple(clean)


class Array:
    """Minimal strict array: wraps a NumPy buffer, hides NumPy behaviour."""

    __slots__ = ("_a",)

    # Keep NumPy from absorbing us via its protocols.
    __array_ufunc__ = None
    __array_function__ = None

    def __init__(self, a: np.ndarray):
        self._a = a

    def __array_namespace__(self, api_version=None):
        import repro.backend.minimal as ns
        return ns

    # -- introspection -------------------------------------------------
    @property
    def dtype(self):
        return self._a.dtype

    @property
    def shape(self):
        return self._a.shape

    @property
    def ndim(self):
        return self._a.ndim

    @property
    def size(self):
        return self._a.size

    @property
    def device(self):
        return "cpu"

    @property
    def T(self):
        if self._a.ndim != 2:
            raise ValueError(
                ".T is only defined for 2-D arrays in the array API "
                "standard; use permute_dims"
            )
        return Array(self._a.T)

    @property
    def mT(self):
        if self._a.ndim < 2:
            raise ValueError(".mT requires at least 2 dimensions")
        return Array(np.swapaxes(self._a, -1, -2))

    def __repr__(self):
        return f"minimal.Array({self._a!r})"

    # -- scalar coercion (0-d only, per the standard) ------------------
    def _scalar(self):
        if self._a.ndim != 0:
            raise TypeError(
                "only 0-dimensional arrays can be converted to scalars"
            )
        return self._a[()]

    def __float__(self):
        return float(self._scalar())

    def __int__(self):
        return int(self._scalar())

    def __complex__(self):
        return complex(self._scalar())

    def __bool__(self):
        return _builtin_bool(self._scalar())

    def __index__(self):
        s = self._scalar()
        if not np.issubdtype(self._a.dtype, np.integer):
            raise TypeError("only integer arrays can be used as indices")
        return int(s)

    # -- indexing ------------------------------------------------------
    def __getitem__(self, idx):
        out = self._a[_check_index(self._a.ndim, idx)]
        return Array(out if isinstance(out, np.ndarray) else np.asarray(out))

    def __setitem__(self, idx, value):
        self._a[_check_index(self._a.ndim, idx)] = _unwrap(value)

    # -- arithmetic ----------------------------------------------------
    def _binop(self, other, op):
        try:
            other = _unwrap(other)
        except TypeError:
            return NotImplemented
        return _wrap(op(self._a, other))

    def _rbinop(self, other, op):
        try:
            other = _unwrap(other)
        except TypeError:
            return NotImplemented
        return _wrap(op(other, self._a))

    def _ibinop(self, other, op):
        op(self._a, _unwrap(other))
        return self

    def __add__(self, o):
        return self._binop(o, lambda a, b: a + b)

    def __radd__(self, o):
        return self._rbinop(o, lambda a, b: a + b)

    def __sub__(self, o):
        return self._binop(o, lambda a, b: a - b)

    def __rsub__(self, o):
        return self._rbinop(o, lambda a, b: a - b)

    def __mul__(self, o):
        return self._binop(o, lambda a, b: a * b)

    def __rmul__(self, o):
        return self._rbinop(o, lambda a, b: a * b)

    def __truediv__(self, o):
        return self._binop(o, lambda a, b: a / b)

    def __rtruediv__(self, o):
        return self._rbinop(o, lambda a, b: a / b)

    def __pow__(self, o):
        return self._binop(o, lambda a, b: a ** b)

    def __matmul__(self, o):
        return self._binop(o, lambda a, b: a @ b)

    def __rmatmul__(self, o):
        return self._rbinop(o, lambda a, b: a @ b)

    def __neg__(self):
        return _wrap(-self._a)

    def __pos__(self):
        return _wrap(+self._a)

    def __abs__(self):
        return _wrap(np.abs(self._a))

    # In-place operators must mutate the underlying buffer: kernels rely
    # on ``b[...] op= x`` writing through views handed across calls.
    def __iadd__(self, o):
        return self._ibinop(o, lambda a, b: a.__iadd__(b))

    def __isub__(self, o):
        return self._ibinop(o, lambda a, b: a.__isub__(b))

    def __imul__(self, o):
        return self._ibinop(o, lambda a, b: a.__imul__(b))

    def __itruediv__(self, o):
        return self._ibinop(o, lambda a, b: a.__itruediv__(b))

    # -- comparisons ---------------------------------------------------
    def __eq__(self, o):  # noqa: D105
        return self._binop(o, lambda a, b: a == b)

    def __ne__(self, o):
        return self._binop(o, lambda a, b: a != b)

    def __lt__(self, o):
        return self._binop(o, lambda a, b: a < b)

    def __le__(self, o):
        return self._binop(o, lambda a, b: a <= b)

    def __gt__(self, o):
        return self._binop(o, lambda a, b: a > b)

    def __ge__(self, o):
        return self._binop(o, lambda a, b: a >= b)

    __hash__ = None


# -- namespace functions ----------------------------------------------


def asarray(obj, dtype=None, copy=None):
    if isinstance(obj, Array):
        a = obj._a
    elif isinstance(obj, np.ndarray) or isinstance(obj, _SCALARS) \
            or isinstance(obj, (list, tuple)):
        a = np.asarray(obj)
    else:
        raise TypeError(f"cannot convert {type(obj).__name__} to array")
    if copy:
        a = np.array(a, dtype=dtype, copy=True)
    elif dtype is not None:
        a = np.asarray(a, dtype=dtype)
    return Array(a)


def zeros(shape, *, dtype=float64):
    return Array(np.zeros(shape, dtype=dtype))


def empty(shape, *, dtype=float64):
    return Array(np.empty(shape, dtype=dtype))


def arange(start, stop=None, step=1, *, dtype=None):
    return Array(np.arange(start, stop, step, dtype=dtype))


def reshape(x, shape):
    return Array(np.reshape(_unwrap(x), shape))


def permute_dims(x, axes):
    return _wrap(np.transpose(_unwrap(x), axes))


def astype(x, dtype, *, copy=True):
    return Array(_unwrap(x).astype(dtype, copy=copy))


def isdtype(dtype, kind):
    return np.isdtype(dtype, kind)


def abs(x):  # noqa: A001
    return _wrap(np.abs(_unwrap(x)))


def sqrt(x):
    return _wrap(np.sqrt(_unwrap(x)))


def matmul(a, b):
    return _wrap(np.matmul(_unwrap(a), _unwrap(b)))


def take(x, indices, *, axis=None):
    return _wrap(np.take(_unwrap(x), _unwrap(indices), axis=axis))


def nonzero(x):
    return tuple(_wrap(part) for part in np.nonzero(_unwrap(x)))


def argmax(x, *, axis=None, keepdims=False):
    return _wrap(np.argmax(_unwrap(x), axis=axis, keepdims=keepdims))


def any(x, *, axis=None, keepdims=False):  # noqa: A001
    return _wrap(np.any(_unwrap(x), axis=axis, keepdims=keepdims))


def min(x, *, axis=None, keepdims=False):  # noqa: A001
    return _wrap(np.min(_unwrap(x), axis=axis, keepdims=keepdims))


def max(x, *, axis=None, keepdims=False):  # noqa: A001
    return _wrap(np.max(_unwrap(x), axis=axis, keepdims=keepdims))


def sum(x, *, axis=None, dtype=None, keepdims=False):  # noqa: A001
    return _wrap(np.sum(_unwrap(x), axis=axis, dtype=dtype,
                        keepdims=keepdims))


def stack(arrays, *, axis=0):
    return _wrap(np.stack([_unwrap(a) for a in arrays], axis=axis))
