"""Array-API backend layer: one kernel source, many array libraries.

``repro.backend`` is how the kernel layer stays performance-portable in
the paper's sense: :mod:`repro.kbatched` and :mod:`repro.xspace` are
written once against the array-API standard, and the namespace actually
executing the arithmetic is resolved *from the operands* at call time
(:func:`get_namespace`).  NumPy is the bitwise reference backend; cupy /
torch / jax / ``array_api_strict`` participate when importable, selected
either implicitly (pass their arrays in) or explicitly via the
``REPRO_BACKEND`` environment variable / ``EngineConfig(backend_ns=...)``.

See ``docs/backends.md`` for resolution order and strictness caveats.
"""

from repro.backend.registry import (
    ENV_VAR,
    available_backends,
    backend_name_of,
    default_namespace,
    get_namespace,
    is_numpy_namespace,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backend.compat import (
    add_at_2d,
    ascontiguous,
    ascopy,
    asnumpy,
    astype,
    is_floating,
    is_integral,
    isdtype,
    ordered_batched_vecmat,
    ordered_matmul,
    outer,
    outer_update,
    take_2d,
)

from typing import Any as _Any

#: Typing alias for "any array-API array" at kernel boundaries.  Kernel
#: modules annotate with this instead of importing NumPy.
Array = _Any

__all__ = [
    "ENV_VAR",
    "Array",
    "add_at_2d",
    "ascontiguous",
    "ascopy",
    "asnumpy",
    "astype",
    "available_backends",
    "backend_name_of",
    "default_namespace",
    "get_namespace",
    "is_floating",
    "is_integral",
    "is_numpy_namespace",
    "isdtype",
    "ordered_batched_vecmat",
    "ordered_matmul",
    "outer",
    "outer_update",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "take_2d",
]
