"""Backend namespace resolution and registry.

The kernel layer (:mod:`repro.kbatched`, :mod:`repro.xspace`) is written
against the `Python array API standard <https://data-apis.org/array-api/>`_:
every kernel resolves its namespace *from its operands* with
:func:`get_namespace` and performs all arithmetic through that namespace.
NumPy is the reference backend; cupy / torch / jax (and
``array_api_strict``, the standard's strict reference implementation) drop
in when importable, without forking the numerics.

Resolution is ``array_api_compat``-style but **pure stdlib** — no third
party shim is required:

1. an operand advertising ``__array_namespace__`` (NumPy >= 2, cupy,
   ``array_api_strict``, …) resolves to that namespace;
2. a bare :class:`numpy.ndarray` / scalar resolves to :mod:`numpy`;
3. otherwise the operand's root module name is looked up in the backend
   registry (``torch.Tensor`` -> the registered torch namespace, …).

The registry also names backends for configuration: ``REPRO_BACKEND`` (or
``EngineConfig(backend_ns=...)``) selects the *default* namespace used when
no operand pins one.
"""

from __future__ import annotations

import importlib
import os
import threading
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import BackendError

__all__ = [
    "ENV_VAR",
    "available_backends",
    "registered_backends",
    "backend_name_of",
    "default_namespace",
    "get_namespace",
    "is_numpy_namespace",
    "register_backend",
    "resolve_backend",
]

#: Environment variable naming the default backend namespace.
ENV_VAR = "REPRO_BACKEND"

_LOCK = threading.Lock()


class _BackendSpec:
    """A lazily-imported backend: a name plus a loader returning its
    array-API namespace, and the operand root-module names it claims."""

    __slots__ = ("name", "loader", "modules", "_ns")

    def __init__(self, name: str, loader: Callable[[], Any], modules: tuple):
        self.name = name
        self.loader = loader
        self.modules = modules
        self._ns = None

    def namespace(self):
        if self._ns is None:
            self._ns = self.loader()
        return self._ns


_REGISTRY: Dict[str, _BackendSpec] = {}


def register_backend(
    name: str, loader: Callable[[], Any], modules: tuple = ()
) -> None:
    """Register (or replace) a backend *name* -> namespace loader.

    ``modules`` lists operand root-module names resolved to this backend
    when an array type does not advertise ``__array_namespace__``.
    """
    with _LOCK:
        _REGISTRY[name] = _BackendSpec(name, loader, tuple(modules))


def _load_numpy():
    return np


def _load_array_api_strict():
    return importlib.import_module("array_api_strict")


def _load_cupy():
    return importlib.import_module("cupy")


def _load_torch():
    return importlib.import_module("torch")


def _load_jax():
    return importlib.import_module("jax.numpy")


def _load_minimal():
    return importlib.import_module("repro.backend.minimal")


register_backend("numpy", _load_numpy, modules=("numpy",))
register_backend("array_api_strict", _load_array_api_strict,
                 modules=("array_api_strict",))
register_backend("cupy", _load_cupy, modules=("cupy",))
register_backend("torch", _load_torch, modules=("torch",))
register_backend("jax", _load_jax, modules=("jax", "jaxlib"))
register_backend("minimal", _load_minimal, modules=())


def registered_backends() -> List[str]:
    """Names of all registered backends, importable or not (no imports
    are attempted — use :func:`available_backends` for that)."""
    with _LOCK:
        return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Names of registered backends whose import actually succeeds."""
    names = []
    with _LOCK:
        specs = list(_REGISTRY.values())
    for spec in specs:
        try:
            spec.namespace()
        except Exception:
            continue
        names.append(spec.name)
    return names


def resolve_backend(name: Optional[str] = None):
    """Return the namespace for backend *name*.

    ``None`` consults ``REPRO_BACKEND``, then falls back to ``"numpy"``.

    Raises
    ------
    BackendError
        For an unregistered name or a registered backend that fails to
        import.
    """
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip() or "numpy"
    with _LOCK:
        spec = _REGISTRY.get(name)
    if spec is None:
        raise BackendError(
            f"unknown array backend {name!r}; registered backends: "
            f"{sorted(_REGISTRY)}"
        )
    try:
        return spec.namespace()
    except BackendError:
        raise
    except Exception as exc:
        raise BackendError(
            f"array backend {name!r} is registered but failed to import: {exc}"
        ) from exc


def default_namespace():
    """The namespace used when no operand pins one (``REPRO_BACKEND``)."""
    return resolve_backend(None)


def _namespace_of(obj) -> Optional[Any]:
    """The array namespace of one operand, or ``None`` for non-arrays."""
    method = getattr(type(obj), "__array_namespace__", None)
    if method is not None:
        return obj.__array_namespace__()
    if isinstance(obj, (np.ndarray, np.generic)):
        return np
    root = type(obj).__module__.split(".")[0]
    with _LOCK:
        specs = list(_REGISTRY.values())
    for spec in specs:
        if root in spec.modules:
            return spec.namespace()
    return None


def get_namespace(*arrays, default: Any = None):
    """Resolve the common array-API namespace of *arrays*.

    Python scalars and ``None`` operands are ignored (they follow the
    standard's scalar-promotion rules inside whichever namespace wins).
    With no array operand the *default* namespace applies (``None`` —
    :func:`default_namespace`).

    Raises
    ------
    BackendError
        If operands come from two different namespaces: silently picking
        one would stage a device transfer the caller never asked for.
    """
    xp = None
    for a in arrays:
        if a is None or isinstance(a, (bool, int, float, complex)):
            continue
        ns = _namespace_of(a)
        if ns is None:
            continue
        if xp is None:
            xp = ns
        elif xp is not ns:
            raise BackendError(
                "mixed array namespaces in one kernel call: "
                f"{backend_name_of(xp)!r} vs {backend_name_of(ns)!r}; "
                "convert the operands to one backend first"
            )
    if xp is not None:
        return xp
    if default is not None:
        return default
    return default_namespace()


def backend_name_of(xp) -> str:
    """A stable display/cache name for namespace *xp*."""
    return getattr(xp, "__name__", None) or repr(xp)


def is_numpy_namespace(xp) -> bool:
    """True when *xp* is NumPy itself (the bitwise-reference backend)."""
    return xp is np
