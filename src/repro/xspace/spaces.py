"""Execution spaces: where a ``parallel_for`` runs.

Two host spaces are implemented:

* :class:`SerialSpace` — a plain Python loop.  This is the reference
  backend; every batched kernel in :mod:`repro.kbatched` has a serial
  variant that is a line-by-line port of the paper's C++ listings.
* :class:`ThreadsSpace` — a ``ThreadPoolExecutor`` fan-out over index
  chunks.  NumPy releases the GIL inside its ufunc loops, so chunked
  vector work does scale; pure-Python per-element kernels do not, which is
  itself a faithful analogue of the paper's observation that the serial
  per-batch formulation only pays off when the per-batch work is compiled.

Device spaces (A100 / MI250X) cannot execute here — they exist as *timing
models* in :mod:`repro.perfmodel.devicesim`.  ``get_execution_space`` keeps
a registry so the builders accept space names, mirroring how the paper's
CMake flags pick a Kokkos backend.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import BackendError


class ExecutionSpace:
    """Abstract execution space.

    Subclasses implement :meth:`run` (a ``parallel_for`` body over
    ``range(begin, end)``) and may override :meth:`fence` for asynchronous
    spaces.
    """

    #: Registry name, e.g. ``"serial"``.
    name: str = "abstract"

    def run(self, begin: int, end: int, functor: Callable[[int], None]) -> None:
        raise NotImplementedError

    def reduce(
        self, begin: int, end: int, functor: Callable[[int], float]
    ) -> float:
        """Sum-reduce ``functor(i)`` over the range (``parallel_reduce``)."""
        raise NotImplementedError

    def fence(self) -> None:
        """Wait for outstanding work; host spaces are synchronous."""

    @property
    def concurrency(self) -> int:
        """Number of workers this space can run concurrently."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(concurrency={self.concurrency})"


class SerialSpace(ExecutionSpace):
    """Run the functor in a plain sequential loop."""

    name = "serial"

    def run(self, begin: int, end: int, functor: Callable[[int], None]) -> None:
        for i in range(begin, end):
            functor(i)

    def reduce(self, begin: int, end: int, functor: Callable[[int], float]) -> float:
        total = 0.0
        for i in range(begin, end):
            total += functor(i)
        return total


class ThreadsSpace(ExecutionSpace):
    """Fan the index range out over a thread pool in contiguous chunks.

    Chunks (rather than single indices) keep the Python dispatch overhead
    amortized; the chunk count defaults to 4x the worker count for load
    balance, the same heuristic Kokkos' dynamic schedule uses.
    """

    name = "threads"

    def __init__(self, num_threads: Optional[int] = None):
        if num_threads is None:
            num_threads = os.cpu_count() or 1
        self._num_threads = int(num_threads)
        if self._num_threads < 1:
            raise BackendError(f"num_threads must be >= 1, got {self._num_threads}")
        self._pool = ThreadPoolExecutor(max_workers=self._num_threads)

    @property
    def concurrency(self) -> int:
        return self._num_threads

    def _chunks(self, begin: int, end: int) -> List[Tuple[int, int]]:
        n = end - begin
        if n <= 0:
            return []
        pieces = min(n, self._num_threads * 4)
        step = -(-n // pieces)
        return [(b, min(b + step, end)) for b in range(begin, end, step)]

    def run(self, begin: int, end: int, functor: Callable[[int], None]) -> None:
        chunks = self._chunks(begin, end)
        if len(chunks) <= 1:
            for i in range(begin, end):
                functor(i)
            return

        def body(bounds: Tuple[int, int]) -> None:
            for i in range(bounds[0], bounds[1]):
                functor(i)

        # list() propagates the first worker exception to the caller.
        list(self._pool.map(body, chunks))

    def reduce(self, begin: int, end: int, functor: Callable[[int], float]) -> float:
        chunks = self._chunks(begin, end)

        def body(bounds: Tuple[int, int]) -> float:
            total = 0.0
            for i in range(bounds[0], bounds[1]):
                total += functor(i)
            return total

        if len(chunks) <= 1:
            return body((begin, end))
        return sum(self._pool.map(body, chunks))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


_REGISTRY: Dict[str, Callable[[], ExecutionSpace]] = {
    "serial": SerialSpace,
    "threads": ThreadsSpace,
}

_INSTANCES: Dict[str, ExecutionSpace] = {}


def get_execution_space(name: str = "serial") -> ExecutionSpace:
    """Return a (cached) execution space by registry name.

    Raises
    ------
    BackendError
        If *name* is not one of ``serial`` / ``threads``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise BackendError(
            f"unknown execution space {name!r}; available: {sorted(_REGISTRY)}"
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _REGISTRY[key]()
    return _INSTANCES[key]


#: Default host execution space (serial), mirroring
#: ``Kokkos::DefaultHostExecutionSpace`` for a serial build.
DefaultExecutionSpace = get_execution_space("serial")
