"""Memory-layout tags mirroring ``Kokkos::LayoutRight`` / ``LayoutLeft``.

A layout decides which dimension of a 2-D (matrix-size x batch) array is
contiguous in memory.  The paper's Fig. 2 discussion hinges on this: the
GPU-friendly layout keeps the *batch* dimension contiguous so adjacent
threads touch adjacent words, whereas the CPU-friendly layout would keep the
*matrix* dimension contiguous per batch column.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.backend import Array


class Layout(enum.Enum):
    """Memory layout of a view.

    ``RIGHT`` is row-major (C order, last index fastest), ``LEFT`` is
    column-major (Fortran order, first index fastest).
    """

    RIGHT = "LayoutRight"
    LEFT = "LayoutLeft"

    @property
    def numpy_order(self) -> str:
        """The ``order=`` string NumPy uses for this layout."""
        return "C" if self is Layout.RIGHT else "F"


#: Row-major layout (C order) — ``Kokkos::LayoutRight``.
LayoutRight = Layout.RIGHT
#: Column-major layout (Fortran order) — ``Kokkos::LayoutLeft``.
LayoutLeft = Layout.LEFT


def layout_of(array: Array) -> Layout:
    """Return the :class:`Layout` of *array*.

    1-D and 0-D arrays, and arrays contiguous in both senses (e.g. shapes
    with a unit extent), report :data:`LayoutRight`.  Non-contiguous NumPy
    arrays raise :class:`ValueError` because a strided array has no single
    layout tag in this model.  Non-NumPy array-API arrays report
    :data:`LayoutRight`: the standard exposes no stride/layout concept, so
    the tag is advisory there.
    """
    if not isinstance(array, np.ndarray):
        return Layout.RIGHT
    if array.flags["C_CONTIGUOUS"]:
        return Layout.RIGHT
    if array.flags["F_CONTIGUOUS"]:
        return Layout.LEFT
    raise ValueError(
        "array is neither C- nor F-contiguous; materialize it with "
        "numpy.ascontiguousarray / asfortranarray before tagging a layout"
    )


def with_layout(array: Array, layout: Layout) -> Array:
    """Return *array* in the requested *layout*, copying only if needed.

    Layout is a NumPy/host concept; non-NumPy array-API arrays are
    returned unchanged (their library owns physical layout).
    """
    if not isinstance(array, np.ndarray):
        return array
    if layout is Layout.RIGHT:
        return np.ascontiguousarray(array)
    return np.asfortranarray(array)
