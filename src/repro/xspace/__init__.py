"""Miniature Kokkos-like execution substrate.

The paper builds on Kokkos' two central abstractions:

* **Views** — multi-dimensional arrays carrying an explicit memory *layout*
  (``LayoutRight`` = row-major / C, ``LayoutLeft`` = column-major / Fortran),
  sliced with ``subview`` without copying; and
* **execution spaces** — where a ``parallel_for`` over an index range runs
  (a GPU, an OpenMP thread pool, or a serial loop).

This subpackage reproduces just enough of that machinery for the batched
solvers in :mod:`repro.kbatched` to be written the same way as the paper's
Listings 2/4/6: a *serial* per-batch kernel dispatched by ``parallel_for``
over the batch dimension.  Two host execution spaces are provided — a serial
space and a thread-pool space — plus the hooks the performance model uses to
attribute simulated device timings.

The layout abstraction matters for fidelity: the paper explicitly blames the
poor CPU numbers on parallelizing over the *contiguous* dimension and leaves
a layout abstraction as future work.  Our Views let benchmarks measure both
layouts (see ``benchmarks/bench_ablation_layout.py``).
"""

from repro.xspace.layout import Layout, LayoutLeft, LayoutRight, layout_of
from repro.xspace.view import View, create_mirror_view, deep_copy, subview
from repro.xspace.spaces import (
    DefaultExecutionSpace,
    ExecutionSpace,
    SerialSpace,
    ThreadsSpace,
    get_execution_space,
)
from repro.xspace.parallel import (
    MDRangePolicy,
    RangePolicy,
    parallel_for,
    parallel_for_md,
    parallel_reduce,
    parallel_scan,
)

__all__ = [
    "Layout",
    "LayoutRight",
    "LayoutLeft",
    "layout_of",
    "View",
    "subview",
    "deep_copy",
    "create_mirror_view",
    "ExecutionSpace",
    "SerialSpace",
    "ThreadsSpace",
    "DefaultExecutionSpace",
    "get_execution_space",
    "RangePolicy",
    "MDRangePolicy",
    "parallel_for",
    "parallel_for_md",
    "parallel_reduce",
    "parallel_scan",
]
