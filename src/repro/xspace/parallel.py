"""``parallel_for`` / ``parallel_reduce`` dispatch, mirroring Kokkos.

The batched solver kernels are expressed exactly as in the paper's
Listing 2::

    parallel_for("KokkosBatched::SerialPttrs", batch, functor)

where ``functor(i)`` operates on batch column ``i``.  The policy object
carries the execution space and optional kernel-name label; labels feed the
lightweight profiling region stack used by the benchmark harness (the
Kokkos-tools analogue).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.xspace.spaces import DefaultExecutionSpace, ExecutionSpace


@dataclass
class RangePolicy:
    """A 1-D iteration range bound to an execution space."""

    begin: int
    end: int
    space: ExecutionSpace = field(default_factory=lambda: DefaultExecutionSpace)

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError(f"empty-negative range [{self.begin}, {self.end})")


class _RegionTimer:
    """Accumulates wall-clock per labelled kernel region (kp_reader analogue)."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def record(self, label: str, seconds: float) -> None:
        self.totals[label] = self.totals.get(label, 0.0) + seconds
        self.counts[label] = self.counts.get(label, 0) + 1

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def report(self) -> List[str]:
        lines = []
        for label in sorted(self.totals):
            total = self.totals[label]
            n = self.counts[label]
            lines.append(
                f"{label} (REGION) {total:.6f} {n} {total / n:.6f}"
            )
        return lines


#: Process-global kernel timer, drained by the benchmark harness.
profiler = _RegionTimer()


@contextmanager
def profiling_region(label: str) -> Iterator[None]:
    """Time a labelled region, like ``Kokkos::Profiling::pushRegion``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        profiler.record(label, time.perf_counter() - t0)


def _resolve(policy: Union[int, RangePolicy]) -> RangePolicy:
    if isinstance(policy, RangePolicy):
        return policy
    return RangePolicy(0, int(policy))


def parallel_for(
    label: str,
    policy: Union[int, RangePolicy],
    functor: Callable[[int], None],
    space: Optional[ExecutionSpace] = None,
) -> None:
    """Run ``functor(i)`` for every ``i`` in the policy's range.

    ``policy`` may be a bare count ``n`` (meaning ``range(0, n)``), as in the
    paper's listings.  An explicit *space* overrides the policy's space.
    """
    pol = _resolve(policy)
    exec_space = space or pol.space
    with profiling_region(label):
        exec_space.run(pol.begin, pol.end, functor)


def parallel_reduce(
    label: str,
    policy: Union[int, RangePolicy],
    functor: Callable[[int], float],
    space: Optional[ExecutionSpace] = None,
) -> float:
    """Sum ``functor(i)`` over the policy's range and return the total."""
    pol = _resolve(policy)
    exec_space = space or pol.space
    with profiling_region(label):
        return exec_space.reduce(pol.begin, pol.end, functor)


def parallel_scan(
    label: str,
    policy: Union[int, RangePolicy],
    functor: Callable[[int, float, bool], float],
) -> float:
    """Inclusive prefix scan, Kokkos-style: ``functor(i, partial, final)``
    returns the contribution of index ``i``; on the ``final`` pass
    ``partial`` holds the *exclusive* prefix sum.  Returns the total.

    Scans are inherently ordered; like Kokkos' serial backend this runs the
    two-pass protocol sequentially (one discovery pass, one final pass), so
    functors written for Kokkos port directly.
    """
    pol = _resolve(policy)
    with profiling_region(label):
        running = 0.0
        for i in range(pol.begin, pol.end):
            running += functor(i, running, False)
        total = running
        running = 0.0
        for i in range(pol.begin, pol.end):
            running += functor(i, running, True)
        return total


@dataclass
class MDRangePolicy:
    """A 2-D iteration rectangle (``Kokkos::MDRangePolicy<Rank<2>>``)."""

    begin0: int
    end0: int
    begin1: int
    end1: int
    space: ExecutionSpace = field(default_factory=lambda: DefaultExecutionSpace)

    def __post_init__(self) -> None:
        if self.end0 < self.begin0 or self.end1 < self.begin1:
            raise ValueError("empty-negative MD range")


def parallel_for_md(
    label: str,
    policy: MDRangePolicy,
    functor: Callable[[int, int], None],
) -> None:
    """Run ``functor(i, j)`` over the 2-D rectangle.  The outer dimension
    is distributed over the policy's execution space; the inner loop runs
    within the worker (the common Kokkos tiling for row-major data)."""
    extent1 = policy.end1 - policy.begin1

    def row(i: int) -> None:
        for j in range(policy.begin1, policy.begin1 + extent1):
            functor(i, j)

    with profiling_region(label):
        policy.space.run(policy.begin0, policy.end0, row)
