"""A thin Kokkos-``View``-like wrapper over NumPy arrays.

Views add three things on top of a bare ndarray:

* an explicit :class:`~repro.xspace.layout.Layout` tag checked at
  construction (catching accidental stride surprises early, the way Kokkos'
  template system does at compile time);
* a *label*, used by the profiling hooks in :mod:`repro.perfmodel` to
  attribute memory traffic to kernels;
* Kokkos-style helpers — :func:`subview`, :func:`deep_copy`,
  :func:`create_mirror_view` — so ported kernels read like the paper's
  listings.

A ``View`` intentionally is **not** an ndarray subclass: arithmetic goes
through ``.data`` explicitly, which keeps the boundary between "Kokkos
world" and plain NumPy visible in the solver code.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import get_namespace, is_numpy_namespace
from repro.exceptions import ShapeError
from repro.xspace.layout import Layout, LayoutRight, layout_of, with_layout

IndexExpr = Union[int, slice, type(Ellipsis)]


class View:
    """A labelled, layout-tagged array.

    Parameters
    ----------
    shape_or_data:
        Either a shape tuple (a new zero-initialized array is allocated with
        the requested layout) or an existing ndarray (wrapped without copy if
        its layout already matches, otherwise copied).
    label:
        Human-readable name, as in ``Kokkos::View``'s first constructor
        argument.
    layout:
        Desired memory layout; defaults to :data:`LayoutRight`.
    dtype:
        Element type for new allocations (default ``float64``).
    """

    __slots__ = ("data", "label", "layout")

    def __init__(
        self,
        shape_or_data: Union[Tuple[int, ...], np.ndarray],
        label: str = "",
        layout: Layout = LayoutRight,
        dtype: np.dtype = np.float64,
    ):
        if isinstance(shape_or_data, np.ndarray):
            self.data = with_layout(shape_or_data, layout)
        elif hasattr(shape_or_data, "shape") and hasattr(shape_or_data, "dtype"):
            # A non-NumPy array-API array: wrap as-is (layout advisory).
            self.data = shape_or_data
        else:
            shape = tuple(int(n) for n in shape_or_data)
            if any(n < 0 for n in shape):
                raise ShapeError(f"negative extent in shape {shape}")
            self.data = np.zeros(shape, dtype=dtype, order=layout.numpy_order)
        self.label = label
        self.layout = layout

    # -- Kokkos-like introspection -------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def extent(self, axis: int) -> int:
        """Extent along *axis* (``view.extent(1)`` as in the listings)."""
        return self.data.shape[axis]

    @property
    def rank(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def span_bytes(self) -> int:
        """Bytes spanned by the allocation (used by the byte counters)."""
        nbytes = getattr(self.data, "nbytes", None)
        if nbytes is not None:
            return int(nbytes)
        return int(self.data.size) * np.dtype(self.data.dtype).itemsize

    # -- element access -------------------------------------------------
    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value):
        self.data[idx] = value

    def __array__(self, dtype=None):
        return np.asarray(self.data, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"View(label={self.label!r}, shape={self.shape}, "
            f"layout={self.layout.value}, dtype={self.dtype})"
        )

    def fill(self, value: float) -> None:
        """Assign *value* to every element (``Kokkos::deep_copy(v, value)``)."""
        if isinstance(self.data, np.ndarray):
            self.data.fill(value)
        else:
            self.data[...] = value


def subview(view: Union[View, np.ndarray], *index: IndexExpr) -> np.ndarray:
    """Return a non-owning slice of *view*, like ``Kokkos::subview``.

    Accepts ``slice(None)`` (the analogue of ``Kokkos::ALL``), integers and
    ``(begin, end)`` pairs expressed as slices.  The result is a plain NumPy
    view — mutation is visible through the parent, which the in-place solver
    kernels rely on.
    """
    data = view.data if isinstance(view, View) else view
    return data[tuple(index)]


def deep_copy(dst: Union[View, np.ndarray], src: Union[View, np.ndarray, float]) -> None:
    """Copy *src* into *dst* element-wise (``Kokkos::deep_copy``)."""
    dst_data = dst.data if isinstance(dst, View) else dst
    if isinstance(src, (int, float)):
        if isinstance(dst_data, np.ndarray):
            dst_data.fill(src)
        else:
            dst_data[...] = src
        return
    src_data = src.data if isinstance(src, View) else src
    if dst_data.shape != src_data.shape:
        raise ShapeError(
            f"deep_copy shape mismatch: dst {dst_data.shape} vs src {src_data.shape}"
        )
    if isinstance(dst_data, np.ndarray) and isinstance(src_data, np.ndarray):
        np.copyto(dst_data, src_data)
    else:
        dst_data[...] = src_data


def create_mirror_view(view: View, layout: Optional[Layout] = None) -> View:
    """Allocate a host mirror of *view* with the same extents.

    On real hardware this creates host-accessible memory for a device view;
    here it is an allocation helper that optionally changes layout (the
    pattern the paper uses to stage the factorized matrix from host LAPACK
    to the device).
    """
    xp = get_namespace(view.data)
    if is_numpy_namespace(xp):
        return View(view.shape, label=view.label + "_mirror",
                    layout=layout or view.layout, dtype=view.dtype)
    out = View(xp.zeros(view.shape, dtype=view.dtype),
               label=view.label + "_mirror", layout=layout or view.layout)
    return out
