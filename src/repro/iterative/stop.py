"""Stopping criteria for the iterative solvers.

Mirrors Ginkgo's combined criterion: a *residual-reduction* rule
(``‖r‖ / ‖b‖ < reduction_factor``, evaluated per right-hand-side column)
together with an iteration cap.  The paper sets the reduction factor to
``1e-15`` (§III-B) — effectively "solve to machine precision", which is
feasible because the spline interpolation matrix is well conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class StoppingCriterion:
    """Combined residual-reduction + iteration-limit criterion.

    Parameters
    ----------
    reduction_factor:
        Target for ``‖r‖₂ / ‖b‖₂`` per column (paper default ``1e-15``).
    max_iterations:
        Hard cap on solver iterations.
    """

    reduction_factor: float = 1e-15
    max_iterations: int = 1000

    def __post_init__(self) -> None:
        if self.reduction_factor <= 0:
            raise ValueError("reduction_factor must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")

    def targets(self, b: np.ndarray) -> np.ndarray:
        """Per-column absolute residual-norm targets.

        A zero right-hand side column gets an absolute target so ``x = 0``
        converges immediately instead of dividing by zero.
        """
        norms = np.linalg.norm(b, axis=0) if b.ndim == 2 else np.atleast_1d(np.linalg.norm(b))
        targets = self.reduction_factor * norms
        tiny = np.finfo(b.dtype).tiny if np.issubdtype(b.dtype, np.floating) else 0.0
        targets[norms == 0.0] = max(self.reduction_factor, tiny)
        return targets

    def exhausted(self, iteration: int) -> bool:
        """True once the iteration cap is reached."""
        return iteration >= self.max_iterations
