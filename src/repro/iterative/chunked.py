"""Chunk-pipelined multi-RHS application — the paper's Listing 3.

Applying a Krylov solver to all ~1e5 right-hand sides at once exhausts
memory (each Krylov vector is as large as the whole batch), and the CUDA /
HIP backends additionally cap the batch at 65535.  The paper therefore
pipelines along the batch direction: slice the RHS block into chunks of
``cols_per_chunk`` columns, stage each chunk through a reusable buffer,
solve, and copy the solutions back — with the *previous time step's*
solution as the initial guess (warm start), which the paper notes makes a
good guess for a slowly-evolving advection problem.

Defaults mirror §III-B: 8192 columns per chunk for "CPU" solvers and
65535 for "GPU" solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.iterative.solvers import Solver

#: Chunk sizes the paper uses (§III-B).
CPU_COLS_PER_CHUNK = 8192
GPU_COLS_PER_CHUNK = 65535


class ChunkedSolver:
    """Wraps a :class:`~repro.iterative.solvers.Solver` with batch pipelining.

    Parameters
    ----------
    solver:
        The underlying Krylov solver (shares its logger: one
        :class:`~repro.iterative.logger.ApplyRecord` per chunk, as in the
        paper where the convergence logger is attached per apply).
    cols_per_chunk:
        Maximum right-hand-side columns solved at once
        (``m_cols_per_chunk``).
    """

    def __init__(self, solver: Solver, cols_per_chunk: int = CPU_COLS_PER_CHUNK):
        if cols_per_chunk < 1:
            raise ValueError(f"cols_per_chunk must be >= 1, got {cols_per_chunk}")
        self.solver = solver
        self.cols_per_chunk = int(cols_per_chunk)
        # Reusable staging buffers (b_buffer / x in Listing 3), grown lazily.
        self._b_buffer: Optional[np.ndarray] = None
        self._x_buffer: Optional[np.ndarray] = None

    def _buffers(self, n: int, width: int):
        if (
            self._b_buffer is None
            or self._b_buffer.shape[0] != n
            or self._b_buffer.shape[1] < width
        ):
            self._b_buffer = np.empty((n, width))
            self._x_buffer = np.empty((n, width))
        return self._b_buffer, self._x_buffer

    def apply_in_place(
        self, b: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> int:
        """Solve ``A x = b`` chunk by chunk, overwriting *b* with *x*.

        The in-place convention matches the spline builder's contract (the
        Ginkgo path pretends to be in-place by staging through buffers and
        copying back, exactly as Listing 3 does with its final
        ``deep_copy(b_chunk, x_chunk)``).

        Returns the worst per-chunk iteration count.
        """
        if b.ndim != 2:
            raise ShapeError(f"b must have shape (n, batch), got {b.shape}")
        n, total = b.shape
        if x0 is not None and x0.shape != b.shape:
            raise ShapeError(f"x0 shape {x0.shape} does not match b {b.shape}")
        main_chunk_size = min(self.cols_per_chunk, max(total, 1))
        iend = (total + main_chunk_size - 1) // main_chunk_size
        worst = 0
        b_buffer, x_buffer = self._buffers(n, main_chunk_size)
        for i in range(iend):
            begin = i * main_chunk_size
            end = total if i + 1 == iend else begin + main_chunk_size
            width = end - begin
            b_chunk = b[:, begin:end]
            np.copyto(b_buffer[:, :width], b_chunk)
            if x0 is not None:
                np.copyto(x_buffer[:, :width], x0[:, begin:end])
            else:
                # Warm start from the current contents of b (the previous
                # time step's field), as the paper does.
                np.copyto(x_buffer[:, :width], b_chunk)
            result = self.solver.apply(b_buffer[:, :width], x0=x_buffer[:, :width])
            np.copyto(b_chunk, result.x)
            worst = max(worst, result.iterations)
        return worst

    def apply(self, b: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-of-place convenience wrapper around :meth:`apply_in_place`."""
        out = np.array(b, dtype=np.float64, copy=True)
        squeeze = out.ndim == 1
        if squeeze:
            out = out[:, None]
            x0 = None if x0 is None else x0[:, None]
        self.apply_in_place(out, x0=x0)
        return out[:, 0] if squeeze else out
