"""CSR (compressed sparse row) matrix storage with multi-RHS products.

Ginkgo stores the spline matrix in CSR (§III-B).  Only what the solvers
need is implemented: construction from dense/COO, ``spmm`` over an
``(n, batch)`` block, transpose (for BiCG), and diagonal / diagonal-block
extraction (for the Jacobi-type preconditioners).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.kbatched.coo import Coo


class Csr:
    """A CSR sparse matrix: ``indptr`` / ``indices`` / ``data`` arrays."""

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self.nrows, self.ncols = int(shape[0]), int(shape[1])
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.shape != (self.nrows + 1,):
            raise ShapeError(
                f"indptr must have length nrows+1={self.nrows + 1}, "
                f"got {self.indptr.shape}"
            )
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have identical length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ShapeError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.data.size and (
            self.indices.min() < 0 or self.indices.max() >= self.ncols
        ):
            raise ShapeError("column index out of range")

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_dense(cls, a: np.ndarray, drop_tol: float = 0.0) -> "Csr":
        """Compress a dense matrix, dropping ``|v| <= drop_tol`` entries."""
        if a.ndim != 2:
            raise ShapeError(f"expected 2-D matrix, got shape {a.shape}")
        mask = np.abs(a) > drop_tol
        indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(a.shape, indptr, cols, a[rows, cols])

    @classmethod
    def from_coo(cls, coo: Coo) -> "Csr":
        """Convert COO → CSR (duplicate coordinates are summed)."""
        order = np.lexsort((coo.cols_idx, coo.rows_idx))
        rows = coo.rows_idx[order]
        cols = coo.cols_idx[order]
        vals = coo.values[order]
        # Merge duplicates.
        if rows.size:
            keep = np.ones(rows.size, dtype=bool)
            dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            # Accumulate runs of duplicates into the first element.
            for i in np.nonzero(dup)[0]:
                vals[i + 1] += vals[i]
                keep[i] = False
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        indptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.shape, indptr, cols, vals)

    # -- properties -------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for r in range(self.nrows):
            sl = slice(self.indptr[r], self.indptr[r + 1])
            out[r, self.indices[sl]] += self.data[sl]
        return out

    # -- products ----------------------------------------------------------
    def spmm(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Return ``A @ x`` for ``x`` of shape ``(ncols,)`` or ``(ncols, batch)``.

        Uses a gather + segmented reduction: each stored entry contributes
        ``data * x[indices]``, summed per row with ``np.add.reduceat``.
        Rows with no entries are fixed up to zero (``reduceat`` repeats the
        next segment for empty ones).
        """
        if x.shape[0] != self.ncols:
            raise ShapeError(
                f"operand has leading extent {x.shape[0]}, expected {self.ncols}"
            )
        gathered = (
            self.data[:, None] * x[self.indices]
            if x.ndim == 2
            else self.data * x[self.indices]
        )
        row_counts = np.diff(self.indptr)
        if out is None:
            out_shape = (self.nrows,) + x.shape[1:]
            out = np.empty(out_shape)
        out[...] = 0.0
        # reduceat needs strictly valid segment starts: restrict to rows
        # that actually own entries (consecutive non-empty rows have
        # back-to-back segments, so each reduceat slice is exactly one row).
        nonzero_rows = np.nonzero(row_counts)[0]
        if nonzero_rows.size:
            sums = np.add.reduceat(gathered, self.indptr[nonzero_rows], axis=0)
            out[nonzero_rows] = sums
        return out

    def transpose(self) -> "Csr":
        """Return ``Aᵀ`` as a new CSR matrix (used by BiCG)."""
        coo_rows = np.repeat(np.arange(self.nrows, dtype=np.int64),
                             np.diff(self.indptr))
        coo = Coo(self.ncols, self.nrows, self.indices.copy(), coo_rows,
                  self.data.copy())
        return Csr.from_coo(coo)

    # -- extraction (preconditioners) ---------------------------------------
    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector."""
        d = np.zeros(min(self.nrows, self.ncols))
        for r in range(d.size):
            sl = slice(self.indptr[r], self.indptr[r + 1])
            hit = np.nonzero(self.indices[sl] == r)[0]
            if hit.size:
                d[r] = self.data[sl][hit].sum()
        return d

    def diagonal_blocks(self, block_starts: np.ndarray) -> List[np.ndarray]:
        """Extract dense diagonal blocks partitioned by *block_starts*.

        ``block_starts`` is the sorted array of first-row indices, with an
        implicit final boundary at ``nrows``.  Off-block entries are
        ignored, exactly like Ginkgo's block-Jacobi extraction.
        """
        bounds = list(block_starts) + [self.nrows]
        blocks = []
        for b in range(len(block_starts)):
            lo, hi = bounds[b], bounds[b + 1]
            blk = np.zeros((hi - lo, hi - lo))
            for r in range(lo, hi):
                sl = slice(self.indptr[r], self.indptr[r + 1])
                cols = self.indices[sl]
                inside = (cols >= lo) & (cols < hi)
                blk[r - lo, cols[inside] - lo] += self.data[sl][inside]
            blocks.append(blk)
        return blocks
