"""Iterative sparse solvers — the Ginkgo analogue.

The paper's reference implementation solves the spline system with Ginkgo
(§III-B): matrix in CSR, **BiCGStab** on GPUs / **GMRES** on CPUs, a
block-Jacobi preconditioner with tunable ``max_block_size`` (1..32), an
implicit-residual stopping rule ``‖Ax−b‖/‖b‖ < 1e-15``, and the batch
*pipelined* in chunks of ``cols_per_chunk`` right-hand sides because
applying the solver to all ~1e5 columns at once exhausts device memory.

This subpackage rebuilds that stack from scratch on NumPy:

* :class:`~repro.iterative.csr.Csr` — compressed-sparse-row storage with a
  multi-RHS ``spmm``;
* :mod:`~repro.iterative.preconditioner` — identity / Jacobi /
  block-Jacobi (dense block inverses, Ginkgo's default);
* :mod:`~repro.iterative.solvers` — CG, BiCG, BiCGStab and restarted GMRES,
  all operating on ``(n, batch)`` blocks with per-column convergence
  tracking;
* :class:`~repro.iterative.chunked.ChunkedSolver` — the Listing-3
  pipelining loop, including the warm start from the previous time step
  that the paper relies on for its advection benchmark;
* :class:`~repro.iterative.logger.ConvergenceLogger` — iteration-count /
  residual-history recording (regenerates Table IV).

Like Ginkgo — and *unlike* the Kokkos-kernels path — the solvers work for
any solvable matrix, at the cost of extra memory for the Krylov vectors.
"""

from repro.iterative.csr import Csr
from repro.iterative.logger import ConvergenceLogger
from repro.iterative.preconditioner import (
    BlockJacobi,
    Identity,
    Ilu0,
    Jacobi,
    Preconditioner,
    make_preconditioner,
)
from repro.iterative.stop import StoppingCriterion
from repro.iterative.solvers import (
    BiCg,
    BiCgStab,
    Cg,
    Gmres,
    Solver,
    SolveResult,
    make_solver,
)
from repro.iterative.chunked import ChunkedSolver

__all__ = [
    "Csr",
    "ConvergenceLogger",
    "Preconditioner",
    "Identity",
    "Jacobi",
    "BlockJacobi",
    "Ilu0",
    "make_preconditioner",
    "StoppingCriterion",
    "Solver",
    "SolveResult",
    "Cg",
    "BiCg",
    "BiCgStab",
    "Gmres",
    "make_solver",
    "ChunkedSolver",
]
