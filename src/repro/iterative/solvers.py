"""Krylov solvers over CSR matrices: CG, BiCG, BiCGStab, GMRES.

These are the four solvers Ginkgo features (§II-C2).  All of them operate
directly on an ``(n, batch)`` block of right-hand sides with every vector
update broadcast across the batch axis — one Krylov space per column,
advanced in lock-step, which is how a chunk of the spline batch is solved
in the paper's Listing 3.  Convergence is tracked per column; the solver
stops when every column meets the stopping criterion (so the reported
iteration count is the worst column's, the number the paper's Table IV
quotes per chunk).

The update coefficients of already-converged columns are forced to zero,
freezing those columns at their converged values while the rest of the
block keeps iterating; this avoids both wasted drift and the 0/0 NaNs that
a naive lock-step implementation produces once a column's residual reaches
exactly zero.

Memory: BiCGStab keeps ~8 block vectors, GMRES(m) keeps ``m + 1``.  For
the paper's (1000, 100000) problem that is exactly the "large amount of
memory usage" that forced the chunked pipelining of §III-B — use
:class:`repro.iterative.chunked.ChunkedSolver` for large batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConvergenceError, ShapeError
from repro.iterative.csr import Csr
from repro.iterative.logger import ApplyRecord, ConvergenceLogger
from repro.iterative.preconditioner import Identity, Preconditioner
from repro.iterative.stop import StoppingCriterion


@dataclass
class SolveResult:
    """Outcome of one solver application to a block of right-hand sides."""

    x: np.ndarray
    iterations: int
    converged: bool
    residuals: np.ndarray  # per-column final absolute residual norms
    per_column_iterations: np.ndarray  # iteration at which each column converged
    history: List[float]  # worst-column residual after every iteration


def _dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise inner products of two (n, batch) blocks."""
    return np.einsum("ij,ij->j", a, b)


def _safe_div(num: np.ndarray, den: np.ndarray, active: np.ndarray) -> np.ndarray:
    """``num / den`` on active columns, 0 elsewhere; 0 also on zero pivots."""
    out = np.zeros_like(num)
    ok = active & (den != 0.0)
    np.divide(num, den, out=out, where=ok)
    return out


class Solver:
    """Base class binding matrix, preconditioner, criterion and logger."""

    name = "abstract"

    def __init__(
        self,
        matrix: Csr,
        preconditioner: Optional[Preconditioner] = None,
        criterion: Optional[StoppingCriterion] = None,
        logger: Optional[ConvergenceLogger] = None,
        strict: bool = False,
    ):
        if matrix.nrows != matrix.ncols:
            raise ShapeError("iterative solvers require a square matrix")
        self.matrix = matrix
        self.preconditioner = preconditioner or Identity()
        self.criterion = criterion or StoppingCriterion()
        self.logger = logger
        #: When True, non-convergence raises :class:`ConvergenceError`
        #: instead of returning a result with ``converged=False``.
        self.strict = strict

    # -- public API -------------------------------------------------------
    def apply(self, b: np.ndarray, x0: Optional[np.ndarray] = None) -> SolveResult:
        """Solve ``A x = b``; *x0* is the initial guess (warm start).

        ``b`` may be 1-D (single RHS) or ``(n, batch)``; the result's ``x``
        matches the input shape.
        """
        squeeze = b.ndim == 1
        b2 = b[:, None] if squeeze else b
        if b2.shape[0] != self.matrix.nrows:
            raise ShapeError(
                f"b has leading extent {b2.shape[0]}, expected {self.matrix.nrows}"
            )
        if x0 is None:
            x2 = np.zeros_like(b2, dtype=np.float64)
        else:
            x02 = x0[:, None] if squeeze else x0
            if x02.shape != b2.shape:
                raise ShapeError(f"x0 shape {x0.shape} does not match b {b.shape}")
            x2 = x02.astype(np.float64, copy=True)
        b2 = b2.astype(np.float64, copy=False)

        targets = self.criterion.targets(b2)
        result = self._solve(b2, x2, targets)
        if self.logger is not None:
            self.logger.log(
                ApplyRecord(
                    solver=self.name,
                    iterations=result.iterations,
                    final_residual=float(np.max(result.residuals / np.maximum(
                        np.linalg.norm(b2, axis=0), np.finfo(float).tiny))),
                    converged=result.converged,
                    batch=b2.shape[1],
                    history=result.history,
                )
            )
        if self.strict and not result.converged:
            raise ConvergenceError(
                f"{self.name} did not converge in {result.iterations} iterations",
                iterations=result.iterations,
                residual=float(result.residuals.max(initial=0.0)),
            )
        if squeeze:
            result.x = result.x[:, 0]
        return result

    # -- helpers shared by the concrete solvers ---------------------------
    def _residual(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        return b - self.matrix.spmm(x)

    def _solve(
        self, b: np.ndarray, x: np.ndarray, targets: np.ndarray
    ) -> SolveResult:
        raise NotImplementedError


class _Tracker:
    """Per-column convergence bookkeeping shared by all solvers."""

    def __init__(self, targets: np.ndarray):
        self.targets = targets
        self.first_iter = np.full(targets.shape, -1, dtype=np.int64)
        self.history: List[float] = []

    def update(self, res_norms: np.ndarray, iteration: int) -> np.ndarray:
        """Record *res_norms* at *iteration*; return the active-column mask."""
        newly = (res_norms <= self.targets) & (self.first_iter < 0)
        self.first_iter[newly] = iteration
        self.history.append(float(res_norms.max(initial=0.0)))
        return self.first_iter < 0

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.first_iter >= 0))

    def finalize(self, x, res_norms, iteration) -> SolveResult:
        per_col = np.where(self.first_iter < 0, iteration, self.first_iter)
        return SolveResult(
            x=x,
            iterations=iteration,
            converged=self.all_converged,
            residuals=res_norms,
            per_column_iterations=per_col,
            history=self.history,
        )


class Cg(Solver):
    """Preconditioned conjugate gradients (SPD matrices only).

    Applicable to the *uniform* spline matrices, which are symmetric
    positive-definite (Table I); on non-symmetric systems CG may diverge —
    that is inherent, not a bug.
    """

    name = "cg"

    def _solve(self, b, x, targets):
        A, M = self.matrix, self.preconditioner
        r = self._residual(b, x)
        z = M.apply(r)
        p = z.copy()
        rz = _dot(r, z)
        tracker = _Tracker(targets)
        res = np.linalg.norm(r, axis=0)
        active = tracker.update(res, 0)
        it = 0
        while not tracker.all_converged and not self.criterion.exhausted(it):
            it += 1
            q = A.spmm(p)
            alpha = _safe_div(rz, _dot(p, q), active)
            x += alpha * p
            r -= alpha * q
            res = np.linalg.norm(r, axis=0)
            active = tracker.update(res, it)
            if tracker.all_converged:
                break
            z = M.apply(r)
            rz_new = _dot(r, z)
            beta = _safe_div(rz_new, rz, active)
            p = z + beta * p
            rz = rz_new
        return tracker.finalize(x, res, it)


class BiCg(Solver):
    """Preconditioned bi-conjugate gradients (general matrices).

    Needs ``Aᵀ`` products; the transpose CSR is materialized once at
    construction.
    """

    name = "bicg"

    def __init__(self, matrix, preconditioner=None, criterion=None,
                 logger=None, strict=False):
        super().__init__(matrix, preconditioner, criterion, logger, strict)
        self._at = matrix.transpose()

    def _solve(self, b, x, targets):
        A, At, M = self.matrix, self._at, self.preconditioner
        r = self._residual(b, x)
        rt = r.copy()
        z = M.apply(r)
        zt = M.apply_transpose(rt)  # shadow system uses M⁻ᵀ
        p, pt = z.copy(), zt.copy()
        rho = _dot(z, rt)
        tracker = _Tracker(targets)
        res = np.linalg.norm(r, axis=0)
        active = tracker.update(res, 0)
        it = 0
        while not tracker.all_converged and not self.criterion.exhausted(it):
            it += 1
            q = A.spmm(p)
            qt = At.spmm(pt)
            alpha = _safe_div(rho, _dot(pt, q), active)
            x += alpha * p
            r -= alpha * q
            rt -= alpha * qt
            res = np.linalg.norm(r, axis=0)
            active = tracker.update(res, it)
            if tracker.all_converged:
                break
            z = M.apply(r)
            zt = M.apply_transpose(rt)
            rho_new = _dot(z, rt)
            beta = _safe_div(rho_new, rho, active)
            p = z + beta * p
            pt = zt + beta * pt
            rho = rho_new
        return tracker.finalize(x, res, it)


class BiCgStab(Solver):
    """Preconditioned BiCGStab — the paper's GPU solver (§III-B)."""

    name = "bicgstab"

    def _solve(self, b, x, targets):
        A, M = self.matrix, self.preconditioner
        r = self._residual(b, x)
        rt = r.copy()
        n, batch = b.shape
        rho_old = np.ones(batch)
        alpha = np.ones(batch)
        omega = np.ones(batch)
        v = np.zeros_like(b)
        p = np.zeros_like(b)
        tracker = _Tracker(targets)
        res = np.linalg.norm(r, axis=0)
        active = tracker.update(res, 0)
        it = 0
        while not tracker.all_converged and not self.criterion.exhausted(it):
            it += 1
            rho = _dot(rt, r)
            beta = _safe_div(rho * alpha, rho_old * omega, active)
            p = r + beta * (p - omega * v)
            ph = M.apply(p)
            v = A.spmm(ph)
            alpha = _safe_div(rho, _dot(rt, v), active)
            s = r - alpha * v
            sh = M.apply(s)
            t = A.spmm(sh)
            omega = _safe_div(_dot(t, s), _dot(t, t), active)
            x += (alpha * ph + omega * sh) * active  # freeze converged columns
            r = s - omega * t
            res = np.linalg.norm(r, axis=0)
            active = tracker.update(res, it)
            rho_old = rho
        return tracker.finalize(x, res, it)


class Gmres(Solver):
    """Restarted GMRES(m) — the paper's CPU solver (§III-B).

    Left-preconditioned; the stopping rule is evaluated on the
    *preconditioned* residual against ``reduction_factor · ‖M b‖`` (the
    implicit residual every practical GMRES monitors).  All batch columns
    share the Arnoldi loop: the basis is ``(m+1, n, batch)``, Hessenberg
    entries and Givens rotations carry a batch axis.
    """

    name = "gmres"

    def __init__(self, matrix, preconditioner=None, criterion=None,
                 logger=None, strict=False, restart: int = 50,
                 memory_limit_gb: Optional[float] = 4.0):
        super().__init__(matrix, preconditioner, criterion, logger, strict)
        if restart < 1:
            raise ValueError("restart must be >= 1")
        self.restart = restart
        #: Guard against the paper's §III-B failure mode: the Krylov basis
        #: is ``(restart+1) × n × batch`` doubles, which for the full batch
        #: "failed due to the large amount of memory usage".  Exceeding the
        #: limit raises with the chunking advice instead of thrashing.
        self.memory_limit_gb = memory_limit_gb

    def _solve(self, b, x, targets):
        A, M = self.matrix, self.preconditioner
        n, batch = b.shape
        m = min(self.restart, n)
        if self.memory_limit_gb is not None:
            basis_gb = (m + 1) * n * batch * 8.0 / 1e9
            if basis_gb > self.memory_limit_gb:
                raise MemoryError(
                    f"GMRES({m}) Krylov basis would need {basis_gb:.1f} GB for "
                    f"batch {batch} (limit {self.memory_limit_gb} GB); pipeline "
                    "the batch with repro.iterative.ChunkedSolver (the paper's "
                    "cols_per_chunk strategy), lower `restart`, or raise "
                    "`memory_limit_gb`"
                )
        # Preconditioned targets (implicit residual).
        mb_norm = np.linalg.norm(M.apply(b), axis=0)
        b_norm = np.linalg.norm(b, axis=0)
        scale = _safe_div(mb_norm, b_norm, b_norm > 0)
        scale[b_norm == 0.0] = 1.0
        ptargets = targets * scale
        tracker = _Tracker(ptargets)

        it = 0
        res = np.linalg.norm(M.apply(self._residual(b, x)), axis=0)
        tracker.update(res, 0)
        V = np.zeros((m + 1, n, batch))
        H = np.zeros((m + 1, m, batch))
        cs = np.zeros((m, batch))
        sn = np.zeros((m, batch))
        g = np.zeros((m + 1, batch))

        while not tracker.all_converged and not self.criterion.exhausted(it):
            z = M.apply(self._residual(b, x))
            beta = np.linalg.norm(z, axis=0)
            safe_beta = np.where(beta == 0.0, 1.0, beta)
            V[0] = z / safe_beta
            g[:] = 0.0
            g[0] = beta
            H[:] = 0.0
            j_used = 0
            for j in range(m):
                if self.criterion.exhausted(it):
                    break
                it += 1
                w = M.apply(A.spmm(V[j]))
                # Modified Gram-Schmidt.
                for i in range(j + 1):
                    hij = _dot(V[i], w)
                    H[i, j] = hij
                    w -= hij * V[i]
                hnext = np.linalg.norm(w, axis=0)
                H[j + 1, j] = hnext
                V[j + 1] = w / np.where(hnext == 0.0, 1.0, hnext)
                # Apply accumulated Givens rotations to the new column.
                for i in range(j):
                    tmp = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                    H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                    H[i, j] = tmp
                denom = np.sqrt(H[j, j] ** 2 + H[j + 1, j] ** 2)
                safe = np.where(denom == 0.0, 1.0, denom)
                cs[j] = np.where(denom == 0.0, 1.0, H[j, j] / safe)
                sn[j] = np.where(denom == 0.0, 0.0, H[j + 1, j] / safe)
                H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
                H[j + 1, j] = 0.0
                g[j + 1] = -sn[j] * g[j]
                g[j] = cs[j] * g[j]
                res = np.abs(g[j + 1])
                tracker.update(res, it)
                j_used = j + 1
                if tracker.all_converged:
                    break
            # Solve the (j_used x j_used) triangular systems per column and
            # update x from the Krylov basis.
            if j_used > 0:
                y = np.zeros((j_used, batch))
                for i in range(j_used - 1, -1, -1):
                    acc = g[i].copy()
                    for k in range(i + 1, j_used):
                        acc -= H[i, k] * y[k]
                    hii = H[i, i]
                    y[i] = np.divide(acc, hii, out=np.zeros_like(acc),
                                     where=hii != 0.0)
                x += np.einsum("jnb,jb->nb", V[:j_used], y)
        final_res = np.linalg.norm(M.apply(self._residual(b, x)), axis=0)
        return tracker.finalize(x, final_res, it)


_SOLVERS = {
    "cg": Cg,
    "bicg": BiCg,
    "bicgstab": BiCgStab,
    "gmres": Gmres,
}


def make_solver(name: str, matrix: Csr, **kwargs) -> Solver:
    """Factory by name (Ginkgo's ``solver::<Name>::build()`` analogue)."""
    key = name.lower()
    if key not in _SOLVERS:
        raise ValueError(f"unknown solver {name!r}; available: {sorted(_SOLVERS)}")
    return _SOLVERS[key](matrix, **kwargs)
