"""Convergence logging — the analogue of Ginkgo's ``convergence_logger``.

The paper attaches a logger to every chunked apply (Listing 3, lines 26-30)
and reads the iteration counts off it to produce Table IV.  Our logger
records, per solver apply: the iteration count, the final worst-column
relative residual, and optionally the full residual history.

Long chunk-pipelined runs (the paper's batch is 1e5–1e12 columns, swept in
65535-column chunks over many time steps) produce one record per chunk per
step; ``max_history`` bounds the retained record list while the aggregate
quantities the paper reports (apply count, total/max iterations,
all-converged) keep counting every apply ever logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ApplyRecord:
    """One solver application (one chunk of right-hand sides)."""

    solver: str
    iterations: int
    final_residual: float
    converged: bool
    batch: int
    history: Optional[List[float]] = None


@dataclass
class ConvergenceLogger:
    """Accumulates :class:`ApplyRecord` entries across solver applies.

    Parameters
    ----------
    keep_history:
        Retain each record's per-iteration residual history (dropped by
        default — histories are the largest part of a record).
    max_history:
        Retain at most this many recent records; older ones are trimmed
        but stay counted in the aggregate properties.  ``None`` retains
        everything (the original behaviour).
    """

    keep_history: bool = False
    max_history: Optional[int] = None
    records: List[ApplyRecord] = field(default_factory=list)

    # Running aggregates over *every* apply ever logged, so trimming the
    # record list never changes the paper-reported quantities.
    _num_applies: int = field(default=0, init=False, repr=False)
    _total_iterations: int = field(default=0, init=False, repr=False)
    _max_iterations: int = field(default=0, init=False, repr=False)
    _all_converged: bool = field(default=True, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_history is not None and self.max_history < 1:
            raise ValueError(
                f"max_history must be >= 1 or None, got {self.max_history}"
            )
        for record in self.records:
            self._count(record)

    def _count(self, record: ApplyRecord) -> None:
        self._num_applies += 1
        self._total_iterations += record.iterations
        self._max_iterations = max(self._max_iterations, record.iterations)
        self._all_converged = self._all_converged and record.converged

    def log(self, record: ApplyRecord) -> None:
        if not self.keep_history:
            record.history = None
        self._count(record)
        self.records.append(record)
        if self.max_history is not None and len(self.records) > self.max_history:
            del self.records[: len(self.records) - self.max_history]

    # -- the quantities the paper reports -------------------------------
    @property
    def num_applies(self) -> int:
        return self._num_applies

    @property
    def total_iterations(self) -> int:
        return self._total_iterations

    @property
    def iterations_per_apply(self) -> List[int]:
        """Iteration counts of the *retained* records (the most recent
        ``max_history`` applies when a cap is set)."""
        return [r.iterations for r in self.records]

    @property
    def max_iterations(self) -> int:
        """Worst chunk; the paper observes this is constant across chunks."""
        return self._max_iterations

    @property
    def all_converged(self) -> bool:
        return self._all_converged

    def clear(self) -> None:
        self.records.clear()
        self._num_applies = 0
        self._total_iterations = 0
        self._max_iterations = 0
        self._all_converged = True
