"""Convergence logging — the analogue of Ginkgo's ``convergence_logger``.

The paper attaches a logger to every chunked apply (Listing 3, lines 26-30)
and reads the iteration counts off it to produce Table IV.  Our logger
records, per solver apply: the iteration count, the final worst-column
relative residual, and optionally the full residual history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ApplyRecord:
    """One solver application (one chunk of right-hand sides)."""

    solver: str
    iterations: int
    final_residual: float
    converged: bool
    batch: int
    history: Optional[List[float]] = None


@dataclass
class ConvergenceLogger:
    """Accumulates :class:`ApplyRecord` entries across solver applies."""

    keep_history: bool = False
    records: List[ApplyRecord] = field(default_factory=list)

    def log(self, record: ApplyRecord) -> None:
        if not self.keep_history:
            record.history = None
        self.records.append(record)

    # -- the quantities the paper reports -------------------------------
    @property
    def num_applies(self) -> int:
        return len(self.records)

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.records)

    @property
    def iterations_per_apply(self) -> List[int]:
        return [r.iterations for r in self.records]

    @property
    def max_iterations(self) -> int:
        """Worst chunk; the paper observes this is constant across chunks."""
        return max((r.iterations for r in self.records), default=0)

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.records)

    def clear(self) -> None:
        self.records.clear()
