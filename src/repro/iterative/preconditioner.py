"""Preconditioners: identity, Jacobi and block-Jacobi.

Ginkgo's block-Jacobi with a tunable ``max_block_size`` between 1 and 32 is
the preconditioner the paper uses (§III-B).  The matrix diagonal is
partitioned into contiguous square blocks; every block is inverted once at
generation and the apply is a batched block-diagonal multiply.  For the
cyclic-banded spline matrices this captures most of the coupling, which is
why a handful of Krylov iterations suffice (Table IV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError, SingularMatrixError
from repro.iterative.csr import Csr
from repro.kbatched.getrf import getrf
from repro.kbatched.getrs import getrs


class Preconditioner:
    """Base class: ``apply`` computes ``M⁻¹ @ x`` for a vector or block."""

    def apply(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def apply_transpose(self, x: np.ndarray) -> np.ndarray:
        """``M⁻ᵀ @ x`` — needed by BiCG's shadow recurrence.  Subclasses
        with non-symmetric inverses must override; the default assumes a
        symmetric preconditioner."""
        return self.apply(x)

    @classmethod
    def generate(cls, matrix: Csr) -> "Preconditioner":
        """Build the preconditioner from the system matrix."""
        raise NotImplementedError


class Identity(Preconditioner):
    """No preconditioning: ``M = I``."""

    def apply(self, x: np.ndarray) -> np.ndarray:
        return x.copy()

    @classmethod
    def generate(cls, matrix: Csr) -> "Identity":
        del matrix
        return cls()


class Jacobi(Preconditioner):
    """Point Jacobi: ``M = diag(A)`` (block-Jacobi with block size 1)."""

    def __init__(self, inv_diag: np.ndarray):
        self.inv_diag = inv_diag

    @classmethod
    def generate(cls, matrix: Csr) -> "Jacobi":
        d = matrix.diagonal()
        if np.any(d == 0.0):
            raise SingularMatrixError("zero diagonal entry in Jacobi preconditioner")
        return cls(1.0 / d)

    def apply(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            return self.inv_diag[:, None] * x
        return self.inv_diag * x


class BlockJacobi(Preconditioner):
    """Block Jacobi with contiguous blocks of at most ``max_block_size`` rows.

    Block inverses are precomputed with our own ``getrf``/``getrs`` (dense
    LU), mirroring Ginkgo's explicit block inversion.  The apply groups
    equal-sized blocks and contracts them in one ``einsum`` per group, so
    the per-apply Python overhead is O(#distinct block sizes), not
    O(#blocks).
    """

    def __init__(self, block_starts: np.ndarray, inverses: list):
        self.block_starts = np.asarray(block_starts, dtype=np.int64)
        self.inverses = inverses
        sizes = [inv.shape[0] for inv in inverses]
        self._sizes = np.asarray(sizes, dtype=np.int64)
        # Group blocks by size for the vectorized apply.
        self._groups = {}
        for idx, s in enumerate(sizes):
            self._groups.setdefault(s, []).append(idx)
        self._stacked = {
            s: (np.stack([inverses[i] for i in idxs]),
                np.asarray([self.block_starts[i] for i in idxs], dtype=np.int64))
            for s, idxs in self._groups.items()
        }

    @classmethod
    def generate(cls, matrix: Csr, max_block_size: int = 8) -> "BlockJacobi":
        if not 1 <= max_block_size <= 32:
            raise ValueError(
                f"max_block_size must be in [1, 32] (Ginkgo constraint), "
                f"got {max_block_size}"
            )
        n = matrix.nrows
        if matrix.nrows != matrix.ncols:
            raise ShapeError("block-Jacobi requires a square matrix")
        block_starts = np.arange(0, n, max_block_size, dtype=np.int64)
        blocks = matrix.diagonal_blocks(block_starts)
        inverses = []
        for b, blk in enumerate(blocks):
            lu = blk.copy()
            try:
                ipiv = getrf(lu)
            except SingularMatrixError as err:
                raise SingularMatrixError(
                    f"singular diagonal block {b} in block-Jacobi"
                ) from err
            inv = np.eye(blk.shape[0])
            getrs(lu, ipiv, inv)
            inverses.append(inv)
        return cls(block_starts, inverses)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self._apply(x, transpose=False)

    def apply_transpose(self, x: np.ndarray) -> np.ndarray:
        return self._apply(x, transpose=True)

    def _apply(self, x: np.ndarray, transpose: bool) -> np.ndarray:
        squeeze = x.ndim == 1
        xb = x[:, None] if squeeze else x
        out = np.empty_like(xb)
        contraction = "bji,bjk->bik" if transpose else "bij,bjk->bik"
        for s, (invs, starts) in self._stacked.items():
            # Gather the rows of every size-s block: (nblocks, s, batch).
            rows = (starts[:, None] + np.arange(s)[None, :]).reshape(-1)
            gathered = xb[rows].reshape(len(starts), s, xb.shape[1])
            applied = np.einsum(contraction, invs, gathered)
            out[rows] = applied.reshape(-1, xb.shape[1])
        return out[:, 0] if squeeze else out


class Ilu0(Preconditioner):
    """Incomplete LU with zero fill-in (ILU(0)).

    The factors share ``A``'s sparsity pattern exactly; for the banded
    spline matrices this is nearly an exact LU (fill-in would only appear
    outside the band), so a handful of Krylov iterations suffice — the
    "sophisticated preconditioners" end of Ginkgo's menu.

    The apply performs two sparse triangular sweeps per call, row-serial /
    batch-vectorized like everything else in this package.
    """

    def __init__(self, n: int, rows: list):
        #: Per-row factored entries: (lower_cols, lower_vals, diag,
        #: upper_cols, upper_vals), with ``lower`` already divided by the
        #: corresponding pivots (unit-lower convention).
        self.n = n
        self.rows = rows

    @classmethod
    def generate(cls, matrix: Csr) -> "Ilu0":
        if matrix.nrows != matrix.ncols:
            raise ShapeError("ILU(0) requires a square matrix")
        n = matrix.nrows
        # Row-wise working copy with column→value dicts (pattern is fixed).
        vals = []
        for i in range(n):
            sl = slice(matrix.indptr[i], matrix.indptr[i + 1])
            row = dict(zip(matrix.indices[sl].tolist(), matrix.data[sl].tolist()))
            vals.append(row)
        for i in range(1, n):
            row_i = vals[i]
            for k in sorted(c for c in row_i if c < i):
                ukk = vals[k].get(k, 0.0)
                if ukk == 0.0:
                    raise SingularMatrixError(
                        f"zero pivot at row {k} during ILU(0)"
                    )
                lik = row_i[k] / ukk
                row_i[k] = lik
                for j, ukj in vals[k].items():
                    if j > k and j in row_i:
                        row_i[j] -= lik * ukj
        rows = []
        for i in range(n):
            items = sorted(vals[i].items())
            lower = [(c, v) for c, v in items if c < i]
            upper = [(c, v) for c, v in items if c > i]
            diag = vals[i].get(i, 0.0)
            if diag == 0.0:
                raise SingularMatrixError(f"zero diagonal at row {i} in ILU(0)")
            rows.append((
                np.asarray([c for c, _ in lower], dtype=np.int64),
                np.asarray([v for _, v in lower]),
                diag,
                np.asarray([c for c, _ in upper], dtype=np.int64),
                np.asarray([v for _, v in upper]),
            ))
        return cls(n, rows)

    def apply(self, x: np.ndarray) -> np.ndarray:
        squeeze = x.ndim == 1
        y = np.array(x[:, None] if squeeze else x, dtype=np.float64, copy=True)
        # Forward: L y = x (unit lower).
        for i in range(self.n):
            lcols, lvals, _, _, _ = self.rows[i]
            if lcols.size:
                y[i] -= lvals @ y[lcols]
        # Backward: U z = y.
        for i in range(self.n - 1, -1, -1):
            _, _, diag, ucols, uvals = self.rows[i]
            if ucols.size:
                y[i] -= uvals @ y[ucols]
            y[i] /= diag
        return y[:, 0] if squeeze else y

    def apply_transpose(self, x: np.ndarray) -> np.ndarray:
        """``(LU)⁻ᵀ x``: solve ``Uᵀ y = x`` (lower sweep) then ``Lᵀ z = y``
        (upper sweep, unit diagonal)."""
        squeeze = x.ndim == 1
        y = np.array(x[:, None] if squeeze else x, dtype=np.float64, copy=True)
        # U^T y = x: forward over rows; U^T's column i entries are U's row
        # entries (i, j>i), contributing to later rows.
        for i in range(self.n):
            _, _, diag, ucols, uvals = self.rows[i]
            y[i] /= diag
            for c, v in zip(ucols, uvals):
                y[c] -= v * y[i]
        # L^T z = y: backward; L's row entries (i, j<i) contribute to
        # earlier rows.
        for i in range(self.n - 1, -1, -1):
            lcols, lvals, _, _, _ = self.rows[i]
            for c, v in zip(lcols, lvals):
                y[c] -= v * y[i]
        return y[:, 0] if squeeze else y

    def factors_dense(self):
        """Dense ``(L, U)`` (unit-lower / upper) — test oracle only."""
        ell = np.eye(self.n)
        u = np.zeros((self.n, self.n))
        for i, (lcols, lvals, diag, ucols, uvals) in enumerate(self.rows):
            ell[i, lcols] = lvals
            u[i, i] = diag
            u[i, ucols] = uvals
        return ell, u


def make_preconditioner(
    name: str, matrix: Csr, max_block_size: Optional[int] = None
) -> Preconditioner:
    """Factory by name: ``"identity"`` / ``"jacobi"`` / ``"block_jacobi"``
    / ``"ilu0"``."""
    key = name.lower()
    if key == "identity":
        return Identity.generate(matrix)
    if key == "jacobi":
        return Jacobi.generate(matrix)
    if key in ("block_jacobi", "block-jacobi"):
        return BlockJacobi.generate(matrix, max_block_size or 8)
    if key in ("ilu0", "ilu"):
        return Ilu0.generate(matrix)
    raise ValueError(f"unknown preconditioner {name!r}")
