"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``      Package, configuration and solver-selection summary.
``demo``      A tiny end-to-end spline build + evaluate run.
``report``    The performance-portability summary (device model).
``serve``     Run the TCP solve service (``serve [--host H] [--port P]``).
"""

from __future__ import annotations

import sys

import numpy as np


def cmd_info() -> None:
    from repro import __version__
    from repro.core import SplineBuilder
    from repro.core.spec import paper_configurations

    print(f"repro {__version__} — performance-portable batched spline solver")
    print("(reproduction of Asahi et al., SC 2024)\n")
    print("Table-I solver selection (verified live):")
    for spec in paper_configurations(64):
        builder = SplineBuilder(spec)
        print(f"  {spec.label:25s} -> {builder.solver_name:6s} "
              f"corner nnz {builder.solver.corner_nnz}")


def cmd_demo() -> None:
    from repro import BSplineSpec, SplineBuilder, SplineEvaluator

    spec = BSplineSpec(degree=3, n_points=256)
    builder = SplineBuilder(spec, version=2)
    x = builder.interpolation_points()
    values = np.sin(2 * np.pi * x[:, None] + np.linspace(0, 3, 1000)[None, :])
    coeffs = builder.solve(values)
    ev = SplineEvaluator(builder.space_1d)
    xs = np.linspace(0, 1, 997, endpoint=False)
    err = np.max(np.abs(ev(coeffs[:, 0], xs) - np.sin(2 * np.pi * xs)))
    print(f"built splines for {values.shape[1]} right-hand sides "
          f"(n = {builder.n}, solver = {builder.solver_name})")
    print(f"max interpolation error: {err:.2e}")


def cmd_report() -> None:
    from repro.bench import Table
    from repro.core.spec import paper_configurations
    from repro.perfmodel import PAPER_DEVICES, pennycook_metric
    from repro.perfmodel.devicesim import paper_simulators

    sims = paper_simulators()
    table = Table(
        "P(a, p, H) over {Icelake, A100, MI250X} (device model, paper size)",
        ["configuration", "P"],
    )
    for spec in paper_configurations(64):
        effs = [
            sims[d.name].solve_bandwidth_gbs(
                1000, 100_000, degree=spec.degree, uniform=spec.uniform
            ) / d.peak_bandwidth_gbs
            for d in PAPER_DEVICES
        ]
        table.add_row(spec.label, round(pennycook_metric(effs), 3))
    print(table.render())


def cmd_serve(args) -> None:
    import argparse

    from repro.service.server import serve

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="serve spline solves over TCP (see docs/service.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8157)
    opts = parser.parse_args(args)
    serve(host=opts.host, port=opts.port)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    commands = {"info": cmd_info, "demo": cmd_demo, "report": cmd_report}
    if argv[0] == "serve":
        cmd_serve(argv[1:])
        return 0
    handler = commands.get(argv[0])
    if handler is None:
        print(f"unknown command {argv[0]!r}\n")
        print(__doc__)
        return 1
    handler()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
