"""``python -m repro.verify`` — spec-space oracle sweep with a scoreboard.

Sweeps the spline configuration space (degree × boundary × dtype ×
version × backend) through the differential oracles of
:mod:`repro.verify.oracle` and prints one scoreboard row per oracle run.
Exit status is 0 iff every oracle passed, so the sweep doubles as a CI
gate and as a quick field check after a toolchain change::

    python -m repro.verify --quick          # small sweep, every axis hit
    python -m repro.verify                  # full sweep
    python -m repro.verify --oracles residual,backend --dtypes float32

The sweep is deterministic: right-hand sides come from a fixed seed and
the pass/fail tolerances are condition-aware (``c · κ · ε(dtype)``), so
the scoreboard is reproducible across runs and hosts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

import numpy as np

from repro.verify.oracle import (
    ORACLES,
    OracleResult,
    backend_oracle,
    iterative_oracle,
    residual_oracle,
    version_oracle,
)
from repro.verify.residual import DEFAULT_TOL_FACTOR

__all__ = ["main", "sweep"]

_DTYPES = {"float32": np.float32, "float64": np.float64}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential-oracle sweep over the spline spec space",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep (degree 3, n=32, batch 4) still covering every "
        "version x backend x dtype cell",
    )
    parser.add_argument(
        "--degrees", default=None, help="comma list of spline degrees (default 3,4,5)"
    )
    parser.add_argument(
        "--boundaries",
        default="periodic,clamped",
        help="comma list of boundary conditions",
    )
    parser.add_argument(
        "--dtypes", default="float64,float32", help="comma list of working precisions"
    )
    parser.add_argument(
        "--versions", default="0,1,2", help="comma list of §IV optimization versions"
    )
    parser.add_argument(
        "--backends",
        default="vectorized,serial",
        help="comma list of execution backends",
    )
    parser.add_argument(
        "--oracles",
        default=",".join(ORACLES),
        help=f"comma list of oracles to run (available: {','.join(ORACLES)})",
    )
    parser.add_argument(
        "--points", type=int, default=None, help="spline points n (default 48)"
    )
    parser.add_argument(
        "--batch", type=int, default=None, help="right-hand sides per oracle run"
    )
    parser.add_argument("--seed", type=int, default=0, help="RHS generator seed")
    parser.add_argument(
        "--tol-factor",
        type=float,
        default=DEFAULT_TOL_FACTOR,
        help="safety factor c of the condition-aware tolerance c*kappa*eps",
    )
    parser.add_argument(
        "--failures-only",
        action="store_true",
        help="print only failing rows (summary line always printed)",
    )
    return parser.parse_args(argv)


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def sweep(
    degrees,
    boundaries,
    dtypes,
    versions,
    backends,
    oracles,
    points: int,
    batch: int,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
) -> List[OracleResult]:
    """Run the oracle sweep and return every :class:`OracleResult`.

    The per-oracle fan-out mirrors what each oracle already compares
    internally: the backend oracle runs once per version (it covers both
    backends itself), the version oracle once per backend (it covers all
    three versions), the residual oracle over the full version × backend
    grid, and the iterative oracle once per dtype at the default
    version/backend (it is the expensive one).
    """
    from repro.core.spec import BSplineSpec

    results: List[OracleResult] = []
    common = dict(batch=batch, seed=seed, tol_factor=tol_factor)
    for degree in degrees:
        for boundary in boundaries:
            spec = BSplineSpec(degree=degree, n_points=points, boundary=boundary)
            for dtype in dtypes:
                if "residual" in oracles:
                    for version in versions:
                        for backend in backends:
                            results.append(
                                residual_oracle(
                                    spec, version=version, backend=backend,
                                    dtype=dtype, **common,
                                )
                            )
                if "backend" in oracles:
                    for version in versions:
                        results.append(
                            backend_oracle(spec, version=version, dtype=dtype, **common)
                        )
                if "version" in oracles:
                    for backend in backends:
                        results.append(
                            version_oracle(spec, backend=backend, dtype=dtype, **common)
                        )
                if "iterative" in oracles:
                    results.append(iterative_oracle(spec, dtype=dtype, **common))
    return results


def _scoreboard(results: List[OracleResult], failures_only: bool) -> str:
    from repro.bench import Table

    table = Table(
        "repro.verify oracle scoreboard",
        ["oracle", "case", "max ulp", "tol ulp", "kappa", "status"],
    )
    for res in results:
        if failures_only and res.passed:
            continue
        table.add_row(
            res.oracle,
            res.case,
            f"{res.max_ulp:.1f}",
            f"{res.tol_ulp:.0f}",
            f"{res.kappa:.1f}",
            "pass" if res.passed else "FAIL",
        )
    return table.render()


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    degrees = [int(d) for d in _csv(args.degrees or ("3" if args.quick else "3,4,5"))]
    boundaries = _csv(args.boundaries)
    dtype_names = _csv(args.dtypes)
    unknown_dtypes = [name for name in dtype_names if name not in _DTYPES]
    if unknown_dtypes:
        print(f"unknown dtypes {unknown_dtypes}; available: {list(_DTYPES)}")
        return 2
    oracles = _csv(args.oracles)
    unknown = [name for name in oracles if name not in ORACLES]
    if unknown:
        print(f"unknown oracles {unknown}; available: {list(ORACLES)}")
        return 2
    results = sweep(
        degrees=degrees,
        boundaries=boundaries,
        dtypes=[_DTYPES[name] for name in dtype_names],
        versions=[int(v) for v in _csv(args.versions)],
        backends=_csv(args.backends),
        oracles=oracles,
        points=args.points or (32 if args.quick else 48),
        batch=args.batch or (4 if args.quick else 8),
        seed=args.seed,
        tol_factor=args.tol_factor,
    )
    failed = [res for res in results if not res.passed]
    if not (args.failures_only and not failed):
        print(_scoreboard(results, args.failures_only))
    print(
        f"\n{len(results)} oracle runs, {len(failed)} failed"
        + ("" if failed else " — all paths agree to condition-scaled ulps")
    )
    for res in failed:
        print(f"  {res}  [{res.detail}]")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
