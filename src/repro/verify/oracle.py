"""Differential oracles: replay a solve through an independent path.

A residual check (:mod:`repro.verify.residual`) catches a solver that is
*wrong*; a differential oracle catches one that is *differently wrong* —
two paths that should agree to rounding but silently diverged.  Each
oracle here solves the same right-hand sides twice through routes that
share as little code as possible and reports the worst divergence in
**ulp units** of the coarser dtype:

``backend``
    vectorized block kernels vs the serial column-at-a-time kernels
    (§II-C split — different kernel bodies, same factorization).
``version``
    §IV optimization versions 1 and 2 against the version-0 baseline
    (fused chunks and sparse COO corners reassociate the arithmetic, so
    they agree only to a condition-scaled ulp count).
``iterative``
    the direct Table I / Algorithm 1 route against a preconditioned
    Krylov solve from :mod:`repro.iterative` (fully independent
    numerics — the strongest oracle, and the slowest).
``residual``
    the backward-error check itself, expressed on the same scoreboard
    (its "ulp" column is the backward error in ε units).

Divergence is measured *normwise* per column: ``|got − ref|`` divided by
the spacing of the column's largest reference magnitude.  Elementwise
ulp counts explode on entries that round to zero; the normwise unit is
what backward-stability bounds actually control.  Tolerances are
condition-aware: two backward-stable paths can differ by ``O(κ ε)``
relative, i.e. ``O(κ)`` normwise ulps, so every oracle passes iff
``max_ulp <= tol_factor · κ`` (with the iterative oracle additionally
widened by its stopping tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.verify.condest import DEFAULT_ITMAX, condest_from_solver
from repro.verify.residual import DEFAULT_TOL_FACTOR, ResidualChecker

__all__ = [
    "OracleResult",
    "max_ulp_diff",
    "backend_oracle",
    "version_oracle",
    "iterative_oracle",
    "residual_oracle",
    "run_oracles",
    "ORACLES",
]


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one oracle on one spline configuration."""

    oracle: str  #: oracle name ("backend", "version", ...)
    case: str  #: human-readable configuration summary
    passed: bool
    max_ulp: float  #: worst normwise divergence, in ulps of the coarse dtype
    tol_ulp: float  #: condition-aware ulp budget the divergence is held to
    kappa: float  #: κ₁ estimate used to set the budget
    detail: str = ""  #: which comparison produced ``max_ulp``

    def __str__(self) -> str:
        status = "pass" if self.passed else "FAIL"
        return (
            f"[{status}] {self.oracle:<9} {self.case}: "
            f"{self.max_ulp:.1f} ulp (tol {self.tol_ulp:.0f}, κ≈{self.kappa:.1f})"
        )


def max_ulp_diff(got: np.ndarray, ref: np.ndarray) -> float:
    """Worst normwise divergence between two solves, in ulps.

    Per column the divergence ``max_i |got_i − ref_i|`` is divided by the
    spacing (1 ulp) at the column's largest reference magnitude, measured
    in the *coarser* of the two dtypes — comparing a float32 path against
    a float64 reference counts float32 ulps.  Columns whose reference is
    exactly zero are measured at spacing(1).
    """
    got = np.asarray(got)
    ref = np.asarray(ref)
    if got.shape != ref.shape:
        raise ShapeError(
            f"oracle outputs disagree in shape: {got.shape} vs {ref.shape}"
        )
    unit_dtype = max(got.dtype, ref.dtype, key=lambda d: np.finfo(d).eps)
    got2 = got.astype(np.float64).reshape(got.shape[0], -1)
    ref2 = ref.astype(np.float64).reshape(ref.shape[0], -1)
    scale = np.max(np.abs(ref2), axis=0)
    scale[scale == 0.0] = 1.0
    ulp = np.spacing(scale.astype(unit_dtype)).astype(np.float64)
    return float(np.max(np.max(np.abs(got2 - ref2), axis=0) / ulp))


def _case_label(spec, version: int, backend: str, dtype) -> str:
    return (
        f"deg={spec.degree} {spec.boundary}"
        f"{'' if spec.uniform else '/nonuni'} n={spec.n_points} "
        f"v{version} {backend} {np.dtype(dtype).name}"
    )


def _make_rhs(n: int, batch: int, seed: int) -> np.ndarray:
    """Reproducible right-hand sides: smooth modes plus small noise.

    Smooth columns exercise the regime splines are built for; the noise
    keeps the corner (wrap) entries of periodic systems non-trivial.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    modes = np.arange(1, batch + 1)
    smooth = np.sin(np.outer(t, modes) + rng.uniform(0, 2 * np.pi, batch))
    return smooth + 0.1 * rng.standard_normal((n, batch))


def _builder(spec, version: int, backend: str, dtype):
    from repro.core.builder.builder import SplineBuilder

    return SplineBuilder(spec, version=version, backend=backend, dtype=dtype)


def backend_oracle(
    spec,
    version: int = 2,
    dtype=np.float64,
    batch: int = 8,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    itmax: int = DEFAULT_ITMAX,
) -> OracleResult:
    """Vectorized block kernels vs serial column kernels, same plan."""
    vec = _builder(spec, version, "vectorized", dtype)
    ser = _builder(spec, version, "serial", dtype)
    rhs = _make_rhs(vec.n, batch, seed)
    x_vec = vec.solve(rhs)
    x_ser = ser.solve(rhs)
    kappa = condest_from_solver(vec.solver, itmax=itmax)
    ulp = max_ulp_diff(x_ser, x_vec)
    tol_ulp = tol_factor * kappa
    return OracleResult(
        oracle="backend",
        case=_case_label(spec, version, "vec|serial", dtype),
        passed=ulp <= tol_ulp,
        max_ulp=ulp,
        tol_ulp=tol_ulp,
        kappa=kappa,
        detail="serial vs vectorized",
    )


def version_oracle(
    spec,
    backend: str = "vectorized",
    dtype=np.float64,
    batch: int = 8,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    itmax: int = DEFAULT_ITMAX,
) -> OracleResult:
    """§IV versions 1 and 2 against the version-0 baseline."""
    baseline = _builder(spec, 0, backend, dtype)
    rhs = _make_rhs(baseline.n, batch, seed)
    x_ref = baseline.solve(rhs)
    kappa = condest_from_solver(baseline.solver, itmax=itmax)
    worst, worst_of = 0.0, "v1 vs v0"
    for version in (1, 2):
        x = _builder(spec, version, backend, dtype).solve(rhs)
        ulp = max_ulp_diff(x, x_ref)
        if ulp >= worst:
            worst, worst_of = ulp, f"v{version} vs v0"
    tol_ulp = tol_factor * kappa
    return OracleResult(
        oracle="version",
        case=_case_label(spec, 0, backend, dtype).replace("v0 ", "v{0,1,2} "),
        passed=worst <= tol_ulp,
        max_ulp=worst,
        tol_ulp=tol_ulp,
        kappa=kappa,
        detail=worst_of,
    )


def iterative_oracle(
    spec,
    version: int = 2,
    backend: str = "vectorized",
    dtype=np.float64,
    batch: int = 8,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    itmax: int = DEFAULT_ITMAX,
    solver: str = "gmres",
    tolerance: float = 1e-15,
) -> OracleResult:
    """Direct Algorithm 1 route vs an independent Krylov solve.

    The Krylov path (:class:`~repro.core.builder.ginkgo_builder.GinkgoSplineBuilder`)
    shares no factorization code with the direct route, making this the
    strongest oracle.  Its budget is widened beyond ``tol_factor · κ`` by
    the stopping tolerance: GMRES only promises a residual reduction of
    *tolerance*, worth ``κ · tolerance / ε`` extra normwise ulps.
    """
    from repro.core.builder.ginkgo_builder import GinkgoSplineBuilder

    direct = _builder(spec, version, backend, dtype)
    krylov = GinkgoSplineBuilder(spec, solver=solver, tolerance=tolerance)
    rhs = _make_rhs(direct.n, batch, seed)
    x_direct = direct.solve(rhs)
    x_krylov = krylov.solve(rhs).astype(np.dtype(dtype))
    kappa = condest_from_solver(direct.solver, itmax=itmax)
    ulp = max_ulp_diff(x_direct, x_krylov)
    eps = float(np.finfo(np.dtype(dtype)).eps)
    tol_ulp = tol_factor * kappa * (1.0 + tolerance / eps)
    return OracleResult(
        oracle="iterative",
        case=_case_label(spec, version, backend, dtype),
        passed=ulp <= tol_ulp,
        max_ulp=ulp,
        tol_ulp=tol_ulp,
        kappa=kappa,
        detail=f"direct vs {solver} ({krylov.last_iterations} its)",
    )


def residual_oracle(
    spec,
    version: int = 2,
    backend: str = "vectorized",
    dtype=np.float64,
    batch: int = 8,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    itmax: int = DEFAULT_ITMAX,
) -> OracleResult:
    """Backward-error self-check, reported in ε units for the scoreboard."""
    builder = _builder(spec, version, backend, dtype)
    rhs = _make_rhs(builder.n, batch, seed)
    x = builder.solve(rhs)
    checker = ResidualChecker(builder, tol_factor=tol_factor, itmax=itmax)
    report = checker.check(x, rhs)
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return OracleResult(
        oracle="residual",
        case=_case_label(spec, version, backend, dtype),
        passed=report.passed,
        max_ulp=report.worst / eps,
        tol_ulp=report.tol / eps,
        kappa=report.kappa,
        detail=f"backward error {report.worst:.2e} (tol {report.tol:.2e})",
    )


#: oracle registry, in cost order (cheapest first)
ORACLES = {
    "residual": residual_oracle,
    "backend": backend_oracle,
    "version": version_oracle,
    "iterative": iterative_oracle,
}


def run_oracles(
    spec,
    version: int = 2,
    backend: str = "vectorized",
    dtype=np.float64,
    batch: int = 8,
    seed: int = 0,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    oracles=None,
) -> list[OracleResult]:
    """Run a set of oracles on one configuration.

    *oracles* is an iterable of registry names (default: all of
    :data:`ORACLES`).  ``version`` parameterizes the backend / iterative /
    residual oracles; the version oracle always compares v{0,1,2} against
    each other and ignores it.  Returns one :class:`OracleResult` per
    oracle, in registry order.
    """
    names = list(ORACLES) if oracles is None else list(oracles)
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracles {unknown}; available: {list(ORACLES)}")
    common = dict(dtype=dtype, batch=batch, seed=seed, tol_factor=tol_factor)
    results = []
    for name in names:
        if name == "backend":
            results.append(backend_oracle(spec, version=version, **common))
        elif name == "version":
            results.append(version_oracle(spec, backend=backend, **common))
        else:
            results.append(
                ORACLES[name](spec, version=version, backend=backend, **common)
            )
    return results
