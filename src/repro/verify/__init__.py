"""Numerical verification layer: residuals, condition estimates, oracles.

Three certification primitives, cheapest first:

* :mod:`repro.verify.residual` — the Rigal–Gaches normwise backward
  error from a banded (never densified) operator product; the check the
  runtime engine samples on live traffic (``EngineConfig.verify_every``).
* :mod:`repro.verify.condest` — Hager/Higham ``κ₁`` estimation from the
  factorization already paid for, turning every tolerance in this layer
  into the condition-aware ``c · κ · ε(dtype)``.
* :mod:`repro.verify.oracle` — differential oracles replaying solves
  through independent paths (vectorized vs serial backends, §IV versions
  0/1/2, direct vs Krylov) and reporting divergence in ulps.

``python -m repro.verify`` sweeps the spec space through the oracles and
prints a scoreboard (:mod:`repro.verify.cli`).
"""

from repro.verify.condest import (
    condest_from_plan,
    condest_from_solver,
    condition_tolerance,
    onenormest,
)
from repro.verify.oracle import (
    ORACLES,
    OracleResult,
    backend_oracle,
    iterative_oracle,
    max_ulp_diff,
    residual_oracle,
    run_oracles,
    version_oracle,
)
from repro.verify.residual import (
    DEFAULT_TOL_FACTOR,
    BandedOperator,
    ResidualChecker,
    ResidualReport,
    backward_error,
)

__all__ = [
    "BandedOperator",
    "ResidualChecker",
    "ResidualReport",
    "backward_error",
    "DEFAULT_TOL_FACTOR",
    "onenormest",
    "condest_from_solver",
    "condest_from_plan",
    "condition_tolerance",
    "OracleResult",
    "max_ulp_diff",
    "backend_oracle",
    "version_oracle",
    "iterative_oracle",
    "residual_oracle",
    "run_oracles",
    "ORACLES",
]
