"""Hager/Higham 1-norm condition estimation from factorized solvers.

``κ₁(A) = ‖A‖₁ ‖A⁻¹‖₁`` decides how accurate a backward-stable solve can
possibly be, so every tolerance in the verification layer is written as
``c · κ · ε(dtype)`` instead of a hard-coded constant.  ``‖A‖₁`` is exact
and cheap from the banded operator; ``‖A⁻¹‖₁`` is *estimated* with
Hager's algorithm in Higham's form (the method behind LAPACK's
``xLACON`` / ``condest``): a gradient ascent on ``f(x) = ‖A⁻¹x‖₁`` over
the 1-norm unit ball that needs only a handful of solves with ``A`` and
``Aᵀ`` — both available from the factorization already paid for
(:meth:`~repro.core.builder.plan.FactorizationPlan.solve_transpose`,
:meth:`~repro.core.builder.schur.SchurSolver.solve_transpose`).

The estimate is a lower bound, in practice within a small factor of the
truth (Higham 1988 reports it almost always within 2x); that is exactly
the fidelity a tolerance needs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "onenormest",
    "condest_from_solver",
    "condest_from_plan",
    "condition_tolerance",
    "DEFAULT_ITMAX",
]

#: iteration cap of the Hager ascent; Higham observes convergence in <= 4
DEFAULT_ITMAX = 5


def onenormest(
    solve: Callable[[np.ndarray], np.ndarray],
    solve_transpose: Callable[[np.ndarray], np.ndarray],
    n: int,
    itmax: int = DEFAULT_ITMAX,
) -> float:
    """Estimate ``‖B‖₁`` given only products ``B x`` and ``Bᵀ x``.

    *solve* / *solve_transpose* apply ``B`` and ``Bᵀ`` to a 1-D float64
    vector (for condition estimation ``B = A⁻¹``, so they are solves).
    This is Hager's algorithm with Higham's two safeguards: convergence
    is declared when the gradient step stops improving or revisits the
    same unit vector, and the final estimate is cross-checked against an
    alternating-sign probe vector that defeats the ascent's known
    counter-examples.
    """
    if n < 1:
        raise ValueError(f"operator size must be >= 1, got {n}")
    if itmax < 1:
        raise ValueError(f"itmax must be >= 1, got {itmax}")
    if n == 1:
        return float(np.abs(solve(np.ones(1)))[0])
    x = np.full(n, 1.0 / n)
    est = 0.0
    last_j = -1
    for _ in range(itmax):
        y = solve(x)
        est_new = float(np.sum(np.abs(y)))
        xi = np.where(y >= 0.0, 1.0, -1.0)
        z = solve_transpose(xi)
        j = int(np.argmax(np.abs(z)))
        if est_new <= est or j == last_j:
            est = max(est, est_new)
            break
        est = est_new
        if float(np.abs(z[j])) <= float(z @ x):
            break  # gradient has no ascent direction left
        x = np.zeros(n)
        x[j] = 1.0
        last_j = j
    # Higham's final safeguard: an alternating, growing probe vector.
    v = np.array([(-1.0) ** i * (1.0 + i / (n - 1)) for i in range(n)])
    est_v = 2.0 * float(np.sum(np.abs(solve(v)))) / (3.0 * n)
    return max(est, est_v)


def _solver_apply(solver, transpose: bool) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a batched in-place solver into a 1-D out-of-place apply."""

    def apply(vec: np.ndarray) -> np.ndarray:
        work = np.array(vec, dtype=np.float64, copy=True)[:, None]
        work = work.astype(getattr(solver, "dtype", np.float64))
        if transpose:
            solver.solve_transpose(work)
        else:
            solver.solve(work)
        return work[:, 0].astype(np.float64)

    return apply


def condest_from_solver(
    solver, norm1: float | None = None, itmax: int = DEFAULT_ITMAX
) -> float:
    """``κ₁`` estimate for a factorized solver object.

    *solver* is a :class:`~repro.core.builder.schur.SchurSolver`,
    :class:`~repro.core.builder.direct.DirectBandSolver` or anything with
    in-place ``solve(block)`` / ``solve_transpose(block)`` and an ``n``.
    *norm1* overrides the solver's recorded ``‖A‖₁`` (e.g. the exact
    value from a :class:`~repro.verify.residual.BandedOperator`).
    """
    a_norm = float(norm1 if norm1 is not None else getattr(solver, "norm1", np.nan))
    inv_norm = onenormest(
        _solver_apply(solver, transpose=False),
        _solver_apply(solver, transpose=True),
        int(solver.n),
        itmax=itmax,
    )
    return a_norm * inv_norm


def condest_from_plan(plan, itmax: int = DEFAULT_ITMAX) -> float:
    """``κ₁`` estimate for a bare :class:`FactorizationPlan`.

    Uses the 1-norm the plan recorded at factorization time; the inverse
    norm comes from the plan's own solve / transpose-solve backends.
    """
    return condest_from_solver(plan, norm1=plan.norm1, itmax=itmax)


def condition_tolerance(kappa: float, dtype, factor: float = 64.0) -> float:
    """The condition-aware tolerance ``min(1, factor · κ · ε(dtype))``.

    One formula serves every check in this layer: forward-type
    comparisons (differential oracles, golden fixtures) genuinely scale
    with κ ε, and the Schur elimination's corner updates can leak a
    κ-sized factor into the backward error too, so residual checks use
    the same bound rather than a hard-coded constant.  The clip at 1.0
    keeps hopelessly ill-conditioned configurations from vacuously
    passing with tolerances above 100%.
    """
    return min(1.0, float(factor) * float(kappa) * float(np.finfo(np.dtype(dtype)).eps))
