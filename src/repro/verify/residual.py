"""Backward-error residual checking from the banded operator representation.

The certification primitive of this layer is the *normwise backward
error* of Rigal–Gaches::

    η(x) = ‖A x − b‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)

η is the size of the smallest relative perturbation ``(ΔA, Δb)`` such
that ``(A + ΔA) x = b + Δb`` exactly — a solve is *backward stable* when
η is a modest multiple of the unit roundoff of the working precision,
regardless of how ill-conditioned ``A`` is.  That makes η the right
pass/fail quantity for a solver harness: unlike the forward error it
does not require knowing the true solution, and unlike a fixed residual
threshold it composes with the Hager/Higham condition estimate into a
condition-aware tolerance (:mod:`repro.verify.condest`).

Computing ``A x`` must not re-densify the operator at paper scale
(N ≈ 1000, batch ≈ 1e5): :class:`BandedOperator` stores the collocation
matrix as its diagonals plus a COO list of the cyclic wrap corners, so
the batched product costs ``O((kl + ku + 1) · n · B)`` — the same order
as the solve itself — instead of ``O(n² · B)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError, VerificationError
from repro.kbatched.coo import Coo

__all__ = [
    "BandedOperator",
    "backward_error",
    "ResidualChecker",
    "ResidualReport",
    "DEFAULT_TOL_FACTOR",
]

#: safety factor ``c`` in the condition-aware tolerance ``c · κ · ε(dtype)``.
#: Backward errors of a stable banded solve are a few ε; the factor leaves
#: head-room for the Schur corner updates and the §IV-B dropped entries.
DEFAULT_TOL_FACTOR = 64.0


class BandedOperator:
    """``A @ X`` from diagonal + corner-COO storage — never densified.

    The periodic spline collocation matrix is banded up to its cyclic
    wrap corners.  The constructor splits a dense matrix into

    * the **core band**: every non-zero with offset ``|j − i| ≤ n/2``,
      stored one array per diagonal, and
    * the **corners**: everything outside the core band (the wrap
      entries of a periodic matrix; empty for clamped ones), stored COO.

    The split is exact for any matrix — an entry lands either in a
    diagonal or in the corner list — so ``matmat`` reproduces the dense
    product to the working precision while touching only
    ``(kl + ku + 1) · n + nnz(corners)`` stored values.
    """

    def __init__(
        self,
        n: int,
        diagonals: List[Tuple[int, np.ndarray]],
        corners: Coo,
    ) -> None:
        self.n = int(n)
        self.diagonals = diagonals
        self.corners = corners
        self._norm_inf: Optional[float] = None  # norms are cached: the
        self._norm1: Optional[float] = None  # checker reads them per check

    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "BandedOperator":
        """Split dense *a* into core diagonals + wrap corners.

        *tol* drops assembly noise (``|entry| <= tol``) from both parts.
        """
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ShapeError(f"expected a square matrix, got shape {a.shape}")
        n = a.shape[0]
        rows, cols = np.nonzero(np.abs(a) > tol)
        offsets = cols - rows
        half = max(1, n // 2)
        core = np.abs(offsets) <= half
        kl = int(-offsets[core].min()) if np.any(core & (offsets < 0)) else 0
        ku = int(offsets[core].max()) if np.any(core & (offsets > 0)) else 0
        diagonals = []
        for off in range(-kl, ku + 1):
            diag = np.diagonal(a, off).copy()
            if np.any(np.abs(diag) > tol):
                diagonals.append((off, diag))
        in_band = (offsets >= -kl) & (offsets <= ku)
        out_r, out_c = rows[~in_band], cols[~in_band]
        corners = Coo(n, n, out_r, out_c, a[out_r, out_c])
        return cls(n, diagonals, corners)

    @property
    def bandwidths(self) -> Tuple[int, int]:
        """``(kl, ku)`` of the core band."""
        offs = [off for off, _ in self.diagonals]
        if not offs:
            return 0, 0
        return max(0, -min(offs)), max(0, max(offs))

    @property
    def nnz(self) -> int:
        """Stored values: diagonal entries plus corner non-zeros."""
        return sum(d.size for _, d in self.diagonals) + self.corners.nnz

    @property
    def norm_inf(self) -> float:
        """Exact ``‖A‖∞`` (max absolute row sum) from the sparse storage."""
        if self._norm_inf is None:
            self._norm_inf = float(np.max(self._abs_row_sums())) if self.n else 0.0
        return self._norm_inf

    @property
    def norm1(self) -> float:
        """Exact ``‖A‖₁`` (max absolute column sum) from the sparse storage."""
        if self._norm1 is None:
            sums = np.zeros(self.n)
            for off, diag in self.diagonals:
                if off >= 0:
                    sums[off : off + diag.size] += np.abs(diag)
                else:
                    sums[: diag.size] += np.abs(diag)
            np.add.at(sums, self.corners.cols_idx, np.abs(self.corners.values))
            self._norm1 = float(np.max(sums)) if self.n else 0.0
        return self._norm1

    def _abs_row_sums(self) -> np.ndarray:
        sums = np.zeros(self.n)
        for off, diag in self.diagonals:
            if off >= 0:
                sums[: diag.size] += np.abs(diag)
            else:
                sums[-off : -off + diag.size] += np.abs(diag)
        np.add.at(sums, self.corners.rows_idx, np.abs(self.corners.values))
        return sums

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a 2-D ``(n, batch)`` block, in float64."""
        if x.ndim != 2:
            raise ShapeError(f"matmat expects a 2-D (n, batch) block, got {x.shape}")
        if x.shape[0] != self.n:
            raise ShapeError(
                f"operand leading extent {x.shape[0]} does not match "
                f"operator size {self.n}"
            )
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros_like(x)
        for off, diag in self.diagonals:
            if off >= 0:
                # entries A[i, i + off]: y[i] += diag[i] * x[i + off]
                y[: diag.size] += diag[:, None] * x[off : off + diag.size]
            else:
                # entries A[i - off, i]: y[i - off] += diag[i] * x[i]
                y[-off : -off + diag.size] += diag[:, None] * x[: diag.size]
        c = self.corners
        if c.nnz:
            np.add.at(y, c.rows_idx, c.values[:, None] * x[c.cols_idx])
        return y

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a 1-D vector."""
        return self.matmat(np.asarray(x)[:, None])[:, 0]

    def to_dense(self) -> np.ndarray:
        """Reassemble the dense matrix (test/debug helper)."""
        a = np.zeros((self.n, self.n))
        for off, diag in self.diagonals:
            a += np.diag(diag, off)
        a += self.corners.to_dense()
        return a

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kl, ku = self.bandwidths
        return (
            f"BandedOperator(n={self.n}, kl={kl}, ku={ku}, "
            f"corner_nnz={self.corners.nnz})"
        )


def backward_error(
    op: BandedOperator, x: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Per-column Rigal–Gaches backward errors of ``x`` against ``A x = b``.

    *x* and *b* are ``(n,)`` or ``(n, batch)``; the residual is computed
    in float64 whatever the solve precision, so reduced-precision solves
    are measured against their true backward error, not against their own
    rounding.  Returns a 1-D array of one η per column; columns where
    both denominator terms vanish (``b = 0`` solved to ``x = 0``) report
    0 rather than NaN.
    """
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if x.shape != b.shape:
        raise ShapeError(f"x{x.shape} and b{b.shape} must match")
    r = op.matmat(x)
    np.subtract(r, b, out=r)  # matmat returns a fresh float64 block
    np.abs(r, out=r)
    num = r.max(axis=0)
    den = op.norm_inf * np.abs(x).max(axis=0) + np.abs(b).max(axis=0)
    out = np.where(
        den > 0, num / np.where(den > 0, den, 1.0), np.where(num > 0, np.inf, 0.0)
    )
    # A NaN/Inf anywhere (poisoned right-hand side, overflowed solve) makes
    # both num and den non-comparable; report η = ∞ so the check fails
    # rather than silently passing through the NaN > 0 == False branch.
    return np.where(np.isfinite(num) & np.isfinite(den), out, np.inf)


@dataclass(frozen=True)
class ResidualReport:
    """Outcome of one residual check over a batch of columns."""

    passed: bool
    worst: float          #: max backward error over the checked columns
    tol: float            #: condition-aware tolerance the check used
    cols_checked: int
    kappa: float          #: κ₁ estimate behind the tolerance
    errors: Optional[np.ndarray] = None  #: per-column η (when kept)

    def raise_if_failed(self) -> None:
        if not self.passed:
            raise VerificationError(
                f"backward error {self.worst:.3e} exceeds condition-aware "
                f"tolerance {self.tol:.3e} (κ₁ ≈ {self.kappa:.3e})",
                backward_error=self.worst,
                tol=self.tol,
            )


class ResidualChecker:
    """Cheap backward-error certification for one factorized builder.

    Built once per :class:`~repro.core.builder.builder.SplineBuilder`
    (or anything exposing ``.matrix`` — the dense collocation matrix —
    plus ``.dtype`` and a ``.solver`` with ``solve``/``solve_transpose``):
    the dense matrix is split into the banded operator once, the
    condition estimate runs once, and every subsequent
    :meth:`backward_errors` call is a banded product plus norms.

    Parameters
    ----------
    builder:
        The factorized builder whose solves are to be certified.
    tol:
        Explicit tolerance on η.  Default: the condition-aware
        ``tol_factor · κ₁ · ε(dtype)`` (clipped to 1.0), so a
        well-conditioned float64 solve must be good to ~1e-14 while an
        ill-conditioned or float32 one is judged by what stability can
        actually deliver.
    tol_factor:
        Safety factor ``c`` of the default tolerance.
    itmax:
        Iteration cap for the Hager/Higham condition estimator.
    """

    def __init__(
        self,
        builder,
        tol: Optional[float] = None,
        tol_factor: float = DEFAULT_TOL_FACTOR,
        itmax: Optional[int] = None,
    ) -> None:
        # accept whichever attribute holds the dense collocation matrix —
        # the iterative builder keeps ``.matrix`` as CSR and the dense
        # array under ``.matrix_dense``
        matrix = getattr(builder, "matrix", None)
        if not isinstance(matrix, np.ndarray):
            matrix = getattr(builder, "matrix_dense", None)
        if matrix is None or not isinstance(matrix, np.ndarray):
            raise TypeError(
                "ResidualChecker needs a builder exposing its dense "
                f"collocation matrix; got {type(builder).__name__}"
            )
        self.op = BandedOperator.from_dense(matrix)
        self.dtype = np.dtype(getattr(builder, "dtype", np.float64))
        self.eps = float(np.finfo(self.dtype).eps)
        self.tol_factor = float(tol_factor)
        self.kappa = self._estimate_kappa(builder, itmax)
        if tol is not None:
            self.tol = float(tol)
        else:
            from repro.verify.condest import condition_tolerance

            self.tol = condition_tolerance(self.kappa, self.dtype, self.tol_factor)

    def _estimate_kappa(self, builder, itmax: Optional[int]) -> float:
        from repro.verify.condest import DEFAULT_ITMAX, condest_from_solver

        solver = getattr(builder, "solver", None)
        if solver is not None and hasattr(solver, "solve_transpose"):
            try:
                return condest_from_solver(
                    solver,
                    norm1=self.op.norm1,
                    itmax=DEFAULT_ITMAX if itmax is None else itmax,
                )
            except Exception:  # noqa: BLE001 - estimator failure is advisory
                pass
        # No transpose-capable solver (e.g. the iterative builder): fall
        # back to the cheap lower bound κ₁ >= 1; the tolerance degrades to
        # a plain stability threshold.
        return 1.0

    def backward_errors(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-column η of solution block *x* against right-hand sides *b*."""
        return backward_error(self.op, x, b)

    def check(
        self, x: np.ndarray, b: np.ndarray, keep_errors: bool = False
    ) -> ResidualReport:
        """Check a solved block; never raises — see ``raise_if_failed``."""
        errors = self.backward_errors(x, b)
        worst = float(errors.max()) if errors.size else 0.0
        return ResidualReport(
            passed=bool(worst <= self.tol),
            worst=worst,
            tol=self.tol,
            cols_checked=int(errors.size),
            kappa=self.kappa,
            errors=errors if keep_errors else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidualChecker(n={self.op.n}, dtype={self.dtype}, "
            f"kappa={self.kappa:.3e}, tol={self.tol:.3e})"
        )
