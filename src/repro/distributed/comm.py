"""Simulated communicator and network-cost model.

A :class:`SimulatedComm` owns ``size`` per-rank mailboxes and executes rank
bodies sequentially; sends copy arrays into mailboxes, receives pop them.
Every transferred byte is tallied so a :class:`NetworkModel` (the classic
``latency + bytes / bandwidth`` alpha-beta model) can convert a run's
traffic into an estimated communication time on a real interconnect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.exceptions import ShapeError


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta interconnect model: ``t(msg) = latency + bytes/bandwidth``.

    Defaults approximate a Slingshot/InfiniBand-class HPC fabric
    (~2 µs latency, ~25 GB/s per-NIC bandwidth).
    """

    latency_s: float = 2e-6
    bandwidth_gbs: float = 25.0

    def message_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def alltoall_time(self, ranks: int, total_bytes: int) -> float:
        """Pairwise-exchange all-to-all: ``ranks - 1`` rounds, each moving
        ``total_bytes / ranks²`` per pair, per-rank serialized."""
        if ranks <= 1:
            return 0.0
        per_pair = total_bytes / ranks / ranks
        return (ranks - 1) * self.message_time(per_pair)


class SimulatedComm:
    """An in-process, sequential-rank communicator with byte accounting."""

    def __init__(self, size: int):
        if size < 1:
            raise ShapeError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self._mailboxes: Dict[Tuple[int, int, int], deque] = {}
        #: Total bytes sent (all ranks, all messages).
        self.bytes_sent = 0
        #: Number of point-to-point messages.
        self.messages = 0

    def _box(self, src: int, dst: int, tag: int) -> deque:
        return self._mailboxes.setdefault((src, dst, tag), deque())

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ShapeError(f"rank {rank} out of range [0, {self.size})")

    # -- point to point ----------------------------------------------------
    def send(self, src: int, dst: int, array: np.ndarray, tag: int = 0) -> None:
        """Copy *array* into the (src → dst, tag) mailbox."""
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.array(array, copy=True)
        self.bytes_sent += payload.nbytes
        self.messages += 1
        self._box(src, dst, tag).append(payload)

    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        """Pop the oldest message from the (src → dst, tag) mailbox."""
        box = self._box(src, dst, tag)
        if not box:
            raise ShapeError(
                f"no message from rank {src} to rank {dst} with tag {tag}"
            )
        return box.popleft()

    # -- collectives ---------------------------------------------------------
    def alltoall(self, chunks_per_rank: List[List[np.ndarray]]) -> List[List[np.ndarray]]:
        """Exchange ``chunks_per_rank[src][dst]`` → ``out[dst][src]``.

        The diagonal (src == dst) is a local copy and is not counted as
        network traffic, matching MPI implementations' self-sends.
        """
        if len(chunks_per_rank) != self.size or any(
            len(row) != self.size for row in chunks_per_rank
        ):
            raise ShapeError("alltoall needs a size x size matrix of chunks")
        out: List[List[np.ndarray]] = [
            [None] * self.size for _ in range(self.size)
        ]
        for src in range(self.size):
            for dst in range(self.size):
                payload = np.array(chunks_per_rank[src][dst], copy=True)
                if src != dst:
                    self.bytes_sent += payload.nbytes
                    self.messages += 1
                out[dst][src] = payload
        return out

    def run_ranks(self, body: Callable[[int], object]) -> List[object]:
        """Execute ``body(rank)`` for every rank (sequentially) and collect
        the return values — the SPMD driver."""
        return [body(rank) for rank in range(self.size)]

    def reset_counters(self) -> None:
        self.bytes_sent = 0
        self.messages = 0
