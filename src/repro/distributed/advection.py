"""Distributed 1-D batched advection.

Two regimes (see the subpackage docstring):

* ``decompose="batch"`` — each rank owns a slice of the velocities and
  advects it independently (zero communication; the paper's kernels'
  native regime);
* ``decompose="line"`` — each rank owns a slice of the *x* line; every
  step redistributes to batch-decomposed layout (all-to-all), runs the
  local solve + interpolation, and redistributes back.

Either way the numerical result is identical to the single-rank
:class:`~repro.advection.BatchedAdvection1D`, which the tests assert; the
interesting output is the communication accounting and the network-model
time estimate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.advection.semilag import BatchedAdvection1D
from repro.core.builder.builder import SplineBuilder
from repro.distributed.comm import NetworkModel, SimulatedComm
from repro.distributed.decompose import Decomposition, redistribute_alltoall
from repro.exceptions import ShapeError


class DistributedAdvection1D:
    """Semi-Lagrangian advection over a simulated rank set.

    Parameters
    ----------
    builder:
        Spline builder for the **full** x grid (every rank builds the same
        factorization at setup, as GYSELA replicates the small matrix).
    velocities, dt:
        As in :class:`~repro.advection.BatchedAdvection1D`.
    ranks:
        Number of simulated ranks.
    decompose:
        ``"batch"`` or ``"line"``.
    network:
        Interconnect model used for the communication-time estimate.
    """

    def __init__(
        self,
        builder: SplineBuilder,
        velocities: np.ndarray,
        dt: float,
        ranks: int = 4,
        decompose: str = "batch",
        network: Optional[NetworkModel] = None,
    ):
        if decompose not in ("batch", "line"):
            raise ShapeError(
                f"decompose must be 'batch' or 'line', got {decompose!r}"
            )
        self.decompose = decompose
        self.comm = SimulatedComm(ranks)
        self.network = network or NetworkModel()
        self.builder = builder
        self.velocities = np.asarray(velocities, dtype=np.float64)
        self.dt = float(dt)
        self.nx = builder.n
        self.nv = self.velocities.size
        self.v_decomp = Decomposition(self.nv, ranks)
        self.x_decomp = Decomposition(self.nx, ranks)
        # Per-rank advection engines over the rank's velocity slice.
        self._engines: List[BatchedAdvection1D] = []
        for r in range(ranks):
            lo, hi = self.v_decomp.bounds(r)
            self._engines.append(
                BatchedAdvection1D(builder, self.velocities[lo:hi], dt)
            )

    # -- stepping ------------------------------------------------------------
    def step(self, f: np.ndarray) -> np.ndarray:
        """Advance the *global* field ``f[v, x]`` one step through the
        decomposed pipeline; returns the gathered global result."""
        if f.shape != (self.nv, self.nx):
            raise ShapeError(
                f"field must have shape ({self.nv}, {self.nx}), got {f.shape}"
            )
        if self.decompose == "batch":
            blocks = self.v_decomp.split(f, axis=0)
            out = self.comm.run_ranks(
                lambda r: self._engines[r].step(np.ascontiguousarray(blocks[r]))
            )
            return np.concatenate(out, axis=0)
        # Line decomposition: ranks own x slices -> redistribute to batch
        # blocks, advect locally, redistribute back.
        x_blocks = self.x_decomp.split(f, axis=1)  # (nv, nx_r) per rank
        # Row-distribute over x means our blocks are column blocks of f;
        # express as row blocks of f^T for the generic redistribution.
        ft_blocks = [np.ascontiguousarray(b.T) for b in x_blocks]  # (nx_r, nv)
        v_blocks_t = redistribute_alltoall(
            self.comm, ft_blocks, self.x_decomp, self.v_decomp
        )  # (nx, nv_r) per rank
        stepped = self.comm.run_ranks(
            lambda r: np.ascontiguousarray(
                self._engines[r].step(np.ascontiguousarray(v_blocks_t[r].T)).T
            )
        )  # (nx, nv_r)
        back = redistribute_alltoall(
            self.comm, [np.ascontiguousarray(s.T) for s in stepped],
            self.v_decomp, self.x_decomp,
        )  # (nv, nx_r) per rank
        return np.concatenate(back, axis=1)

    def run(self, f: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            f = self.step(f)
        return f

    # -- accounting ------------------------------------------------------------
    @property
    def bytes_communicated(self) -> int:
        return self.comm.bytes_sent

    def estimated_comm_seconds(self, steps: int = 1) -> float:
        """Network-model estimate for *steps* steps of this decomposition."""
        if self.decompose == "batch":
            return 0.0
        per_step = 2 * self.nx * self.nv * 8  # two all-to-all redistributions
        return steps * 2 * self.network.alltoall_time(self.comm.size, per_step // 2)

    def compute_seconds(self) -> float:
        """Accumulated local compute time across rank engines."""
        return sum(e.result.seconds_total for e in self._engines)
