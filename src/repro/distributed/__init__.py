"""Simulated distributed-memory decomposition — the exa-scale context.

GYSELA's 5-D distribution function is MPI-decomposed; the paper's batched
spline problem is the *per-node* workload ("assuming we have 10³ grid
points in each dimension and do not apply MPI decomposition, the number of
batches can be 10¹²", §II-B).  Real MPI is unavailable here (no mpi4py in
the environment), so this subpackage provides a **simulated** communicator:
ranks execute sequentially in-process, every exchanged byte is counted, and
a latency/bandwidth network model turns the counts into communication-time
estimates for scaling studies.

Two decomposition regimes for the 1-D batched advection:

* **batch-decomposed** — the advected dimension is local to every rank;
  the solve is embarrassingly parallel (zero communication), exactly the
  regime the paper's kernels assume;
* **line-decomposed** — the advected dimension itself is split across
  ranks; the spline solve then needs an all-to-all *redistribution* into
  batch-decomposed layout and back (the classic GYSELA transpose), whose
  cost the network model quantifies.
"""

from repro.distributed.comm import NetworkModel, SimulatedComm
from repro.distributed.decompose import Decomposition, redistribute_alltoall
from repro.distributed.advection import DistributedAdvection1D

__all__ = [
    "SimulatedComm",
    "NetworkModel",
    "Decomposition",
    "redistribute_alltoall",
    "DistributedAdvection1D",
]
