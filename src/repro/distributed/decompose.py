"""1-D block decompositions and the all-to-all redistribution.

:func:`redistribute_alltoall` converts a field distributed over one axis
into the same field distributed over the other axis — the transpose GYSELA
performs between advection directions when the dimension of interest is
not rank-local.  Each rank slices its block into per-destination chunks,
the communicator exchanges them, and every rank concatenates what it
received.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.distributed.comm import SimulatedComm
from repro.exceptions import ShapeError


@dataclass(frozen=True)
class Decomposition:
    """A contiguous block decomposition of ``extent`` items over ``ranks``."""

    extent: int
    ranks: int

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ShapeError(f"ranks must be >= 1, got {self.ranks}")
        if self.extent < 1:
            raise ShapeError(f"extent must be >= 1, got {self.extent}")

    def bounds(self, rank: int) -> tuple:
        """``(begin, end)`` of *rank*'s block (remainder spread over the
        first ranks, the standard balanced block distribution).

        With more ranks than items the trailing ranks get well-formed
        zero-width blocks ``(extent, extent)`` — an elastic fleet wider
        than a narrow batch issues empty shards rather than crashing;
        executors skip dispatching them.
        """
        base, rem = divmod(self.extent, self.ranks)
        begin = rank * base + min(rank, rem)
        return begin, begin + base + (1 if rank < rem else 0)

    def local_size(self, rank: int) -> int:
        b, e = self.bounds(rank)
        return e - b

    def split(self, array: np.ndarray, axis: int = 0) -> List[np.ndarray]:
        """Slice *array* into per-rank blocks along *axis*."""
        if array.shape[axis] != self.extent:
            raise ShapeError(
                f"axis {axis} has extent {array.shape[axis]}, "
                f"expected {self.extent}"
            )
        return [
            np.take(array, np.arange(*self.bounds(r)), axis=axis)
            for r in range(self.ranks)
        ]


def redistribute_alltoall(
    comm: SimulatedComm,
    local_blocks: List[np.ndarray],
    row_decomp: Decomposition,
    col_decomp: Decomposition,
) -> List[np.ndarray]:
    """Switch a 2-D field from row-distributed to column-distributed.

    ``local_blocks[r]`` is rank *r*'s row block, shape
    ``(row_decomp.local_size(r), ncols)``.  Returns rank-indexed column
    blocks of shape ``(nrows, col_decomp.local_size(r))``.
    """
    if len(local_blocks) != comm.size:
        raise ShapeError("one block per rank required")
    chunks = [col_decomp.split(block, axis=1) for block in local_blocks]
    exchanged = comm.alltoall(chunks)
    # Rank r now holds, from every source, the rows of its column block.
    return [np.concatenate(exchanged[r], axis=0) for r in range(comm.size)]
