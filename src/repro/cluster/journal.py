"""The coordinator's write-ahead shard journal and result spool.

Crash-survivable coordinator state is two on-disk artifacts sharing
:mod:`repro.runtime.durable`'s discipline (atomic tmp+fsync+rename
writes, blake2b-checksummed containers, corrupt entries quarantined —
never reinterpreted):

* **The WAL** (``shards.wal``): an append-only log of shard lifecycle
  transitions — ``epoch`` (a coordinator era began), ``issue`` (a shard
  was assigned a task id and is about to be sent), ``requeue`` (an
  orphaned shard got a fresh delivery), ``ack`` (a shard completed and
  its result landed in the spool), ``fail`` (a shard failed
  permanently).  Every record is framed ``uint32 length | canonical
  JSON | blake2b-16 digest`` and fsynced before the action it describes
  becomes visible to any worker, so a replayed journal's task-id floor
  always exceeds any id a worker ever saw.  A torn or corrupt tail
  (the crash happened mid-append) is *quarantined*: the WAL is
  truncated at the last good record, the tail bytes are preserved in a
  ``.quarantine`` sidecar for forensics, and the shards whose
  transitions were lost simply re-issue — a re-solve costs time, never
  correctness.

* **The result spool** (``result-<shard>.rjrs``): the solved bytes of
  every acknowledged shard, one checksummed container per shard,
  written atomically.  A standby that takes over serves re-submitted
  completed shards straight from the spool — zero recompute, bitwise
  the bytes the primary acknowledged.  A corrupt spool entry raises
  :class:`JournalError` on load; the caller evicts it and the shard
  re-issues.

:func:`replay_journal` folds the WAL into the state a standby needs:
the last epoch, the task-id floor, which shards are acknowledged (and
where their results live), and which were in flight when the primary
died.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ReproError
from repro.runtime.durable import atomic_write_bytes
from repro.runtime.telemetry import Telemetry

__all__ = ["JournalError", "ShardJournal", "JournalReplay", "replay_journal"]

#: WAL container format; bumped if the record framing ever changes
JOURNAL_FORMAT_VERSION = 1

_WAL_NAME = "shards.wal"
_WAL_MAGIC = b"RJNL"
_SPOOL_MAGIC = b"RJRS"
_DIGEST_SIZE = 16
_LEN = struct.Struct("<I")

#: per-record JSON size cap — a corrupt length prefix must not allocate
#: gigabytes before the digest check can reject it
_MAX_RECORD = 1 << 20


class JournalError(ReproError, RuntimeError):
    """A journal artifact (WAL or spool entry) is unusable.

    Raised on corruption, truncation, checksum mismatch, or a stale
    format version.  Callers treat the affected shard as never-acked
    and re-issue it; corruption is never allowed to become a wrong
    answer.
    """


def _canonical(data: dict) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()


class ShardJournal:
    """Append-only WAL plus result spool for one coordinator era.

    Thread-safe: the coordinator's issue path, its loss handlers, and
    the host's ack callbacks all append concurrently.  Every
    :meth:`append` is flushed and fsynced before returning — the write
    *ahead* in write-ahead logging.
    """

    def __init__(
        self, directory: str, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.directory = str(directory)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._path = os.path.join(self.directory, _WAL_NAME)
        fresh = not os.path.exists(self._path)
        self._fh = open(self._path, "ab")
        if fresh or os.path.getsize(self._path) == 0:
            self._fh.write(_WAL_MAGIC + bytes([JOURNAL_FORMAT_VERSION]))
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # -- the WAL ---------------------------------------------------------

    def append(self, kind: str, **fields) -> None:
        """Fsync one ``kind`` record (plus *fields*) to the WAL."""
        record = dict(fields)
        record["kind"] = str(kind)
        body = _canonical(record)
        if len(body) > _MAX_RECORD:
            raise JournalError(
                f"journal record of {len(body)} bytes exceeds the "
                f"{_MAX_RECORD}-byte cap"
            )
        frame = _LEN.pack(len(body)) + body + _digest(body)
        with self._lock:
            if self._fh.closed:
                raise JournalError("journal is closed")
            self._fh.write(frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.telemetry.incr("journal.records")

    # -- the result spool ------------------------------------------------

    def spool_name(self, shard_id: int) -> str:
        return f"result-{int(shard_id)}.rjrs"

    def spool_result(self, shard_id: int, solved: np.ndarray) -> str:
        """Persist one acknowledged shard's solved bytes; returns the
        spool entry's basename (what the ``ack`` WAL record should
        carry)."""
        solved = np.ascontiguousarray(solved)
        payload = solved.tobytes()
        header = _canonical(
            {
                "format_version": JOURNAL_FORMAT_VERSION,
                "shard": int(shard_id),
                "shape": list(solved.shape),
                "dtype": solved.dtype.str,
                "checksum": hashlib.blake2b(
                    payload, digest_size=_DIGEST_SIZE
                ).hexdigest(),
            }
        )
        blob = (
            _SPOOL_MAGIC
            + bytes([JOURNAL_FORMAT_VERSION])
            + _LEN.pack(len(header))
            + header
            + payload
        )
        name = self.spool_name(shard_id)
        atomic_write_bytes(os.path.join(self.directory, name), blob)
        self.telemetry.incr("journal.results_spooled")
        return name

    def load_result(self, name: str) -> np.ndarray:
        """One spooled result, verified; any defect is a
        :class:`JournalError` (the caller evicts and re-issues)."""
        path = os.path.join(self.directory, os.path.basename(name))
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise JournalError(f"unreadable spool entry {name}: {exc}") from exc
        try:
            if blob[:4] != _SPOOL_MAGIC:
                raise JournalError(f"spool entry {name} has a foreign magic")
            if blob[4] != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"spool entry {name} has stale format {blob[4]}"
                )
            (hlen,) = _LEN.unpack(blob[5:9])
            header = json.loads(blob[9 : 9 + hlen].decode("utf-8"))
            payload = blob[9 + hlen :]
            if (
                hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()
                != header["checksum"]
            ):
                raise JournalError(f"spool entry {name} fails its checksum")
            arr = np.frombuffer(payload, dtype=np.dtype(header["dtype"]))
            return arr.reshape(header["shape"]).copy()
        except JournalError:
            raise
        except Exception as exc:  # noqa: BLE001 - any defect is corruption
            raise JournalError(f"corrupt spool entry {name}: {exc}") from exc

    def evict_result(self, name: str) -> None:
        """Drop a corrupt spool entry so its shard re-issues cleanly."""
        try:
            os.unlink(os.path.join(self.directory, os.path.basename(name)))
        except OSError:
            pass
        self.telemetry.incr("journal.spool_corrupt_evicted")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


@dataclass
class JournalReplay:
    """What a WAL replay reconstructs for the taking-over coordinator."""

    #: every decoded record, in append order
    records: List[dict] = field(default_factory=list)
    #: the last ``epoch`` record's value (−1: no era was ever recorded)
    epoch: int = -1
    #: one past the largest task id any worker was ever sent
    next_task: int = 0
    #: acknowledged shards: shard id → result spool basename
    acked: Dict[int, str] = field(default_factory=dict)
    #: permanently failed shards: shard id → (error type, message)
    failed: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    #: shards issued but never acked/failed — they must re-issue
    unacked: Set[int] = field(default_factory=set)
    #: True when a torn/corrupt tail was truncated and quarantined
    quarantined: bool = False


def replay_journal(
    directory: str, telemetry: Optional[Telemetry] = None
) -> JournalReplay:
    """Fold ``shards.wal`` under *directory* into a :class:`JournalReplay`.

    Tolerant by construction: a missing WAL is an empty replay; a torn
    or checksum-failing tail is truncated in place (the bad bytes are
    preserved in a ``shards.wal.quarantine.<offset>`` sidecar and
    counted as ``journal.tail_quarantined``) and every record before it
    is honoured.  A WAL whose *header* is foreign is quarantined whole —
    the replay is empty and every shard re-issues.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    replay = JournalReplay()
    path = os.path.join(str(directory), _WAL_NAME)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return replay
    head = len(_WAL_MAGIC) + 1
    if blob[: len(_WAL_MAGIC)] != _WAL_MAGIC or (
        len(blob) > len(_WAL_MAGIC) and blob[len(_WAL_MAGIC)] != JOURNAL_FORMAT_VERSION
    ):
        _quarantine(path, blob, 0, telemetry)
        replay.quarantined = True
        return replay
    offset = min(head, len(blob))
    while offset < len(blob):
        start = offset
        if offset + _LEN.size > len(blob):
            break  # torn length prefix
        (blen,) = _LEN.unpack(blob[offset : offset + _LEN.size])
        if blen > _MAX_RECORD:
            break  # corrupt length — treat as a torn tail
        offset += _LEN.size
        if offset + blen + _DIGEST_SIZE > len(blob):
            offset = start
            break  # torn body/digest
        body = blob[offset : offset + blen]
        offset += blen
        digest = blob[offset : offset + _DIGEST_SIZE]
        offset += _DIGEST_SIZE
        if _digest(body) != digest:
            offset = start
            break  # bit rot mid-log: everything from here is suspect
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            offset = start
            break
        replay.records.append(record)
        _fold(replay, record)
    if offset < len(blob):
        _quarantine(path, blob, offset, telemetry)
        replay.quarantined = True
    return replay


def _fold(replay: JournalReplay, record: dict) -> None:
    kind = record.get("kind")
    if kind == "epoch":
        replay.epoch = max(replay.epoch, int(record.get("epoch", 0)))
    elif kind in ("issue", "requeue", "speculate"):
        task = record.get("task")
        if task is not None:
            replay.next_task = max(replay.next_task, int(task) + 1)
        shard = record.get("shard")
        if shard is not None and int(shard) not in replay.acked:
            replay.unacked.add(int(shard))
    elif kind == "ack":
        shard = int(record.get("shard", -1))
        replay.acked[shard] = str(record.get("result", ""))
        replay.unacked.discard(shard)
        replay.failed.pop(shard, None)
    elif kind == "fail":
        shard = int(record.get("shard", -1))
        replay.failed[shard] = (
            str(record.get("error", "")),
            str(record.get("message", "")),
        )
        replay.unacked.discard(shard)


def _quarantine(
    path: str, blob: bytes, offset: int, telemetry: Telemetry
) -> None:
    """Truncate the WAL at *offset*, preserving the bad tail bytes."""
    sidecar = f"{path}.quarantine.{offset}"
    try:
        atomic_write_bytes(sidecar, blob[offset:])
    except OSError:  # pragma: no cover - forensics are best-effort
        pass
    try:
        with open(path, "r+b") as fh:
            fh.truncate(offset if offset > 0 else 0)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError as exc:
        raise JournalError(f"cannot truncate torn journal tail: {exc}") from exc
    telemetry.incr("journal.tail_quarantined")
    telemetry.event("journal.quarantine", path=sidecar, offset=offset)
