"""The cluster coordinator — registration, leases, re-issue, routing.

The multi-host generalization of the parent side of
:class:`~repro.runtime.sharded.ShardedExecutor`: where the single-host
pool watches private result pipes (a dead worker is EOF on its own
pipe), the coordinator watches **heartbeat leases** — a worker whose
lease lapses without a heartbeat is declared lost, whether the cause is
a dead process (SIGKILL also surfaces early, as EOF on its TCP
connection) or a network partition (the connection may still be up; the
node is unreachable all the same).

Loss handling generalizes the reissuable ``_PendingTask`` bookkeeping:

* every in-flight shard is a :class:`_PendingShard` carrying the raw
  payload it was sent with, so a lost worker's shards **requeue onto
  survivors verbatim** — identical bytes through identical kernels is
  what keeps the result bitwise equal to a single-host solve;
* a requeued shard gets a **fresh task id** and the old id is forgotten,
  so a partitioned (not dead) node's late acknowledgement finds no
  pending entry and is **dropped as stale** (counted, never applied) —
  the shard is applied exactly once, by whichever delivery the
  coordinator still believes in;
* with no survivor the shard **parks** until a worker registers (the
  elastic controller or the executor's respawn brings one), failing
  only when its delivery-attempt budget is spent.

Three crash-recovery mechanisms ride on the same bookkeeping:

* **Epoch fencing** — every WELCOME and SHARD carries the coordinator's
  *epoch* (bumped by a standby takeover, :mod:`repro.cluster.ha`) and
  every ack echoes it; an ack whose epoch is not ours is dropped before
  it can touch the pending map (``cluster.stale_epoch_acks_dropped``).
  Belt and braces with fresh-task-id dropping: a promoted coordinator's
  task ids start where the journal says the primary stopped, but a
  worker finishing a shard from the previous era must be fenced even if
  an id were ever reused.
* **Write-ahead journaling** — when a :class:`~repro.cluster.journal.ShardJournal`
  is attached, every issue and requeue is fsynced *before* the shard
  frame is sent, so a replayed journal's task floor exceeds any id a
  worker ever saw.
* **Speculative execution** — a shard whose age exceeds a configured
  (or p99-derived) threshold is duplicated onto another live worker;
  the pending map holds both task ids against one shard, the first ack
  resolves it (popping every sibling id), and the loser's ack drops as
  stale (``cluster.speculative_issued`` / ``speculative_wins``).

The wire is :mod:`repro.cluster.wire` — the service framing with raw
C-order shard bytes, so no right-hand-side data is ever pickled.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.wire import (
    ClusterFrame,
    decode_heartbeat,
    decode_json,
    decode_shard_err,
    decode_shard_ok,
    decode_snapshot,
    encode_shard,
    encode_snapshot_req,
    encode_stop,
    encode_welcome,
)
from repro.runtime.sharded import WorkerError
from repro.runtime.telemetry import Telemetry
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["Coordinator"]

#: completed-shard latency samples retained for the p99-derived
#: speculative threshold
_LATENCY_WINDOW = 512


class _PendingShard:
    """One in-flight shard and everything needed to reissue it.

    ``copies`` maps every live task id for this shard to the worker it
    was sent to — normally one entry, two while a speculative duplicate
    is in flight.  ``spec_ids`` remembers which of those ids were
    speculative, so a win can be attributed.
    """

    __slots__ = (
        "future", "key", "payload", "col0", "col1", "attempt",
        "copies", "spec_ids", "issued_at", "shard_id",
    )

    def __init__(self, key, payload, col0, col1, shard_id=None) -> None:
        self.future: Future = Future()
        self.key = key
        self.payload = payload
        self.col0 = col0
        self.col1 = col1
        self.attempt = 0
        self.copies: Dict[int, int] = {}  # task id -> worker id
        self.spec_ids: set = set()
        self.issued_at = time.monotonic()
        self.shard_id = shard_id

    @property
    def worker_id(self) -> Optional[int]:
        """The most recent delivery's worker (error-reporting aid)."""
        return next(reversed(self.copies.values()), None) if self.copies else None


class _WorkerConn:
    """Coordinator-side state of one registered worker."""

    __slots__ = (
        "worker_id", "sock", "send_lock", "last_beat", "live", "retired",
        "pid", "tag", "reader",
    )

    def __init__(self, worker_id, sock, pid, tag) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.last_beat = time.monotonic()
        self.live = True
        self.retired = False
        self.pid = pid
        self.tag = tag
        self.reader: Optional[threading.Thread] = None


class Coordinator:
    """Accept workers, lease them, route shards, survive their loss.

    Parameters
    ----------
    config:
        The fleet's :class:`~repro.cluster.config.ClusterConfig`.
    telemetry:
        Coordinator-side :class:`Telemetry`; worker-side telemetry lives
        on the nodes and merges on demand (:meth:`request_snapshots`).
    faults:
        Optional :class:`~repro.runtime.resilience.faults.FaultPlan`; its
        JSON serialization ships to every worker in WELCOME, so the
        ``cluster.partition`` / ``cluster.node_kill`` /
        ``cluster.shard_slow`` sites fire on the nodes with fresh visit
        counters — exactly how the single-host pool ships plans into
        worker processes.
    live_wait_timeout:
        Seconds :meth:`submit` waits for *any* live worker before
        failing with :class:`WorkerError`.
    plan_store_dir:
        Durable plan-store directory shipped in WELCOME so remote nodes
        warm-start from (and write back to) the same store.
    epoch:
        This coordinator's era, carried in WELCOME and every SHARD and
        checked against every ack; a standby takeover constructs its
        coordinator with the journal's epoch + 1.
    journal:
        Optional :class:`~repro.cluster.journal.ShardJournal`; issue and
        requeue transitions are fsynced to it before the corresponding
        frame is sent.
    next_task:
        Task-id floor (a replayed journal's ``next_task``), so no id a
        worker ever saw is reused by a promoted coordinator.
    on_worker_lost:
        Callback ``(worker_id, reason)`` fired after a loss is handled
        (shards requeued) — the executor uses it to respawn owned nodes.
    on_worker_registered:
        Callback ``(worker_id, pid)`` after a registration completes —
        the executor uses it to cancel a rejoin grace timer.
    """

    def __init__(
        self,
        config: ClusterConfig,
        telemetry: Optional[Telemetry] = None,
        faults=None,
        live_wait_timeout: float = 30.0,
        plan_store_dir: Optional[str] = None,
        epoch: int = 0,
        journal=None,
        next_task: int = 0,
        on_worker_lost: Optional[Callable[[int, str], None]] = None,
        on_worker_registered: Optional[Callable[[int, Optional[int]], None]] = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.faults = faults
        self._fault_json = faults.to_json() if faults is not None else None
        self.live_wait_timeout = float(live_wait_timeout)
        self.plan_store_dir = plan_store_dir
        self.epoch = int(epoch)
        self.journal = journal
        self._on_lost = on_worker_lost
        self._on_registered = on_worker_registered
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._workers: Dict[int, _WorkerConn] = {}
        self._pending: Dict[int, _PendingShard] = {}
        self._parked: List[_PendingShard] = []
        self._snapshot_waiters: Dict[int, Future] = {}
        self._final_snapshots: List[dict] = []
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._next_worker = 0
        self._next_task = int(next_task)
        self._next_req = 0
        self._rr = 0
        self._closed = False
        self._listener: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self, listener: Optional[socket.socket] = None) -> None:
        """Bind, listen, and start the accept + lease-monitor threads.

        A pre-bound, already-listening *listener* may be handed in — a
        standby host binds its worker port at boot (so the workers'
        failover address list is valid from the start) but only
        constructs and starts its coordinator on activation.
        """
        if listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(64)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    @property
    def address(self):
        """``(host, port)`` workers dial; valid after :meth:`start`."""
        if self._port is None:
            raise RuntimeError("coordinator is not started")
        return (self.config.host, self._port)

    def stop(self) -> None:
        """STOP every worker (gathering farewell snapshots), then close."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            parked = self._parked
            self._parked = []
            self._cv.notify_all()
        for shard in parked:
            shard.future.set_exception(
                WorkerError("cluster coordinator is shut down")
            )
        for worker in workers:
            try:
                with worker.send_lock:
                    write_frame(worker.sock, encode_stop("shutdown"))
            except OSError:
                pass
        # Give each reader a moment to collect the farewell snapshot.
        deadline = time.monotonic() + self.config.drain_timeout
        for worker in workers:
            if worker.reader is not None:
                worker.reader.join(timeout=max(0.0, deadline - time.monotonic()))
            try:
                worker.sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    # -- registration ----------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            if self._closed:
                sock.close()
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._register, args=(sock,),
                name="repro-cluster-register", daemon=True,
            ).start()

    def _register(self, sock: socket.socket) -> None:
        """Handle one new connection's REGISTER → WELCOME handshake."""
        try:
            ftype, _, payload = read_frame(sock, self.config.max_payload)
            if ftype != ClusterFrame.REGISTER:
                raise ProtocolError(
                    f"expected REGISTER as the first frame, got type {ftype}"
                )
            meta = decode_json(payload)
        except (ProtocolError, ConnectionError, OSError):
            sock.close()
            return
        with self._lock:
            if self._closed:
                sock.close()
                return
            worker_id = self._next_worker
            self._next_worker += 1
            worker = _WorkerConn(
                worker_id, sock, meta.get("pid"), meta.get("tag", "")
            )
            self._workers[worker_id] = worker
        try:
            with worker.send_lock:
                write_frame(
                    sock,
                    encode_welcome(
                        worker_id,
                        self.config.heartbeat_interval,
                        self.config.lease_timeout,
                        fault_json=self._fault_json,
                        plan_store_dir=self.plan_store_dir,
                        epoch=self.epoch,
                    ),
                )
        except OSError:
            self._lost(worker, "welcome send failed")
            return
        worker.reader = threading.Thread(
            target=self._reader_loop, args=(worker,),
            name=f"repro-cluster-reader-{worker_id}", daemon=True,
        )
        worker.reader.start()
        self.telemetry.incr("cluster.workers_registered")
        self.telemetry.event(
            "cluster.register", worker=worker_id, pid=worker.pid, tag=worker.tag
        )
        with self._lock:
            parked = self._parked
            self._parked = []
            self._cv.notify_all()
        for shard in parked:
            self._reissue(shard)
        if self._on_registered is not None:
            self._on_registered(worker_id, worker.pid)

    def await_workers(self, count: int, timeout: float) -> bool:
        """Block until *count* workers are live (or *timeout*); boolean."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while self._live_count_locked() < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(timeout=min(0.05, remaining))
        return True

    # -- the data plane --------------------------------------------------

    def _reader_loop(self, worker: _WorkerConn) -> None:
        """Drain one worker's frames until EOF.

        Keeps running after the worker's lease lapses: a partitioned
        node's connection may outlive its lease, and draining it here is
        what makes late-ack dropping deterministic — stale task ids are
        counted and discarded instead of racing a socket teardown.
        """
        try:
            while True:
                ftype, _, payload = read_frame(
                    worker.sock, self.config.max_payload
                )
                if ftype == ClusterFrame.HEARTBEAT:
                    decode_heartbeat(payload)  # validate; identity is the conn
                    with self._lock:
                        worker.last_beat = time.monotonic()
                elif ftype == ClusterFrame.SHARD_OK:
                    task_id, solved, epoch = decode_shard_ok(payload)
                    self._resolve(task_id, solved, None, worker, epoch)
                elif ftype == ClusterFrame.SHARD_ERR:
                    task_id, error, message, epoch = decode_shard_err(payload)
                    self._resolve(
                        task_id,
                        None,
                        WorkerError(
                            f"{error}: {message}", worker_id=worker.worker_id
                        ),
                        worker,
                        epoch,
                    )
                elif ftype == ClusterFrame.SNAPSHOT:
                    req, snapshot = decode_snapshot(payload)
                    if req < 0:
                        with self._lock:
                            self._final_snapshots.append(snapshot)
                        return  # the farewell: worker is exiting
                    with self._lock:
                        fut = self._snapshot_waiters.pop(req, None)
                    if fut is not None:
                        fut.set_result(snapshot)
                else:
                    raise ProtocolError(
                        f"unexpected frame type {ftype} from worker "
                        f"{worker.worker_id}"
                    )
        except (ConnectionError, OSError, ProtocolError) as exc:
            self._lost(worker, f"connection lost: {exc}")

    def _resolve(
        self,
        task_id: int,
        solved: Optional[np.ndarray],
        error: Optional[BaseException],
        worker: _WorkerConn,
        epoch: int = 0,
    ) -> None:
        """Apply one acknowledgement — or drop it as stale, exactly once.

        Two fences guard the pending map.  An ack carrying a foreign
        *epoch* was solved for a previous coordinator era (the worker
        re-registered across a takeover mid-solve) and is dropped before
        it can touch anything — its task id may legitimately belong to a
        different shard in this era.  A task id absent from the pending
        map was re-issued, speculatively outraced, or already resolved:
        the ack is counted as dropped and its payload discarded, which
        is the mechanism behind the zero-double-solve guarantee.
        """
        if epoch != self.epoch:
            self.telemetry.incr("cluster.stale_epoch_acks_dropped")
            self.telemetry.event(
                "cluster.stale_epoch_ack",
                worker=worker.worker_id, task=task_id,
                ack_epoch=epoch, epoch=self.epoch,
            )
            return
        with self._lock:
            shard = self._pending.pop(task_id, None)
            if shard is not None:
                # First ack wins: forget every sibling delivery (the
                # requeued original or the speculative duplicate) so the
                # loser's ack drops as stale.
                for sibling in list(shard.copies):
                    if sibling != task_id:
                        self._pending.pop(sibling, None)
                shard.copies.clear()
                speculative_win = task_id in shard.spec_ids
        if shard is None:
            self.telemetry.incr("cluster.late_acks_dropped")
            self.telemetry.event(
                "cluster.late_ack", worker=worker.worker_id, task=task_id
            )
            return
        if speculative_win:
            self.telemetry.incr("cluster.speculative_wins")
            self.telemetry.event(
                "cluster.speculative_win",
                worker=worker.worker_id, task=task_id, shard=shard.shard_id,
            )
        if error is not None:
            error.key = shard.key
            error.cols = (shard.col0, shard.col1)
            error.attempt = shard.attempt
            if self.journal is not None and shard.shard_id is not None:
                self.journal.append(
                    "fail", shard=shard.shard_id,
                    error=type(error).__name__, message=str(error),
                )
            shard.future.set_exception(error)
            self.telemetry.incr("cluster.shards_failed")
        else:
            self.telemetry.observe(
                "cluster.shard_seconds", time.monotonic() - shard.issued_at
            )
            self._latencies.append(time.monotonic() - shard.issued_at)
            shard.future.set_result(solved)
            self.telemetry.incr("cluster.shards_completed")

    def submit(
        self, key, payload: np.ndarray, col0: int, col1: int, shard_id=None
    ) -> Future:
        """Route one column shard to a live worker; future → solved array.

        Blocks up to ``live_wait_timeout`` for a live worker (one may be
        respawning); a fleet that cannot heal in that window fails with
        a :class:`WorkerError` naming every worker's lease state.
        *shard_id* tags the shard in journal records (the HA host passes
        the executor-chosen id).
        """
        shard = _PendingShard(key, payload, col0, col1, shard_id=shard_id)
        self.telemetry.incr("cluster.shards_submitted")
        self._issue(shard)
        return shard.future

    def _issue(self, shard: _PendingShard, speculative: bool = False) -> None:
        """Assign *shard* to a live worker (fresh task id) and send it.

        The journal record (when a journal is attached) is fsynced
        *before* the frame is sent — write-ahead, so a replay's task
        floor covers every id a worker could ever have seen.
        """
        deadline = time.monotonic() + self.live_wait_timeout
        with self._cv:
            while True:
                if self._closed:
                    raise WorkerError("cluster coordinator is shut down")
                exclude = set(shard.copies.values()) if speculative else ()
                live = [
                    w for w in self._workers.values()
                    if w.live and w.worker_id not in exclude
                ]
                if live:
                    self._rr += 1
                    worker = live[self._rr % len(live)]
                    task_id = self._next_task
                    self._next_task += 1
                    shard.copies[task_id] = worker.worker_id
                    if speculative:
                        shard.spec_ids.add(task_id)
                    else:
                        shard.attempt += 1
                        shard.issued_at = time.monotonic()
                    self._pending[task_id] = shard
                    break
                if speculative:
                    return  # no second worker to speculate onto: skip
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerError(
                        f"timed out after {self.live_wait_timeout:.1f}s "
                        "waiting for a live cluster worker; "
                        f"worker lease states: {self._lease_states_locked()}",
                        key=shard.key,
                        cols=(shard.col0, shard.col1),
                    )
                self._cv.wait(timeout=min(0.05, remaining))
        if self.journal is not None and shard.shard_id is not None:
            self.journal.append(
                "speculate" if speculative else "issue",
                shard=shard.shard_id, task=task_id,
                worker=worker.worker_id, epoch=self.epoch,
            )
        try:
            frame = encode_shard(
                task_id, shard.key, shard.payload, shard.col0, shard.col1,
                epoch=self.epoch,
            )
            with worker.send_lock:
                write_frame(worker.sock, frame)
            self.telemetry.incr("cluster.shard_sends")
        except OSError as exc:
            # The chosen worker died between selection and send; its
            # loss handler requeues this very shard (it is pending on
            # that worker now), so nothing more is owed here.
            self._lost(worker, f"shard send failed: {exc}")

    def _reissue(self, shard: _PendingShard) -> None:
        """Requeue one orphaned shard, failing it when its budget is spent."""
        if shard.attempt >= self.config.shard_attempts:
            error = WorkerError(
                f"shard exhausted its {self.config.shard_attempts} "
                "delivery attempts across worker losses",
                worker_id=shard.worker_id,
                key=shard.key,
                cols=(shard.col0, shard.col1),
                attempt=shard.attempt,
            )
            if self.journal is not None and shard.shard_id is not None:
                self.journal.append(
                    "fail", shard=shard.shard_id,
                    error="WorkerError", message=str(error),
                )
            shard.future.set_exception(error)
            self.telemetry.incr("cluster.shards_failed")
            return
        self.telemetry.incr("cluster.shards_reissued")
        if self.journal is not None and shard.shard_id is not None:
            self.journal.append(
                "requeue", shard=shard.shard_id,
                attempt=shard.attempt, epoch=self.epoch,
            )
        with self._lock:
            if not self._closed and self._live_count_locked() == 0:
                # No survivor right now: park rather than block the loss
                # handler (a monitor or reader thread).  Registration of
                # the next worker — a respawn or an elastic scale-up —
                # drains the parked shards; the executor fails them via
                # :meth:`fail_parked` when healing is off the table.
                self._parked.append(shard)
                self.telemetry.incr("cluster.shards_parked")
                return
        try:
            self._issue(shard)
        except WorkerError as exc:
            shard.future.set_exception(exc)
            self.telemetry.incr("cluster.shards_failed")

    # -- speculation -----------------------------------------------------

    def _speculative_threshold(self) -> Optional[float]:
        """Age (seconds) past which an in-flight shard is duplicated."""
        if not self.config.speculate:
            return None
        if self.config.speculative_age is not None:
            return self.config.speculative_age
        if len(self._latencies) < self.config.speculative_min_samples:
            return None
        p99 = float(np.percentile(np.asarray(self._latencies), 99.0))
        return self.config.speculative_factor * max(p99, 1e-6)

    def _speculate_sweep(self) -> None:
        """Duplicate stragglers onto other live workers, one copy each."""
        threshold = self._speculative_threshold()
        if threshold is None:
            return
        now = time.monotonic()
        with self._lock:
            stragglers = []
            seen = set()
            for shard in self._pending.values():
                if id(shard) in seen:
                    continue
                seen.add(id(shard))
                if len(shard.copies) != 1:
                    continue  # already speculating (or being torn down)
                if now - shard.issued_at > threshold:
                    stragglers.append(shard)
        for shard in stragglers:
            self._speculate(shard)

    def _speculate(self, shard: _PendingShard) -> None:
        """Issue one speculative duplicate of *shard* (first ack wins)."""
        before = len(shard.copies)
        try:
            self._issue(shard, speculative=True)
        except WorkerError:
            return  # coordinator closing; nothing to do
        if len(shard.copies) > before:
            self.telemetry.incr("cluster.speculative_issued")
            self.telemetry.event(
                "cluster.speculate", shard=shard.shard_id,
                cols=(shard.col0, shard.col1),
            )

    # -- loss detection --------------------------------------------------

    def _monitor_loop(self) -> None:
        """Sweep leases (a worker silent past ``lease_timeout`` is lost)
        and straggling shards (older than the speculative threshold)."""
        tick = min(
            self.config.heartbeat_interval, self.config.lease_timeout / 4.0
        )
        if self.config.speculate and self.config.speculative_age is not None:
            tick = min(tick, self.config.speculative_age / 2.0)
        while not self._closed:
            time.sleep(tick)
            now = time.monotonic()
            with self._lock:
                lapsed = [
                    w for w in self._workers.values()
                    if w.live and now - w.last_beat > self.config.lease_timeout
                ]
            for worker in lapsed:
                self._lost(
                    worker,
                    f"lease lapsed ({self.config.lease_timeout}s without "
                    "a heartbeat)",
                )
            self._speculate_sweep()

    def _lost(self, worker: _WorkerConn, reason: str) -> None:
        """Declare *worker* lost: requeue its shards under fresh ids.

        Idempotent — the lease monitor, a reader's EOF, and a failed
        send may all report the same loss.  The connection is left to
        its reader thread (still draining late acks from a partitioned
        node); a best-effort STOP tells a live-but-partitioned process
        what happened — reason ``lost`` invites it to re-dial and
        re-REGISTER under a fresh id (the healed-partition rejoin),
        ``retire`` tells it to exit for good.

        A shard whose only copy was on the lost worker requeues; a
        shard with a speculative sibling still in flight on a survivor
        keeps that copy and requeues nothing.
        """
        with self._lock:
            if not worker.live:
                return
            worker.live = False
            orphans = []
            for task_id in [
                t for t, s in self._pending.items()
                if s.copies.get(t) == worker.worker_id
            ]:
                # Forgetting the old id is the late-ack guillotine: the
                # lost node's eventual answer finds nothing to apply to.
                shard = self._pending.pop(task_id)
                shard.copies.pop(task_id, None)
                shard.spec_ids.discard(task_id)
                if not shard.copies:
                    orphans.append(shard)
            self._cv.notify_all()
        retired = worker.retired
        if not retired:
            self.telemetry.incr("cluster.workers_lost")
            self.telemetry.event(
                "cluster.worker_lost", worker=worker.worker_id, reason=reason
            )
        try:
            with worker.send_lock:
                write_frame(
                    worker.sock,
                    encode_stop("retire" if retired else "lost"),
                )
        except OSError:
            pass
        for shard in orphans:
            self._reissue(shard)
        if self._on_lost is not None and not retired and not self._closed:
            self._on_lost(worker.worker_id, reason)

    def fail_parked(self, reason: str) -> int:
        """Fail every parked shard — the fleet cannot heal.

        Called by the executor once its respawn budget is spent with no
        survivor to drain onto; returns how many shards were failed.
        """
        with self._lock:
            parked = self._parked
            self._parked = []
        for shard in parked:
            shard.future.set_exception(
                WorkerError(
                    f"no live cluster worker and no healing possible: {reason}",
                    key=shard.key,
                    cols=(shard.col0, shard.col1),
                    attempt=shard.attempt,
                )
            )
            self.telemetry.incr("cluster.shards_failed")
        return len(parked)

    def retire(self, worker_id: int) -> bool:
        """Gracefully shed one worker (elastic scale-down).

        The worker stops receiving new shards immediately; its in-flight
        shards requeue onto the remaining fleet (verbatim payloads, so
        results stay bitwise identical), and the node is told to STOP
        with reason ``retire`` (terminal — no rejoin).  Not counted as
        a loss.  Returns False for an unknown or already-dead worker.
        """
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or not worker.live:
                return False
            worker.retired = True
        self.telemetry.event("cluster.retire", worker=worker_id)
        self._lost(worker, "retired by the elastic controller")
        return True

    # -- introspection ---------------------------------------------------

    def _live_count_locked(self) -> int:
        return sum(1 for w in self._workers.values() if w.live)

    def _lease_states_locked(self) -> Dict[int, str]:
        now = time.monotonic()
        states = {}
        for worker_id, w in self._workers.items():
            if w.live:
                age = now - w.last_beat
                states[worker_id] = f"live (last heartbeat {age:.2f}s ago)"
            else:
                states[worker_id] = "retired" if w.retired else "lost"
        return states

    def live_workers(self) -> List[int]:
        with self._lock:
            return sorted(
                w.worker_id for w in self._workers.values() if w.live
            )

    def live_count(self) -> int:
        with self._lock:
            return self._live_count_locked()

    def worker_pid(self, worker_id: int) -> Optional[int]:
        """The registered OS pid of one worker (for chaos campaigns)."""
        with self._lock:
            worker = self._workers.get(worker_id)
            return None if worker is None else worker.pid

    def worker_census(self) -> Dict[int, Optional[int]]:
        """``{worker_id: pid}`` of every live worker (the FLEET frame)."""
        with self._lock:
            return {
                w.worker_id: w.pid for w in self._workers.values() if w.live
            }

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._parked)

    def backlog(self) -> float:
        """In-flight shards per live worker — the elastic signal."""
        with self._lock:
            live = self._live_count_locked()
            waiting = len(self._pending) + len(self._parked)
        return waiting / max(1, live)

    def request_snapshots(self, timeout: float = 5.0) -> List[dict]:
        """Telemetry snapshots of every live worker, plus the farewell
        snapshots of workers that already exited."""
        requests = []
        with self._lock:
            workers = [w for w in self._workers.values() if w.live]
            for worker in workers:
                req = self._next_req
                self._next_req += 1
                fut: Future = Future()
                self._snapshot_waiters[req] = fut
                requests.append((worker, req, fut))
        snapshots: List[dict] = []
        deadline = time.monotonic() + timeout
        for worker, req, fut in requests:
            try:
                with worker.send_lock:
                    write_frame(worker.sock, encode_snapshot_req(req))
                snapshots.append(
                    fut.result(timeout=max(0.05, deadline - time.monotonic()))
                )
            except Exception:  # noqa: BLE001 - a dead node yields nothing
                with self._lock:
                    self._snapshot_waiters.pop(req, None)
        with self._lock:
            snapshots.extend(self._final_snapshots)
        return snapshots

    @property
    def final_snapshots(self) -> List[dict]:
        with self._lock:
            return list(self._final_snapshots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"Coordinator(port={self._port}, epoch={self.epoch}, "
                f"workers={len(self._workers)}, "
                f"live={self._live_count_locked()}, "
                f"pending={len(self._pending)}, closed={self._closed})"
            )
