"""Multi-host sharded execution — the spline solve across a worker fleet.

The paper's target is exa-scale: the spline solver feeds GYSELA-class
runs that span thousands of nodes.  This package generalizes the
single-host :class:`~repro.runtime.sharded.ShardedExecutor` to a fleet:

* :mod:`repro.cluster.wire` — the shard transport: the service
  protocol's length-prefixed framing with cluster frame types, raw
  C-order array bytes (bitwise, never pickled);
* :mod:`repro.cluster.worker` — one node: register, heartbeat, solve
  shards through its own warm-startable plan cache;
* :mod:`repro.cluster.coordinator` — registration + heartbeat leases
  (a lapsed lease is a lost node), shard re-issue onto survivors under
  fresh task ids (late acks drop; every shard applies exactly once),
  parking when no survivor exists yet;
* :mod:`repro.cluster.executor` — the engine-facing facade
  (``EngineConfig(executor="cluster")``): owns the loopback fleet,
  respawns under a restart budget, degrades to threads when exhausted;
* :mod:`repro.cluster.elastic` — backlog-driven scale-up/down between
  the policy's bounds;
* :mod:`repro.cluster.journal` — the coordinator's write-ahead shard
  journal and result spool (torn tails quarantined, corrupt spools
  evicted and re-solved — never a wrong answer);
* :mod:`repro.cluster.ha` — out-of-process coordinator hosts: a
  journaled primary plus a warm standby that replays the journal and
  takes over on primary death, invisibly to the engine;
* :mod:`repro.cluster.config` — every knob, lease clock to elasticity
  to speculation and standby.

Quickstart (one process, four loopback-TCP workers)::

    from repro.runtime.engine import SolveEngine, EngineConfig
    from repro.cluster import ClusterConfig

    with SolveEngine(
        EngineConfig(executor="cluster", num_workers=4,
                     cluster=ClusterConfig()),
    ) as engine:
        coeffs = engine.solve(spec, rhs)   # bitwise == threads executor

Remote nodes join the same fleet with
``python -m repro.cluster.worker --host <coordinator> --port <port>``.
"""

from repro.cluster.config import ClusterConfig, ElasticPolicy
from repro.cluster.coordinator import Coordinator
from repro.cluster.elastic import ElasticController
from repro.cluster.executor import ClusterExecutor
from repro.cluster.ha import HAFleet
from repro.cluster.journal import (
    JournalError,
    JournalReplay,
    ShardJournal,
    replay_journal,
)

__all__ = [
    "ClusterConfig",
    "ElasticPolicy",
    "Coordinator",
    "ClusterExecutor",
    "ElasticController",
    "HAFleet",
    "ShardJournal",
    "JournalReplay",
    "JournalError",
    "replay_journal",
]
