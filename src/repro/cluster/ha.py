"""Coordinator crash recovery — journaled hosts and standby takeover.

The coordinator of :mod:`repro.cluster` is a single point of failure
when it lives in the engine process; this module moves it into a
SIGKILL-able **host process** and keeps a warm standby next to it:

* :func:`coordinator_host_main` runs in a spawned child.  It binds two
  sockets at boot — a loopback **control port** for the executor and
  the **worker port** nodes dial — and reports both through a pipe.
  The *primary* host activates immediately: it replays the shard
  journal (empty on a fresh campaign), bumps the epoch, and starts a
  :class:`~repro.cluster.coordinator.Coordinator` on the worker port.
  The *standby* host binds its worker port **without listening** (so a
  dialing worker gets an instant refusal and moves down its failover
  list while the primary lives) and waits for ACTIVATE.

* :class:`HAFleet` is the executor side: it spawns both hosts, keeps
  the verbatim payload of every submitted shard, and watches the
  active host's control connection.  Death of the active host (EOF on
  that connection — SIGKILL included) triggers **takeover**: ACTIVATE
  to the standby, which replays the journal — acknowledged shards'
  results are served from the result spool with zero recompute
  (``cluster.spool_hits``), the epoch advances so in-flight acks from
  the dead era are fenced, and the task-id floor clears every id a
  worker ever saw.  The fleet then re-submits every unresolved shard
  verbatim; the engine-facing futures never observe the failover.
  Exactly-once delivery is executor-anchored: results are applied by
  shard id, popped from the retained map exactly once — a duplicate
  RESULT (one host answered before dying, the next answered again) is
  dropped and counted (``ha.duplicate_results_dropped``).

* After a takeover the fleet **respawns a fresh standby into the dead
  host's port slot**, so the workers' two-address failover list stays
  valid across any number of successive takeovers.

The chaos site ``cluster.coordinator_kill`` fires in the host before
every SUBMIT is handled (``worker=0`` matches the primary, ``worker=1``
the standby), so seeded fault plans can kill a coordinator mid-campaign
exactly like they kill worker nodes.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.coordinator import Coordinator
from repro.cluster.journal import JournalError, ShardJournal, replay_journal
from repro.cluster.wire import (
    ClusterFrame,
    decode_fleet,
    decode_json,
    decode_result,
    decode_shard_fail,
    decode_snapshot,
    decode_stop,
    decode_submit,
    encode_activate,
    encode_fleet,
    encode_fleet_req,
    encode_hello,
    encode_hello_ok,
    encode_result,
    encode_shard_fail,
    encode_snapshot,
    encode_snapshot_req,
    encode_stop,
    encode_submit,
)
from repro.runtime.sharded import WorkerError
from repro.runtime.telemetry import Telemetry
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["HAFleet", "coordinator_host_main"]

#: role → the ``worker=`` index the ``cluster.coordinator_kill`` site
#: fires with, so a spec can target the primary (0) or the standby (1)
ROLE_INDEX = {"primary": 0, "standby": 1}


# ---------------------------------------------------------------------------
# the host process
# ---------------------------------------------------------------------------


class _HostState:
    """Everything one coordinator host owns once activated."""

    def __init__(self) -> None:
        self.coordinator: Optional[Coordinator] = None
        self.journal: Optional[ShardJournal] = None
        self.acked: Dict[int, str] = {}
        self.epoch = -1


def coordinator_host_main(
    conn,
    config: ClusterConfig,
    role: str,
    active: bool,
    faults_json: Optional[str],
    plan_store_dir: Optional[str],
    live_wait_timeout: float,
    worker_port: int = 0,
) -> None:
    """Run one coordinator host until STOP or executor death.

    *conn* is the spawn pipe used once, to report
    ``(control_port, worker_port)``.  *worker_port* pins the worker
    listener (a respawned standby reuses the dead host's slot so the
    fleet's failover list stays valid); 0 lets the OS choose.
    """
    telemetry = Telemetry()
    faults = None
    if faults_json:
        from repro.runtime.resilience.faults import FaultPlan

        faults = FaultPlan.from_json(faults_json)
    state = _HostState()

    # Worker port: bound now (the address must be known before workers
    # spawn), listened on activation only — a worker dialing a standby
    # is refused instantly instead of parking in an unserved backlog.
    wsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    wsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    wsock.bind((config.host, worker_port))

    ctrl_listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    ctrl_listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    ctrl_listener.bind(("127.0.0.1", 0))
    ctrl_listener.listen(1)
    ctrl_listener.settimeout(max(30.0, 2.0 * config.connect_timeout))
    conn.send((ctrl_listener.getsockname()[1], wsock.getsockname()[1]))
    conn.close()

    def activate() -> None:
        if state.coordinator is not None:
            return
        replay = replay_journal(config.journal_dir, telemetry=telemetry)
        state.epoch = replay.epoch + 1
        state.acked = dict(replay.acked)
        state.journal = ShardJournal(config.journal_dir, telemetry=telemetry)
        state.journal.append("epoch", epoch=state.epoch, role=role)
        wsock.listen(64)
        state.coordinator = Coordinator(
            config,
            telemetry=telemetry,
            faults=faults,
            live_wait_timeout=live_wait_timeout,
            plan_store_dir=plan_store_dir,
            epoch=state.epoch,
            journal=state.journal,
            next_task=replay.next_task,
        )
        state.coordinator.start(listener=wsock)
        telemetry.event(
            "ha.activated", role=role, epoch=state.epoch,
            replayed=len(replay.records), unacked=len(replay.unacked),
            acked=len(replay.acked), quarantined=replay.quarantined,
        )

    if active:
        activate()
    try:
        ctrl, _ = ctrl_listener.accept()
    except socket.timeout:
        return  # the executor never came: nothing to host
    ctrl.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    ctrl.settimeout(None)
    ctrl_listener.close()
    send_lock = threading.Lock()

    def send(frame: bytes) -> None:
        with send_lock:
            write_frame(ctrl, frame)

    def finish_shard(shard_id: int, fut: Future) -> None:
        """Done-callback: spool + journal the ack, relay the result."""
        try:
            error = fut.exception()
            if error is not None:
                send(
                    encode_shard_fail(
                        shard_id, type(error).__name__, str(error)
                    )
                )
                return
            solved = fut.result()
            name = state.journal.spool_result(shard_id, solved)
            state.journal.append("ack", shard=shard_id, result=name)
            state.acked[shard_id] = name
            send(encode_result(shard_id, solved, spooled=False))
        except OSError:
            os._exit(0)  # executor is gone; this host has no purpose

    try:
        while True:
            try:
                ftype, _, payload = read_frame(ctrl, config.max_payload)
            except (ConnectionError, OSError, ProtocolError):
                return  # executor died: fold the fleet
            if ftype == ClusterFrame.HELLO:
                if decode_json(payload).get("active"):
                    activate()
                send(encode_hello_ok(state.epoch))
            elif ftype == ClusterFrame.ACTIVATE:
                takeover = state.coordinator is None
                activate()
                if takeover:
                    telemetry.incr("ha.takeover_activations")
                send(encode_hello_ok(state.epoch))
            elif ftype == ClusterFrame.SUBMIT:
                if faults is not None:
                    faults.fire(
                        "cluster.coordinator_kill", worker=ROLE_INDEX.get(role)
                    )
                shard_id, key, shard, col0, col1 = decode_submit(payload)
                spooled = state.acked.get(shard_id)
                if spooled is not None:
                    try:
                        solved = state.journal.load_result(spooled)
                        telemetry.incr("cluster.spool_hits")
                        send(encode_result(shard_id, solved, spooled=True))
                        continue
                    except JournalError:
                        # Corrupt spool entry: evict and re-solve — a
                        # defect costs time, never a wrong answer.
                        state.journal.evict_result(spooled)
                        state.acked.pop(shard_id, None)
                fut = state.coordinator.submit(
                    key, shard, col0, col1, shard_id=shard_id
                )
                fut.add_done_callback(
                    lambda f, sid=shard_id: finish_shard(sid, f)
                )
            elif ftype == ClusterFrame.FLEET_REQ:
                if state.coordinator is None:
                    send(encode_fleet({}, 0))
                else:
                    send(
                        encode_fleet(
                            state.coordinator.worker_census(),
                            state.coordinator.pending_count(),
                        )
                    )
            elif ftype == ClusterFrame.SNAP_REQ:
                req = int(decode_json(payload)["req"])
                workers = (
                    state.coordinator.request_snapshots(
                        timeout=config.drain_timeout
                    )
                    if state.coordinator is not None
                    else []
                )
                send(
                    encode_snapshot(
                        req,
                        {"host": telemetry.snapshot(), "workers": workers},
                    )
                )
            elif ftype == ClusterFrame.STOP:
                decode_stop(payload)
                try:
                    send(encode_snapshot(-1, telemetry.snapshot()))
                except OSError:
                    pass
                return
            else:
                return  # a foreign frame on the control plane: fold
    finally:
        if state.coordinator is not None:
            state.coordinator.stop()
        if state.journal is not None:
            state.journal.close()
        try:
            ctrl.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the executor side
# ---------------------------------------------------------------------------


class _Host:
    """Executor-side handle on one coordinator host process."""

    __slots__ = (
        "role", "proc", "sock", "send_lock", "ctrl_port", "worker_port",
        "epoch", "reader", "hello_fut", "fleet_fut", "snap_futs", "down",
    )

    def __init__(self, role, proc, sock, ctrl_port, worker_port, epoch):
        self.role = role
        self.proc = proc
        self.sock = sock
        self.send_lock = threading.Lock()
        self.ctrl_port = ctrl_port
        self.worker_port = worker_port
        self.epoch = epoch
        self.reader: Optional[threading.Thread] = None
        self.hello_fut: Optional[Future] = None
        self.fleet_fut: Optional[Future] = None
        self.snap_futs: Dict[int, Future] = {}
        self.down = False

    def send(self, frame: bytes) -> None:
        with self.send_lock:
            write_frame(self.sock, frame)


class _Retained:
    """One submitted shard the fleet holds until its result lands."""

    __slots__ = ("key", "payload", "col0", "col1", "future")

    def __init__(self, key, payload, col0, col1) -> None:
        self.key = key
        self.payload = payload
        self.col0 = col0
        self.col1 = col1
        self.future: Future = Future()


class HAFleet:
    """A primary + warm-standby coordinator pair behind one submit API.

    Parameters mirror the executor's: the shared :class:`ClusterConfig`
    (which must carry ``standby=True`` and a ``journal_dir``), the
    engine-side telemetry, the fault plan's JSON (shipped to hosts and,
    through them, to workers), the plan-store directory, and the
    live-wait timeout.
    """

    def __init__(
        self,
        config: ClusterConfig,
        telemetry: Optional[Telemetry] = None,
        faults_json: Optional[str] = None,
        plan_store_dir: Optional[str] = None,
        live_wait_timeout: float = 30.0,
        ctx=None,
    ) -> None:
        import multiprocessing as mp

        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.faults_json = faults_json
        self.plan_store_dir = plan_store_dir
        self.live_wait_timeout = float(live_wait_timeout)
        self._ctx = ctx if ctx is not None else mp.get_context("spawn")
        self._route_lock = threading.Lock()
        self._lock = threading.Lock()
        self._retained: Dict[int, _Retained] = {}
        self._next_shard = 0
        self._next_req = 0
        self._closed = False
        self._fleet_cache = (0.0, {})
        self._final_host_snapshots: List[dict] = []
        self._active = self._spawn_host("primary", active=True)
        self._standby: Optional[_Host] = self._spawn_host(
            "standby", active=False
        )

    # -- host lifecycle --------------------------------------------------

    def _spawn_host(self, role: str, active: bool, worker_port: int = 0) -> "_Host":
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=coordinator_host_main,
            args=(
                child_conn, self.config, role, active, self.faults_json,
                self.plan_store_dir, self.live_wait_timeout, worker_port,
            ),
            daemon=True,
            name=f"repro-cluster-host-{role}",
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self.config.connect_timeout):
            proc.terminate()
            raise WorkerError(
                f"coordinator host ({role}) reported no ports within "
                f"{self.config.connect_timeout}s"
            )
        ctrl_port, wport = parent_conn.recv()
        parent_conn.close()
        sock = socket.create_connection(
            ("127.0.0.1", ctrl_port), timeout=self.config.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        host = _Host(role, proc, sock, ctrl_port, wport, epoch=-1)
        host.send(encode_hello(active))
        ftype, _, payload = read_frame(sock)
        if ftype != ClusterFrame.HELLO_OK:
            raise WorkerError(
                f"coordinator host ({role}) answered HELLO with frame "
                f"type {ftype}"
            )
        host.epoch = int(decode_json(payload).get("epoch", -1))
        host.reader = threading.Thread(
            target=self._reader_loop, args=(host,),
            name=f"repro-ha-reader-{role}", daemon=True,
        )
        host.reader.start()
        self.telemetry.event(
            "ha.host_spawned", role=role, pid=proc.pid,
            worker_port=wport, epoch=host.epoch,
        )
        return host

    def worker_addresses(self) -> List[tuple]:
        """Every coordinator worker port, active first — what spawned
        workers receive as their dial/failover list."""
        with self._route_lock:
            hosts = [self._active] + (
                [self._standby] if self._standby is not None else []
            )
        return [(self.config.host, h.worker_port) for h in hosts]

    @property
    def primary_pid(self) -> Optional[int]:
        """The active host's OS pid (the chaos target)."""
        with self._route_lock:
            return self._active.proc.pid

    @property
    def epoch(self) -> int:
        with self._route_lock:
            return self._active.epoch

    @property
    def takeovers(self) -> int:
        return self.telemetry.counter("ha.takeovers")

    # -- the submit surface ----------------------------------------------

    def submit(self, key, payload: np.ndarray, col0: int, col1: int) -> Future:
        """Route one shard to the active coordinator host.

        The payload is retained verbatim until the result lands, so a
        takeover can re-submit the same bytes under the same shard id —
        the engine-facing future resolves exactly once either way.
        """
        with self._lock:
            if self._closed:
                raise WorkerError("HA fleet is shut down")
            shard_id = self._next_shard
            self._next_shard += 1
            entry = _Retained(key, payload, col0, col1)
            self._retained[shard_id] = entry
        self.telemetry.incr("ha.shards_submitted")
        frame = encode_submit(shard_id, key, payload, col0, col1)
        with self._route_lock:
            host = self._active
            try:
                host.send(frame)
            except OSError:
                # The active host died under us; the entry is retained
                # and the failover (triggered by its reader's EOF)
                # re-submits it to the promoted standby.
                pass
        return entry.future

    def _resolve(self, shard_id: int, solved, error, spooled: bool) -> None:
        with self._lock:
            entry = self._retained.pop(shard_id, None)
        if entry is None:
            # Two hosts answered the same shard across a takeover; the
            # first answer was applied, this one is dropped — the
            # executor-anchored half of exactly-once delivery.
            self.telemetry.incr("ha.duplicate_results_dropped")
            return
        if spooled:
            self.telemetry.incr("ha.spool_hits")
        if error is not None:
            self.telemetry.incr("ha.shards_failed")
            entry.future.set_exception(error)
        else:
            self.telemetry.incr("ha.shards_resolved")
            entry.future.set_result(solved)

    # -- the control-plane reader ----------------------------------------

    def _reader_loop(self, host: _Host) -> None:
        try:
            while True:
                ftype, _, payload = read_frame(
                    host.sock, self.config.max_payload
                )
                if ftype == ClusterFrame.RESULT:
                    shard_id, solved, spooled = decode_result(payload)
                    self._resolve(shard_id, solved, None, spooled)
                elif ftype == ClusterFrame.SHARD_FAIL:
                    shard_id, error, message = decode_shard_fail(payload)
                    self._resolve(
                        shard_id,
                        None,
                        WorkerError(f"{error}: {message}"),
                        False,
                    )
                elif ftype == ClusterFrame.HELLO_OK:
                    epoch = int(decode_json(payload).get("epoch", -1))
                    host.epoch = epoch
                    fut = host.hello_fut
                    if fut is not None and not fut.done():
                        fut.set_result(epoch)
                elif ftype == ClusterFrame.FLEET:
                    census, pending = decode_fleet(payload)
                    fut = host.fleet_fut
                    if fut is not None and not fut.done():
                        fut.set_result((census, pending))
                elif ftype == ClusterFrame.SNAPSHOT:
                    req, snapshot = decode_snapshot(payload)
                    if req < 0:
                        with self._lock:
                            self._final_host_snapshots.append(snapshot)
                        return  # the host's farewell: it is exiting
                    fut = host.snap_futs.pop(req, None)
                    if fut is not None:
                        fut.set_result(snapshot)
                else:
                    raise ProtocolError(
                        f"unexpected frame type {ftype} from the "
                        f"{host.role} host"
                    )
        except (ConnectionError, OSError, ProtocolError):
            self._host_down(host)

    # -- takeover --------------------------------------------------------

    def _host_down(self, host: _Host) -> None:
        """A host's control connection broke: fail over or refill."""
        if host.down:
            return
        host.down = True
        with self._lock:
            if self._closed:
                return
        with self._route_lock:
            was_active = host is self._active
            standby = self._standby
        if not was_active:
            # The warm standby died: refill its slot so the next
            # takeover still has somewhere to go.
            self.telemetry.incr("ha.standby_lost")
            self._refill_standby(host.worker_port)
            return
        self.telemetry.incr("ha.takeovers")
        self.telemetry.event(
            "ha.takeover_begin", dead_pid=host.proc.pid,
            dead_port=host.worker_port,
        )
        started = time.monotonic()
        if standby is None or standby.down:
            self._fail_retained("both coordinator hosts are dead")
            return
        standby.hello_fut = Future()
        try:
            standby.send(encode_activate())
            epoch = standby.hello_fut.result(
                timeout=self.config.connect_timeout
            )
        except Exception as exc:  # noqa: BLE001 - takeover or bust
            self._fail_retained(f"standby activation failed: {exc}")
            return
        with self._route_lock:
            self._active = standby
            self._standby = None
        elapsed = time.monotonic() - started
        self.telemetry.observe("ha.takeover_seconds", elapsed)
        self.telemetry.event(
            "ha.takeover", epoch=epoch, seconds=elapsed,
            resubmitted=len(self._retained),
        )
        # Re-submit every unresolved shard verbatim, same shard ids:
        # acked-but-unreported ones come back instantly from the spool,
        # in-flight ones re-issue to the re-formed fleet.
        with self._lock:
            unresolved = sorted(self._retained.items())
        for shard_id, entry in unresolved:
            frame = encode_submit(
                shard_id, entry.key, entry.payload, entry.col0, entry.col1
            )
            with self._route_lock:
                try:
                    self._active.send(frame)
                except OSError:
                    break  # the new active died too; its reader recurses
        self._refill_standby(host.worker_port)

    def _refill_standby(self, worker_port: int) -> None:
        """Spawn a fresh standby into a dead host's worker-port slot."""
        with self._lock:
            if self._closed:
                return
        try:
            fresh = self._spawn_host(
                "standby", active=False, worker_port=worker_port
            )
        except (WorkerError, OSError) as exc:
            self.telemetry.event("ha.standby_refill_failed", error=str(exc))
            return
        with self._route_lock:
            self._standby = fresh
        self.telemetry.incr("ha.standby_respawns")

    def _fail_retained(self, reason: str) -> None:
        with self._lock:
            entries = list(self._retained.values())
            self._retained.clear()
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(
                    WorkerError(
                        f"cluster HA fleet cannot heal: {reason}",
                        key=entry.key, cols=(entry.col0, entry.col1),
                    )
                )
        self.telemetry.event("ha.failed", reason=reason, shards=len(entries))

    # -- introspection ----------------------------------------------------

    def _census(self, max_age: float = 0.2):
        now = time.monotonic()
        stamp, cached = self._fleet_cache
        if now - stamp < max_age:
            return cached
        with self._route_lock:
            host = self._active
        host.fleet_fut = Future()
        try:
            host.send(encode_fleet_req())
            census, pending = host.fleet_fut.result(timeout=2.0)
        except Exception:  # noqa: BLE001 - a takeover may be in flight
            return cached
        result = {"workers": census, "pending": pending}
        self._fleet_cache = (now, result)
        return result

    def live_count(self) -> int:
        return len(self._census().get("workers", {}))

    def worker_pids(self) -> List[int]:
        return [
            pid
            for pid in self._census(max_age=0.0).get("workers", {}).values()
            if pid is not None
        ]

    def backlog(self) -> float:
        census = self._census()
        return census.get("pending", 0) / max(1, len(census.get("workers", {})))

    def pending_count(self) -> int:
        with self._lock:
            return len(self._retained)

    def await_workers(self, count: int, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self._census(max_age=0.0).get("workers", {})) >= count:
                return True
            time.sleep(0.05)
        return False

    def request_snapshots(self, timeout: float = 5.0) -> List[dict]:
        """The live workers' telemetry snapshots, via the active host."""
        return self.host_snapshot(timeout=timeout).get("workers", [])

    def host_snapshot(self, timeout: float = 5.0) -> dict:
        """The active host's own telemetry plus its workers' snapshots."""
        with self._route_lock:
            host = self._active
        with self._lock:
            req = self._next_req
            self._next_req += 1
        fut: Future = Future()
        host.snap_futs[req] = fut
        try:
            host.send(encode_snapshot_req(req))
            return fut.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - a dead host yields nothing
            host.snap_futs.pop(req, None)
            return {"host": {}, "workers": []}

    # -- shutdown ---------------------------------------------------------

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._fail_retained("HA fleet shut down")
        with self._route_lock:
            hosts = [self._active] + (
                [self._standby] if self._standby is not None else []
            )
        for host in hosts:
            try:
                host.send(encode_stop("shutdown"))
            except OSError:
                pass
        for host in hosts:
            host.proc.join(timeout=self.config.drain_timeout)
            if host.proc.is_alive():
                host.proc.terminate()
                host.proc.join(timeout=2.0)
            if host.proc.is_alive():  # pragma: no cover - last resort
                host.proc.kill()
                host.proc.join(timeout=2.0)
            try:
                host.sock.close()
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._route_lock:
            return (
                f"HAFleet(active={self._active.role}@{self._active.worker_port}, "
                f"epoch={self._active.epoch}, "
                f"retained={len(self._retained)}, closed={self._closed})"
            )
