"""Tunables of the multi-host cluster executor.

Kept free of engine imports so :class:`~repro.runtime.engine.EngineConfig`
can validate its ``cluster`` field lazily without an import cycle; the
defaults describe a loopback fleet suitable for tests and the quick
scaling bench, with every timing knob explicit so chaos tests can
compress the lease clock down to fractions of a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ClusterConfig", "ElasticPolicy"]


@dataclass(frozen=True)
class ElasticPolicy:
    """When the elastic controller grows or shrinks the fleet.

    The controller samples the coordinator's backlog — pending shards
    per live worker — every *interval* seconds.  A sustained backlog
    above *high_backlog* adds a worker (up to *max_workers*); a backlog
    below *low_backlog* retires one (down to *min_workers*), draining it
    gracefully so no shard is lost.  *cooldown* seconds must pass
    between scaling actions, so one burst does not thrash the fleet.
    """

    min_workers: int = 1
    max_workers: int = 8
    high_backlog: float = 2.0
    low_backlog: float = 0.25
    interval: float = 0.25
    cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers must be >= min_workers, got "
                f"{self.max_workers} < {self.min_workers}"
            )
        if self.high_backlog <= self.low_backlog:
            raise ValueError(
                f"high_backlog must exceed low_backlog, got "
                f"{self.high_backlog} <= {self.low_backlog}"
            )
        if self.low_backlog < 0:
            raise ValueError(f"low_backlog must be >= 0, got {self.low_backlog}")
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one :class:`~repro.cluster.executor.ClusterExecutor`.

    Attributes
    ----------
    host, port:
        Coordinator bind address.  Port 0 (the default) lets the OS
        choose; the bound port is readable on the running coordinator,
        which is how loopback tests wire worker processes to it.
    heartbeat_interval:
        Seconds between a worker's heartbeats (its lease renewals).
    lease_timeout:
        Seconds without a heartbeat before a worker's lease lapses and
        it is declared lost (its in-flight shards re-issue onto
        survivors).  Must comfortably exceed *heartbeat_interval* —
        one dropped heartbeat must not kill a healthy node.
    shard_attempts:
        Delivery attempts one shard may consume across re-issues before
        its failure is surfaced (mirrors the single-host executor's
        requeue bound).
    max_payload:
        Per-connection payload cap in bytes; a corrupt or hostile
        length prefix fails before any payload byte is read.
    connect_timeout:
        Seconds a worker waits to reach the coordinator (and the
        executor waits for an owned worker's registration).
    drain_timeout:
        Seconds a graceful retirement waits for a worker's in-flight
        shards before closing it anyway.
    elastic:
        An :class:`ElasticPolicy`, or ``None`` for a fixed-size fleet.
    standby:
        Host the coordinator out-of-process with a warm standby that
        replays the shard journal and takes over on primary death
        (:mod:`repro.cluster.ha`).  Requires *journal_dir*; mutually
        exclusive with *elastic* (the HA control plane has no retire
        plumbing).
    journal_dir:
        Directory for the write-ahead shard journal and result spool
        (:mod:`repro.cluster.journal`); required when *standby* is on.
    speculate:
        Duplicate a straggling shard onto another live worker when its
        age exceeds the speculative threshold — first ack wins, the
        loser's ack drops as stale.
    speculative_age:
        Fixed age (seconds) past which an in-flight shard is
        speculatively duplicated; ``None`` derives the threshold from
        observed shard latencies (``speculative_factor`` × p99, once
        ``speculative_min_samples`` completions have been seen).
    speculative_factor:
        Multiplier on the observed p99 shard latency when
        *speculative_age* is ``None``.
    speculative_min_samples:
        Completed-shard latencies required before the p99-derived
        threshold engages (a cold fleet must not speculate on noise).
    worker_rejoin:
        Let a lost-but-alive worker (healed partition) re-dial and
        re-REGISTER under a fresh worker id instead of being reaped at
        shutdown; the executor defers respawning it for *rejoin_grace*.
    rejoin_grace:
        Seconds the executor waits for a lost-but-alive owned worker to
        re-register before falling back to respawn/zombie handling.
    """

    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_interval: float = 0.5
    lease_timeout: float = 2.0
    shard_attempts: int = 3
    max_payload: int = 1 << 28
    connect_timeout: float = 10.0
    drain_timeout: float = 5.0
    elastic: Optional[ElasticPolicy] = None
    standby: bool = False
    journal_dir: Optional[str] = None
    speculate: bool = False
    speculative_age: Optional[float] = None
    speculative_factor: float = 3.0
    speculative_min_samples: int = 20
    worker_rejoin: bool = True
    rejoin_grace: float = 5.0

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.lease_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"lease_timeout ({self.lease_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}); one "
                "late heartbeat must not lose a healthy worker"
            )
        if self.shard_attempts < 1:
            raise ValueError(
                f"shard_attempts must be >= 1, got {self.shard_attempts}"
            )
        if self.max_payload < 4096:
            raise ValueError(
                f"max_payload must be >= 4096, got {self.max_payload}"
            )
        if self.connect_timeout <= 0:
            raise ValueError(
                f"connect_timeout must be > 0, got {self.connect_timeout}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be > 0, got {self.drain_timeout}"
            )
        if self.elastic is not None and not isinstance(
            self.elastic, ElasticPolicy
        ):
            raise TypeError(
                f"elastic must be an ElasticPolicy or None, "
                f"got {type(self.elastic).__name__}"
            )
        if self.standby:
            if self.elastic is not None:
                raise ValueError(
                    "standby and elastic are mutually exclusive: the HA "
                    "control plane has no retire plumbing"
                )
            if not self.journal_dir:
                raise ValueError(
                    "standby=True requires journal_dir (the takeover "
                    "replays the shard journal)"
                )
        if self.speculative_age is not None and self.speculative_age <= 0:
            raise ValueError(
                f"speculative_age must be > 0 or None, "
                f"got {self.speculative_age}"
            )
        if self.speculative_factor < 1.0:
            raise ValueError(
                f"speculative_factor must be >= 1, "
                f"got {self.speculative_factor}"
            )
        if self.speculative_min_samples < 1:
            raise ValueError(
                f"speculative_min_samples must be >= 1, "
                f"got {self.speculative_min_samples}"
            )
        if self.rejoin_grace <= 0:
            raise ValueError(
                f"rejoin_grace must be > 0, got {self.rejoin_grace}"
            )
