"""Elastic fleet control — scale on the backlog the engine already sees.

The :class:`~repro.cluster.coordinator.Coordinator` exposes one number,
**backlog**: in-flight shards per live worker — the cluster analogue of
the queue-depth telemetry (``engine.queue_depth_cols``) the engine
exports.  The :class:`ElasticController` samples it on a fixed cadence
and moves the fleet between the policy's bounds:

* backlog above ``high_backlog`` with room under ``max_workers`` —
  **scale up**: spawn one loopback worker (registration drains any
  parked shards immediately);
* backlog below ``low_backlog`` with slack above ``min_workers`` —
  **scale down**: gracefully retire the newest worker (it stops
  receiving shards at once; anything in flight re-issues verbatim onto
  the remaining fleet, so results stay bitwise identical);
* a ``cooldown`` between actions keeps one burst from thrashing the
  fleet both directions.

Decisions are one worker at a time on purpose: the backlog signal is
re-sampled after every action, so the fleet converges instead of
overshooting.  ``tick()`` is public and takes an injected clock reading,
which is how the tests drive scaling deterministically without waiting
out real intervals.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.cluster.config import ElasticPolicy
from repro.runtime.telemetry import Telemetry

__all__ = ["ElasticController"]


class ElasticController:
    """Samples the backlog and grows/shrinks the executor's fleet."""

    def __init__(
        self,
        executor,
        policy: ElasticPolicy,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.executor = executor
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._last_action = float("-inf")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-elastic", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.policy.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - scaling must never kill solves
                self.telemetry.incr("cluster.elastic_errors")

    def tick(self, now: Optional[float] = None) -> Optional[str]:
        """One scaling decision; returns ``"up"``, ``"down"`` or ``None``.

        *now* is an injectable monotonic reading so tests can step the
        cooldown clock explicitly.
        """
        now = time.monotonic() if now is None else now
        if now - self._last_action < self.policy.cooldown:
            return None
        backlog = self.executor.backlog()
        live = self.executor.live_count()
        if backlog > self.policy.high_backlog and live < self.policy.max_workers:
            if self.executor.scale_up():
                self._last_action = now
                self.telemetry.incr("cluster.scale_up")
                self.telemetry.event(
                    "cluster.scale", direction="up", backlog=backlog,
                    workers=live + 1,
                )
                return "up"
        elif backlog < self.policy.low_backlog and live > self.policy.min_workers:
            if self.executor.scale_down():
                self._last_action = now
                self.telemetry.incr("cluster.scale_down")
                self.telemetry.event(
                    "cluster.scale", direction="down", backlog=backlog,
                    workers=live - 1,
                )
                return "down"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElasticController(policy={self.policy}, "
            f"running={self._thread is not None and self._thread.is_alive()})"
        )
