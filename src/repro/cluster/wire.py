"""Cluster shard transport frames — the service framing, new frame types.

The cluster speaks the exact length-prefixed framing of
:mod:`repro.service.protocol` (magic, version, type, flags, length) with
its own frame-type codes in the ``>= 32`` range, so a service endpoint
and a cluster endpoint can never mistake each other's frames for their
own.  Shard payloads reuse the protocol's array-payload convention —
JSON metadata plus the **raw C-order array bytes** — so right-hand sides
and solved coefficients cross the wire bitwise, never pickled:

========== ===============================================================
 frame      meaning
========== ===============================================================
 REGISTER   worker → coordinator, first frame on a connection
 WELCOME    coordinator → worker: assigned id, lease clock, fault plan,
            durable plan-store directory (warm-start ships to the node),
            and the coordinator **epoch** — bumped on every standby
            takeover so acks from a previous coordinator's era are
            recognizably stale
 HEARTBEAT  worker → coordinator lease renewal
 SHARD      coordinator → worker: one column shard (task id, plan key,
            raw RHS bytes, issuing epoch)
 SHARD_OK   worker → coordinator: the solved shard (task id, raw bytes,
            echoed epoch)
 SHARD_ERR  worker → coordinator: structured shard failure (echoed epoch)
 SNAP_REQ   coordinator → worker: telemetry snapshot request
 SNAPSHOT   worker → coordinator: the snapshot (also the STOP farewell)
 STOP       coordinator → worker: drain and exit; carries a *reason*
            (``shutdown`` / ``retire`` / ``lost``) — a worker stopped as
            ``lost`` may re-dial and re-REGISTER instead of exiting
========== ===============================================================

The high-availability control plane (executor ↔ a coordinator *host*
process, :mod:`repro.cluster.ha`) extends the same framing:

=========== ==============================================================
 frame       meaning
=========== ==============================================================
 HELLO       executor → host: claim the control connection (``active``
             tells a freshly spawned host whether to serve immediately)
 HELLO_OK    host → executor: the host's current epoch (−1 = standby)
 SUBMIT      executor → host: one shard keyed by an executor-chosen
             **shard id** (raw RHS bytes; the executor retains the
             payload so a takeover can re-submit it verbatim)
 RESULT      host → executor: the solved shard (shard id, raw bytes,
             whether it was served from the journal's result spool)
 SHARD_FAIL  host → executor: structured shard failure by shard id
 ACTIVATE    executor → standby host: replay the journal and take over
 FLEET_REQ   executor → host: live-worker census request
 FLEET       host → executor: live worker ids, pids, pending shard count
=========== ==============================================================

The :class:`~repro.runtime.plan_cache.PlanKey` travels as JSON through
:func:`key_to_dict` / :func:`key_from_dict` — the spec's frozen fields
via the service's ``spec_to_dict`` plus the version / dtype / chunk /
drop-tolerance / backend coordinates, so a remote worker factorizes (or
warm-loads) exactly the plan the coordinator asked for.
"""

from __future__ import annotations

import json
from enum import IntEnum
from typing import Tuple

import numpy as np

from repro.runtime.plan_cache import PlanKey
from repro.service.protocol import (
    ProtocolError,
    encode_frame,
    pack_meta_and_array,
    spec_from_dict,
    spec_to_dict,
    unpack_meta_and_array,
)

__all__ = [
    "ClusterFrame",
    "key_to_dict",
    "key_from_dict",
    "encode_register",
    "encode_welcome",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_shard",
    "decode_shard",
    "encode_shard_ok",
    "decode_shard_ok",
    "encode_shard_err",
    "decode_shard_err",
    "encode_snapshot_req",
    "encode_snapshot",
    "decode_snapshot",
    "encode_stop",
    "decode_stop",
    "encode_hello",
    "encode_hello_ok",
    "encode_submit",
    "decode_submit",
    "encode_result",
    "decode_result",
    "encode_shard_fail",
    "decode_shard_fail",
    "encode_activate",
    "encode_fleet_req",
    "encode_fleet",
    "decode_fleet",
    "decode_json",
]


class ClusterFrame(IntEnum):
    """Cluster frame-type codes (disjoint from the service's 1–8)."""

    REGISTER = 32
    WELCOME = 33
    HEARTBEAT = 34
    SHARD = 35
    SHARD_OK = 36
    SHARD_ERR = 37
    SNAP_REQ = 38
    SNAPSHOT = 39
    STOP = 40
    # -- the HA control plane (executor <-> coordinator host process) --
    HELLO = 41
    HELLO_OK = 42
    SUBMIT = 43
    RESULT = 44
    SHARD_FAIL = 45
    ACTIVATE = 46
    FLEET_REQ = 47
    FLEET = 48


# -- plan keys over the wire -------------------------------------------------


def key_to_dict(key: PlanKey) -> dict:
    """A :class:`PlanKey` as a JSON-safe dict (every coordinate explicit)."""
    return {
        "spec": spec_to_dict(key.spec),
        "version": int(key.version),
        "dtype": str(key.dtype),
        "chunk": int(key.chunk),
        "drop_tol": float(key.drop_tol),
        "backend": str(key.backend),
    }


def key_from_dict(data: dict) -> PlanKey:
    """Rebuild a :class:`PlanKey`; malformed input is a protocol error."""
    try:
        return PlanKey(
            spec=spec_from_dict(data["spec"]),
            version=int(data["version"]),
            dtype=str(data["dtype"]),
            chunk=int(data["chunk"]),
            drop_tol=float(data["drop_tol"]),
            backend=str(data["backend"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad plan key metadata: {exc}") from exc


# -- JSON control frames -----------------------------------------------------


def _encode_json(ftype: int, data: dict) -> bytes:
    return encode_frame(
        ftype, json.dumps(data, default=str).encode("utf-8")
    )


def decode_json(payload: bytes) -> dict:
    """Any cluster control frame's JSON payload as a dict."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable cluster frame: {exc}") from exc


def encode_register(pid: int, tag: str = "") -> bytes:
    """A worker's opening frame: who is connecting."""
    return _encode_json(ClusterFrame.REGISTER, {"pid": int(pid), "tag": tag})


def encode_welcome(
    worker_id: int,
    heartbeat_interval: float,
    lease_timeout: float,
    fault_json=None,
    plan_store_dir=None,
    epoch: int = 0,
) -> bytes:
    """The coordinator's reply: identity plus everything the node needs."""
    return _encode_json(
        ClusterFrame.WELCOME,
        {
            "worker": int(worker_id),
            "heartbeat_interval": float(heartbeat_interval),
            "lease_timeout": float(lease_timeout),
            "faults": fault_json,
            "plan_store_dir": plan_store_dir,
            "epoch": int(epoch),
        },
    )


def encode_heartbeat(worker_id: int, seq: int) -> bytes:
    return _encode_json(
        ClusterFrame.HEARTBEAT, {"worker": int(worker_id), "seq": int(seq)}
    )


def decode_heartbeat(payload: bytes) -> Tuple[int, int]:
    data = decode_json(payload)
    try:
        return int(data["worker"]), int(data["seq"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad heartbeat frame: {exc}") from exc


def encode_snapshot_req(req_id: int) -> bytes:
    return _encode_json(ClusterFrame.SNAP_REQ, {"req": int(req_id)})


def encode_snapshot(req_id: int, snapshot: dict) -> bytes:
    return _encode_json(
        ClusterFrame.SNAPSHOT, {"req": int(req_id), "snapshot": snapshot}
    )


def decode_snapshot(payload: bytes) -> Tuple[int, dict]:
    data = decode_json(payload)
    try:
        return int(data["req"]), dict(data["snapshot"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad snapshot frame: {exc}") from exc


#: STOP reasons a worker may receive; ``lost`` invites a re-dial +
#: re-REGISTER (the lease lapsed but the process may be healthy), the
#: other two are terminal
STOP_REASONS = ("shutdown", "retire", "lost")


def encode_stop(reason: str = "shutdown") -> bytes:
    if reason not in STOP_REASONS:
        raise ValueError(f"unknown STOP reason {reason!r}")
    return _encode_json(ClusterFrame.STOP, {"reason": reason})


def decode_stop(payload: bytes) -> str:
    """The STOP reason; frames from older coordinators default to
    ``shutdown`` (terminal) so a stale peer can never trap a worker in a
    re-dial loop."""
    reason = decode_json(payload).get("reason", "shutdown")
    return reason if reason in STOP_REASONS else "shutdown"


# -- HA control-plane frames (executor <-> coordinator host) -----------------


def encode_hello(active: bool) -> bytes:
    """The executor claims a host's control connection."""
    return _encode_json(ClusterFrame.HELLO, {"active": bool(active)})


def encode_hello_ok(epoch: int) -> bytes:
    """The host's answer to HELLO/ACTIVATE; epoch −1 means standing by."""
    return _encode_json(ClusterFrame.HELLO_OK, {"epoch": int(epoch)})


def encode_activate() -> bytes:
    """Tell a standby host to replay its journal and take over."""
    return _encode_json(ClusterFrame.ACTIVATE, {})


def encode_fleet_req() -> bytes:
    return _encode_json(ClusterFrame.FLEET_REQ, {})


def encode_fleet(workers: dict, pending: int) -> bytes:
    """The live-worker census: ``{worker_id: pid}`` plus pending shards."""
    return _encode_json(
        ClusterFrame.FLEET,
        {
            "workers": {str(w): pid for w, pid in workers.items()},
            "pending": int(pending),
        },
    )


def decode_fleet(payload: bytes) -> Tuple[dict, int]:
    data = decode_json(payload)
    try:
        workers = {
            int(w): (None if pid is None else int(pid))
            for w, pid in dict(data["workers"]).items()
        }
        return workers, int(data["pending"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad fleet frame: {exc}") from exc


def encode_submit(
    shard_id: int, key: PlanKey, shard: np.ndarray, col0: int, col1: int
) -> bytes:
    """One shard from the executor to the active coordinator host.

    Keyed by the executor-chosen *shard id* (stable across takeovers —
    the executor retains the payload and re-submits the same id to the
    promoted standby, whose journal replay deduplicates it)."""
    meta = {
        "shard": int(shard_id),
        "key": key_to_dict(key),
        "col0": int(col0),
        "col1": int(col1),
        "array_shape": list(shard.shape),
        "array_dtype": shard.dtype.str,
    }
    return encode_frame(ClusterFrame.SUBMIT, pack_meta_and_array(meta, shard))


def decode_submit(payload: bytes) -> Tuple[int, PlanKey, np.ndarray, int, int]:
    meta, shard = unpack_meta_and_array(payload)
    try:
        return (
            int(meta["shard"]),
            key_from_dict(meta["key"]),
            shard,
            int(meta["col0"]),
            int(meta["col1"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad submit metadata: {exc}") from exc


def encode_result(shard_id: int, solved: np.ndarray, spooled: bool) -> bytes:
    """A solved shard back to the executor (``spooled`` marks a journal
    result-spool hit — no kernel ran for it)."""
    meta = {
        "shard": int(shard_id),
        "spooled": bool(spooled),
        "array_shape": list(solved.shape),
        "array_dtype": solved.dtype.str,
    }
    return encode_frame(ClusterFrame.RESULT, pack_meta_and_array(meta, solved))


def decode_result(payload: bytes) -> Tuple[int, np.ndarray, bool]:
    meta, solved = unpack_meta_and_array(payload)
    try:
        return int(meta["shard"]), solved, bool(meta.get("spooled", False))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad result metadata: {exc}") from exc


def encode_shard_fail(shard_id: int, error: str, message: str) -> bytes:
    return _encode_json(
        ClusterFrame.SHARD_FAIL,
        {"shard": int(shard_id), "error": str(error), "message": str(message)},
    )


def decode_shard_fail(payload: bytes) -> Tuple[int, str, str]:
    data = decode_json(payload)
    try:
        return (
            int(data["shard"]),
            str(data.get("error", "")),
            str(data.get("message", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad shard failure frame: {exc}") from exc


# -- shard frames (raw array bytes) ------------------------------------------


def encode_shard(
    task_id: int,
    key: PlanKey,
    shard: np.ndarray,
    col0: int,
    col1: int,
    epoch: int = 0,
) -> bytes:
    """One column shard to a worker: id, plan key, raw C-order RHS bytes.

    The issuing *epoch* travels with the shard and is echoed in the
    acknowledgement, so an ack crossing a coordinator takeover is
    recognizably stale even if its task id were ever reused."""
    meta = {
        "task": int(task_id),
        "key": key_to_dict(key),
        "col0": int(col0),
        "col1": int(col1),
        "epoch": int(epoch),
        "array_shape": list(shard.shape),
        "array_dtype": shard.dtype.str,  # byte order included: bitwise
    }
    return encode_frame(ClusterFrame.SHARD, pack_meta_and_array(meta, shard))


def decode_shard(
    payload: bytes,
) -> Tuple[int, PlanKey, np.ndarray, int, int, int]:
    meta, shard = unpack_meta_and_array(payload)
    try:
        return (
            int(meta["task"]),
            key_from_dict(meta["key"]),
            shard,
            int(meta["col0"]),
            int(meta["col1"]),
            int(meta.get("epoch", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad shard metadata: {exc}") from exc


def encode_shard_ok(task_id: int, solved: np.ndarray, epoch: int = 0) -> bytes:
    """The solved shard riding the acknowledgement back, bitwise."""
    meta = {
        "task": int(task_id),
        "epoch": int(epoch),
        "array_shape": list(solved.shape),
        "array_dtype": solved.dtype.str,
    }
    return encode_frame(ClusterFrame.SHARD_OK, pack_meta_and_array(meta, solved))


def decode_shard_ok(payload: bytes) -> Tuple[int, np.ndarray, int]:
    meta, solved = unpack_meta_and_array(payload)
    try:
        return int(meta["task"]), solved, int(meta.get("epoch", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad shard ack metadata: {exc}") from exc


def encode_shard_err(task_id: int, exc: BaseException, epoch: int = 0) -> bytes:
    return _encode_json(
        ClusterFrame.SHARD_ERR,
        {
            "task": int(task_id),
            "epoch": int(epoch),
            "error": type(exc).__name__,
            "message": str(exc),
        },
    )


def decode_shard_err(payload: bytes) -> Tuple[int, str, str, int]:
    data = decode_json(payload)
    try:
        return (
            int(data["task"]),
            str(data.get("error", "")),
            str(data.get("message", "")),
            int(data.get("epoch", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad shard error frame: {exc}") from exc
