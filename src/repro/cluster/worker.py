"""One cluster worker node — connect, register, heartbeat, solve shards.

A worker is a plain process (same host for the loopback tests and the
quick scaling bench, any host in principle — the transport is one TCP
connection).  Its life is an outer **dial loop** around sessions:

1. dial the coordinator — trying each address in its failover list in
   order (the primary first, then a standby host's worker port), so a
   worker survives a coordinator takeover by simply reconnecting;
2. send REGISTER and receive WELCOME: its assigned worker id, the lease
   clock (heartbeat interval + lease timeout), the coordinator's
   **epoch**, the serialized
   :class:`~repro.runtime.resilience.faults.FaultPlan`, and the durable
   plan-store directory — so chaos plans and warm-start behave on a
   remote node exactly as they do in a local worker process;
3. start the **heartbeat thread**: one HEARTBEAT frame per interval.
   The ``cluster.partition`` fault site fires *before each send* — a
   ``hang`` spec there mutes heartbeats long enough for the lease to
   lapse while the data plane still flows, which is precisely a
   network partition as the coordinator perceives it;
4. loop on the data plane: each SHARD frame is decoded (raw C-order
   bytes — bitwise what the coordinator held), solved **in place**
   through the worker's own plan cache (factor once per key per node,
   warm-started from the plan store when configured), and the solved
   bytes ride SHARD_OK back **echoing the shard's issuing epoch**, so
   an ack that crosses a takeover is recognizably stale.  The
   ``cluster.node_kill`` site fires before each solve (``crash`` takes
   the whole node down mid-flight, ``slow`` delays the ack past a
   lease, ``raise`` fails the shard); ``cluster.shard_slow`` fires
   right after it — a straggler dial for the speculative-execution
   path, without conflating it with node death.

A session ends with a STOP frame or a broken connection.  STOP reason
``shutdown`` or ``retire`` is terminal; reason ``lost`` (the lease
lapsed but this process is healthy — a healed partition) and a plain
connection loss (the coordinator died; a standby may be taking over)
send the worker back to the dial loop.  The
:class:`~repro.runtime.plan_cache.PlanCache` **survives re-dials**: a
rejoined or failed-over worker re-registers under a fresh id with all
its factorizations intact, so a takeover costs zero refactorizations.

The worker never initiates anything except heartbeats: shard routing,
re-issue, speculation, and elasticity are entirely the coordinator's
business, which keeps a node's failure model simple — it either
answers or it is gone.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.cluster.wire import (
    ClusterFrame,
    decode_json,
    decode_shard,
    decode_stop,
    encode_heartbeat,
    encode_register,
    encode_shard_err,
    encode_shard_ok,
    encode_snapshot,
)
from repro.runtime.telemetry import Telemetry
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["worker_main", "main"]


def _connect(addresses, timeout: float) -> socket.socket:
    """Dial the first reachable coordinator address, retrying until
    *timeout* (the primary may still be binding, or freshly dead with
    its standby not yet activated)."""
    deadline = time.monotonic() + timeout
    delay = 0.02
    while True:
        for host, port in addresses:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=max(0.1, deadline - time.monotonic())
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # Blocking mode for the session: create_connection left
                # its dial timeout on the socket, and an idle worker
                # must not mistake a quiet data plane for a dead one.
                sock.settimeout(None)
                return sock
            except OSError:
                continue
        if time.monotonic() >= deadline:
            raise OSError(
                f"no coordinator reachable at any of {list(addresses)}"
            )
        time.sleep(delay)
        delay = min(delay * 2, 0.25)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    stop: threading.Event,
    worker_id: int,
    interval: float,
    faults,
    telemetry: Telemetry,
) -> None:
    """Renew the lease every *interval* seconds until stopped.

    The partition fault fires *before* the send and *outside* the send
    lock, so a hanging heartbeat never blocks the data plane: shard
    acks keep flowing while the lease quietly lapses — the coordinator
    sees a partitioned node, re-issues, and this node's late acks are
    dropped as stale.
    """
    seq = 0
    while not stop.wait(timeout=interval):
        try:
            if faults is not None:
                faults.fire("cluster.partition", worker=worker_id)
            if stop.is_set():
                return  # session ended while a fault held us
            with send_lock:
                write_frame(sock, encode_heartbeat(worker_id, seq))
            telemetry.incr("cluster.heartbeats_sent")
            seq += 1
        except OSError:
            return  # connection gone; the main loop is exiting too


def worker_main(
    host: str,
    port: int,
    connect_timeout: float = 10.0,
    tag: str = "",
    failover=(),
) -> None:
    """Run one worker node until a terminal STOP (or no coordinator is
    reachable).  *failover* lists extra ``(host, port)`` coordinator
    addresses — a standby host's worker port — tried in order after the
    primary on every dial."""
    addresses = [(host, int(port))] + [(h, int(p)) for h, p in failover]
    telemetry = Telemetry()
    state = {"cache": None}  # the PlanCache, shared across sessions
    sessions = 0
    while True:
        try:
            sock = _connect(addresses, connect_timeout)
        except OSError:
            return  # nobody to serve: the fleet is gone
        reason = "lost"
        try:
            reason = _session(sock, tag, telemetry, state)
        except (ConnectionError, OSError, EOFError, ProtocolError):
            reason = "lost"  # coordinator died mid-session: re-dial
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already broken
                pass
        if reason != "lost":
            return
        sessions += 1
        telemetry.incr("worker.rejoins")


def _session(
    sock: socket.socket, tag: str, telemetry: Telemetry, state: dict
) -> str:
    """One REGISTER → WELCOME → serve cycle; returns the STOP reason."""
    import os

    send_lock = threading.Lock()
    stop_heartbeats = threading.Event()
    try:
        write_frame(sock, encode_register(os.getpid(), tag))
        ftype, _, payload = read_frame(sock)
        if ftype != ClusterFrame.WELCOME:
            raise ProtocolError(
                f"expected WELCOME after registration, got frame type {ftype}"
            )
        welcome = decode_json(payload)
        worker_id = int(welcome["worker"])
        interval = float(welcome["heartbeat_interval"])
        faults = None
        if welcome.get("faults"):
            from repro.runtime.resilience.faults import FaultPlan

            faults = FaultPlan.from_json(welcome["faults"])
        if state["cache"] is None:
            store = None
            if welcome.get("plan_store_dir"):
                from repro.runtime.durable import PlanStore

                store = PlanStore(
                    welcome["plan_store_dir"], telemetry=telemetry,
                    faults=faults,
                )
            from repro.runtime.plan_cache import PlanCache

            state["cache"] = PlanCache(telemetry=telemetry, store=store)
        heartbeats = threading.Thread(
            target=_heartbeat_loop,
            args=(
                sock, send_lock, stop_heartbeats, worker_id, interval,
                faults, telemetry,
            ),
            name=f"repro-cluster-heartbeat-{worker_id}",
            daemon=True,
        )
        heartbeats.start()
        return _serve(
            sock, send_lock, worker_id, state["cache"], faults, telemetry
        )
    finally:
        stop_heartbeats.set()


def _serve(
    sock: socket.socket,
    send_lock: threading.Lock,
    worker_id: int,
    cache,
    faults,
    telemetry: Telemetry,
) -> str:
    """The data plane: shards in, solved bytes (or errors) out.

    Returns the STOP frame's reason (``lost`` sends the caller back to
    the dial loop; anything else is terminal)."""
    import numpy as np

    while True:
        ftype, _, payload = read_frame(sock)
        if ftype == ClusterFrame.STOP:
            # The farewell snapshot lets the coordinator fold this
            # node's telemetry into the fleet view, mirroring the
            # single-host workers' final snapshots.
            reason = decode_stop(payload)
            try:
                with send_lock:
                    write_frame(
                        sock, encode_snapshot(-1, telemetry.snapshot())
                    )
            except OSError:
                pass  # a dying coordinator may not read the farewell
            return reason
        if ftype == ClusterFrame.SNAP_REQ:
            req = int(decode_json(payload)["req"])
            with send_lock:
                write_frame(sock, encode_snapshot(req, telemetry.snapshot()))
            continue
        if ftype != ClusterFrame.SHARD:
            raise ProtocolError(f"unexpected frame type {ftype} on a worker")
        task_id, key, shard, col0, col1, epoch = decode_shard(payload)
        try:
            if faults is not None:
                faults.fire(
                    "cluster.node_kill",
                    worker=worker_id,
                    key=key,
                    cols=(col0, col1),
                )
                faults.fire(
                    "cluster.shard_slow",
                    worker=worker_id,
                    key=key,
                    cols=(col0, col1),
                )
            shard = np.ascontiguousarray(shard)
            builder = cache.builder(key)
            telemetry.incr("worker.shards_solved")
            telemetry.observe("worker.shard_cols", col1 - col0)
            with telemetry.span("worker.shard_solve"):
                builder.solve(shard, in_place=True)
            with send_lock:
                write_frame(sock, encode_shard_ok(task_id, shard, epoch=epoch))
        except (ConnectionError, OSError):
            raise
        except BaseException as exc:  # noqa: BLE001 - ship to coordinator
            telemetry.incr("worker.shard_failures")
            with send_lock:
                write_frame(sock, encode_shard_err(task_id, exc, epoch=epoch))


def main(argv=None) -> None:
    """``python -m repro.cluster.worker --host H --port P`` — a remote node."""
    import argparse

    parser = argparse.ArgumentParser(description="repro cluster worker node")
    parser.add_argument("--host", required=True, help="coordinator host")
    parser.add_argument("--port", type=int, required=True, help="coordinator port")
    parser.add_argument("--tag", default="", help="free-form worker label")
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0,
        help="seconds to keep dialing the coordinator",
    )
    parser.add_argument(
        "--failover", action="append", default=[], metavar="HOST:PORT",
        help="extra coordinator address tried after the primary "
        "(a standby host's worker port); repeatable",
    )
    args = parser.parse_args(argv)
    failover = []
    for item in args.failover:
        fhost, _, fport = item.rpartition(":")
        failover.append((fhost, int(fport)))
    worker_main(
        args.host, args.port, connect_timeout=args.connect_timeout,
        tag=args.tag, failover=failover,
    )


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    main()
