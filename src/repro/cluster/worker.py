"""One cluster worker node — connect, register, heartbeat, solve shards.

A worker is a plain process (same host for the loopback tests and the
quick scaling bench, any host in principle — the transport is one TCP
connection).  Its life:

1. connect to the coordinator and send REGISTER;
2. receive WELCOME: its assigned worker id, the lease clock
   (heartbeat interval + lease timeout), the coordinator's serialized
   :class:`~repro.runtime.resilience.faults.FaultPlan`, and the durable
   plan-store directory — so chaos plans and warm-start behave on a
   remote node exactly as they do in a local worker process;
3. start the **heartbeat thread**: one HEARTBEAT frame per interval.
   The ``cluster.partition`` fault site fires *before each send* — a
   ``hang`` spec there mutes heartbeats long enough for the lease to
   lapse while the data plane still flows, which is precisely a
   network partition as the coordinator perceives it;
4. loop on the data plane: each SHARD frame is decoded (raw C-order
   bytes — bitwise what the coordinator held), solved **in place**
   through the worker's own plan cache (factor once per key per node,
   warm-started from the plan store when configured), and the solved
   bytes ride SHARD_OK back.  The ``cluster.node_kill`` site fires
   before each solve: ``crash`` takes the whole node down mid-flight,
   ``slow`` delays the ack past a lease, ``raise`` fails the shard.

The worker never initiates anything except heartbeats: shard routing,
re-issue, and elasticity are entirely the coordinator's business, which
keeps a node's failure model simple — it either answers or it is gone.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.cluster.wire import (
    ClusterFrame,
    decode_json,
    decode_shard,
    encode_heartbeat,
    encode_register,
    encode_shard_err,
    encode_shard_ok,
    encode_snapshot,
)
from repro.runtime.telemetry import Telemetry
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["worker_main", "main"]


def _connect(host: str, port: int, timeout: float) -> socket.socket:
    """Dial the coordinator, retrying until *timeout* (it may still be
    binding when an eagerly spawned worker first dials)."""
    deadline = time.monotonic() + timeout
    delay = 0.02
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 0.25)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    stop: threading.Event,
    worker_id: int,
    interval: float,
    faults,
    telemetry: Telemetry,
) -> None:
    """Renew the lease every *interval* seconds until stopped.

    The partition fault fires *before* the send and *outside* the send
    lock, so a hanging heartbeat never blocks the data plane: shard
    acks keep flowing while the lease quietly lapses — the coordinator
    sees a partitioned node, re-issues, and this node's late acks are
    dropped as stale.
    """
    seq = 0
    while not stop.wait(timeout=interval):
        try:
            if faults is not None:
                faults.fire("cluster.partition", worker=worker_id)
            with send_lock:
                write_frame(sock, encode_heartbeat(worker_id, seq))
            telemetry.incr("cluster.heartbeats_sent")
            seq += 1
        except OSError:
            return  # connection gone; the main loop is exiting too


def worker_main(
    host: str,
    port: int,
    connect_timeout: float = 10.0,
    tag: str = "",
) -> None:
    """Run one worker node until STOP or connection loss."""
    import os

    sock = _connect(host, port, connect_timeout)
    telemetry = Telemetry()
    send_lock = threading.Lock()
    stop_heartbeats = threading.Event()
    try:
        write_frame(sock, encode_register(os.getpid(), tag))
        ftype, _, payload = read_frame(sock)
        if ftype != ClusterFrame.WELCOME:
            raise ProtocolError(
                f"expected WELCOME after registration, got frame type {ftype}"
            )
        welcome = decode_json(payload)
        worker_id = int(welcome["worker"])
        interval = float(welcome["heartbeat_interval"])
        faults = None
        if welcome.get("faults"):
            from repro.runtime.resilience.faults import FaultPlan

            faults = FaultPlan.from_json(welcome["faults"])
        store = None
        if welcome.get("plan_store_dir"):
            from repro.runtime.durable import PlanStore

            store = PlanStore(
                welcome["plan_store_dir"], telemetry=telemetry, faults=faults
            )
        from repro.runtime.plan_cache import PlanCache

        cache = PlanCache(telemetry=telemetry, store=store)
        heartbeats = threading.Thread(
            target=_heartbeat_loop,
            args=(
                sock, send_lock, stop_heartbeats, worker_id, interval,
                faults, telemetry,
            ),
            name=f"repro-cluster-heartbeat-{worker_id}",
            daemon=True,
        )
        heartbeats.start()
        _serve(sock, send_lock, worker_id, cache, faults, telemetry)
    except (ConnectionError, OSError, EOFError):
        pass  # coordinator gone; nothing left to serve
    finally:
        stop_heartbeats.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - already broken
            pass


def _serve(
    sock: socket.socket,
    send_lock: threading.Lock,
    worker_id: int,
    cache,
    faults,
    telemetry: Telemetry,
) -> None:
    """The data plane: shards in, solved bytes (or errors) out."""
    import numpy as np

    while True:
        ftype, _, payload = read_frame(sock)
        if ftype == ClusterFrame.STOP:
            # The farewell snapshot lets the coordinator fold this
            # node's telemetry into the fleet view, mirroring the
            # single-host workers' final snapshots.
            with send_lock:
                write_frame(sock, encode_snapshot(-1, telemetry.snapshot()))
            return
        if ftype == ClusterFrame.SNAP_REQ:
            req = int(decode_json(payload)["req"])
            with send_lock:
                write_frame(sock, encode_snapshot(req, telemetry.snapshot()))
            continue
        if ftype != ClusterFrame.SHARD:
            raise ProtocolError(f"unexpected frame type {ftype} on a worker")
        task_id, key, shard, col0, col1 = decode_shard(payload)
        try:
            if faults is not None:
                faults.fire(
                    "cluster.node_kill",
                    worker=worker_id,
                    key=key,
                    cols=(col0, col1),
                )
            shard = np.ascontiguousarray(shard)
            builder = cache.builder(key)
            telemetry.incr("worker.shards_solved")
            telemetry.observe("worker.shard_cols", col1 - col0)
            with telemetry.span("worker.shard_solve"):
                builder.solve(shard, in_place=True)
            with send_lock:
                write_frame(sock, encode_shard_ok(task_id, shard))
        except (ConnectionError, OSError):
            raise
        except BaseException as exc:  # noqa: BLE001 - ship to coordinator
            telemetry.incr("worker.shard_failures")
            with send_lock:
                write_frame(sock, encode_shard_err(task_id, exc))


def main(argv=None) -> None:
    """``python -m repro.cluster.worker --host H --port P`` — a remote node."""
    import argparse

    parser = argparse.ArgumentParser(description="repro cluster worker node")
    parser.add_argument("--host", required=True, help="coordinator host")
    parser.add_argument("--port", type=int, required=True, help="coordinator port")
    parser.add_argument("--tag", default="", help="free-form worker label")
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0,
        help="seconds to keep dialing the coordinator",
    )
    args = parser.parse_args(argv)
    worker_main(
        args.host, args.port, connect_timeout=args.connect_timeout, tag=args.tag
    )


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    main()
