"""The cluster executor — a worker fleet behind the sharded-solve API.

:class:`ClusterExecutor` is what ``EngineConfig(executor="cluster")``
plugs into the :class:`~repro.runtime.engine.SolveEngine`: the same
``solve_array`` surface as the single-host
:class:`~repro.runtime.sharded.ShardedExecutor`, with the worker pool
generalized to TCP nodes behind a :class:`~repro.cluster.coordinator.Coordinator`.
``supports_shm`` is False — there is no shared-memory rung across hosts,
so the engine routes every batch through the raw-byte wire transport
without ever attempting (or logging) an shm fallback.

The executor owns its local fleet: it spawns ``num_workers`` loopback
worker processes (``spawn`` start method — the coordinator's threads are
already running, and a forked child could inherit a mid-held lock),
respawns ones that die under a restart budget, and — when the config
carries an :class:`~repro.cluster.config.ElasticPolicy` — runs an
:class:`~repro.cluster.elastic.ElasticController` that grows and shrinks
the fleet on the coordinator's backlog signal.  Remote nodes started by
hand (``python -m repro.cluster.worker``) join the same fleet; the
executor simply does not own their processes.

Two resilience refinements on top of respawn:

* **Rejoin grace** — a lost-but-alive owned worker (a healed partition)
  is given ``rejoin_grace`` seconds to re-dial and re-REGISTER under a
  fresh worker id before the executor falls back to the old
  zombie/respawn handling; a transient partition shrinks the fleet only
  transiently and costs no respawn budget
  (``cluster.workers_rejoined``).

* **Standby takeover** — with ``ClusterConfig(standby=True)`` the
  coordinator itself moves out-of-process behind an
  :class:`~repro.cluster.ha.HAFleet`: a journaled primary plus a warm
  standby, SIGKILL-survivable, with the engine-facing futures never
  observing a takeover.  Workers are spawned with the two hosts' worker
  ports as their dial/failover list and re-dial on their own across a
  takeover, so the executor only respawns workers whose *process* died.

The default ``live_wait_timeout`` scales with the transport: where the
single-host pool waits 30 s on same-host pipes, the cluster waits at
least four lease timeouts — a respawning TCP worker has to boot a
process, dial, and register before its first shard.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.coordinator import Coordinator
from repro.distributed.decompose import Decomposition
from repro.runtime.sharded import _LIVE_WAIT_TIMEOUT, WorkerError
from repro.runtime.shm import ShmError
from repro.runtime.telemetry import Telemetry

__all__ = ["ClusterExecutor"]


class ClusterExecutor:
    """Column-shard batches over a TCP worker fleet.

    Parameters
    ----------
    config:
        The fleet's :class:`ClusterConfig`.
    num_workers:
        Local loopback workers to spawn (the initial fleet; elastic
        scaling moves it between the policy's bounds).
    telemetry:
        Engine-side :class:`Telemetry`; worker-side telemetry merges in
        through :meth:`worker_snapshots`.
    faults:
        Optional :class:`~repro.runtime.resilience.faults.FaultPlan`;
        serialized to every node (``cluster.partition`` /
        ``cluster.node_kill`` / ``cluster.shard_slow`` fire worker-side,
        ``cluster.coordinator_kill`` in the HA hosts,
        ``sharded.dispatch`` parent-side).
    restart_budget:
        Owned-worker respawns allowed before the fleet is declared
        exhausted (the engine then degrades to threads, exactly as it
        does for the single-host pool).
    plan_store_dir:
        Durable plan-store directory shipped to every node, so remote
        workers warm-start like local ones.
    live_wait_timeout:
        Seconds a dispatch waits for a live worker; ``None`` scales the
        single-host default with the lease clock.
    """

    #: no shared-memory rung across hosts — the engine skips the lease
    #: path entirely instead of logging an shm fallback per batch
    supports_shm = False

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        num_workers: int = 2,
        telemetry: Optional[Telemetry] = None,
        faults=None,
        restart_budget: int = 8,
        plan_store_dir: Optional[str] = None,
        live_wait_timeout: Optional[float] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        self.config = config if config is not None else ClusterConfig()
        self.num_workers = int(num_workers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.faults = faults
        self.restart_budget = int(restart_budget)
        self.live_wait_timeout = (
            max(_LIVE_WAIT_TIMEOUT, 4.0 * self.config.lease_timeout)
            if live_wait_timeout is None
            else float(live_wait_timeout)
        )
        self._lock = threading.Lock()
        self._restarts_used = 0
        self._exhausted = False
        self._closed = False
        self._owned: Dict[int, mp.process.BaseProcess] = {}  # pid -> proc
        #: lost-but-alive owned processes (partitioned nodes) awaiting reap
        self._zombies: List[mp.process.BaseProcess] = []
        #: lost-but-alive pids inside their rejoin grace window
        self._rejoining: Dict[int, threading.Timer] = {}
        self._final_snapshots: List[dict] = []
        self._ctx = mp.get_context("spawn")
        self.ha = None
        self.coordinator: Optional[Coordinator] = None
        if self.config.standby:
            from repro.cluster.ha import HAFleet

            self.ha = HAFleet(
                self.config,
                telemetry=self.telemetry,
                faults_json=faults.to_json() if faults is not None else None,
                plan_store_dir=plan_store_dir,
                live_wait_timeout=self.live_wait_timeout,
                ctx=self._ctx,
            )
            self._ha_watcher = threading.Thread(
                target=self._ha_watch_loop, name="repro-ha-watch", daemon=True
            )
        else:
            self.coordinator = Coordinator(
                self.config,
                telemetry=self.telemetry,
                faults=faults,
                live_wait_timeout=self.live_wait_timeout,
                plan_store_dir=plan_store_dir,
                on_worker_lost=self._worker_lost,
                on_worker_registered=self._worker_registered,
            )
            self.coordinator.start()
        for index in range(self.num_workers):
            self.spawn_worker(tag=f"local-{index}")
        if self.ha is not None:
            self._ha_watcher.start()
        self._elastic = None
        if self.config.elastic is not None:
            from repro.cluster.elastic import ElasticController

            self._elastic = ElasticController(
                self, self.config.elastic, telemetry=self.telemetry
            )
            self._elastic.start()

    # -- fleet management ------------------------------------------------

    def _worker_addresses(self) -> List[tuple]:
        if self.ha is not None:
            return self.ha.worker_addresses()
        return [self.coordinator.address]

    def spawn_worker(self, tag: str = "") -> int:
        """Start one owned loopback worker and wait for its registration."""
        from repro.cluster.worker import worker_main

        addresses = self._worker_addresses()
        host, port = addresses[0]
        before = self.live_count()
        proc = self._ctx.Process(
            target=worker_main,
            args=(host, port),
            kwargs={
                "connect_timeout": self.config.connect_timeout,
                "tag": tag,
                "failover": tuple(addresses[1:]),
            },
            daemon=True,
            name=f"repro-cluster-worker{'-' + tag if tag else ''}",
        )
        proc.start()
        with self._lock:
            self._owned[proc.pid] = proc
        if not self._await_workers(before + 1, self.config.connect_timeout):
            raise WorkerError(
                f"spawned cluster worker (pid {proc.pid}) did not register "
                f"within {self.config.connect_timeout}s"
            )
        return proc.pid

    def _await_workers(self, count: int, timeout: float) -> bool:
        if self.ha is not None:
            return self.ha.await_workers(count, timeout)
        return self.coordinator.await_workers(count, timeout)

    def _worker_registered(self, worker_id: int, pid: Optional[int]) -> None:
        """Coordinator callback: a registration may be a grace rejoin."""
        with self._lock:
            timer = self._rejoining.pop(pid, None) if pid is not None else None
        if timer is not None:
            timer.cancel()
            self.telemetry.incr("cluster.workers_rejoined")
            self.telemetry.event(
                "cluster.worker_rejoined", worker=worker_id, pid=pid
            )

    def _worker_lost(self, worker_id: int, reason: str) -> None:
        """Coordinator callback: grace a live node, respawn a dead one.

        A lost worker whose process is still alive may be a healed
        partition about to re-dial; it keeps its slot in ``_owned`` and
        gets ``rejoin_grace`` seconds to re-REGISTER before the old
        zombie/respawn handling kicks in.
        """
        pid = self.coordinator.worker_pid(worker_id)
        with self._lock:
            if self._closed:
                return
            proc = self._owned.get(pid) if pid is not None else None
            rejoinable = (
                proc is not None
                and self.config.worker_rejoin
                and proc.is_alive()
                and pid not in self._rejoining
            )
            if rejoinable:
                timer = threading.Timer(
                    self.config.rejoin_grace,
                    self._rejoin_expired,
                    args=(pid, reason),
                )
                timer.daemon = True
                self._rejoining[pid] = timer
        if rejoinable:
            timer.start()
            self.telemetry.event(
                "cluster.rejoin_wait", worker=worker_id, pid=pid
            )
            return
        self._handle_loss(pid, reason)

    def _rejoin_expired(self, pid: int, reason: str) -> None:
        with self._lock:
            timer = self._rejoining.pop(pid, None)
        if timer is None:
            return  # it rejoined in time
        self._handle_loss(pid, f"{reason}; no rejoin within grace")

    def _handle_loss(self, pid: Optional[int], reason: str) -> None:
        """Zombie-park or respawn one owned worker under the budget."""
        with self._lock:
            proc = self._owned.pop(pid, None) if pid is not None else None
            if self._closed:
                return
            can_respawn = (
                proc is not None and self._restarts_used < self.restart_budget
            )
            if can_respawn:
                self._restarts_used += 1
        if proc is not None:
            if proc.is_alive():
                # A partitioned node may still be mid-solve.  Killing it
                # now would race its late acknowledgement against the
                # socket teardown; leaving it alive lets the reader drain
                # (and drop) that ack deterministically.  The coordinator
                # already sent it STOP, so it exits on its own once it
                # hears us; shutdown() reaps whatever lingers.
                with self._lock:
                    self._zombies.append(proc)
            else:
                proc.join(timeout=2.0)
        if can_respawn:
            self.telemetry.incr("cluster.workers_respawned")
            try:
                self.spawn_worker(tag=f"respawn-{self._restarts_used}")
            except (WorkerError, OSError) as exc:
                self._declare_exhausted(f"respawn failed: {exc}")
        elif proc is not None and self.live_count() == 0:
            self._declare_exhausted(
                f"restart budget ({self.restart_budget}) spent, "
                f"last owned worker lost: {reason}"
            )

    def _ha_watch_loop(self) -> None:
        """HA mode: respawn owned workers whose *process* died.

        Connection-level losses need no help here — workers re-dial and
        re-REGISTER on their own (across partitions and coordinator
        takeovers alike); only actual process death costs a respawn.
        """
        while not self._closed:
            time.sleep(0.25)
            with self._lock:
                if self._closed:
                    return
                dead = [
                    pid for pid, proc in self._owned.items()
                    if not proc.is_alive()
                ]
            for pid in dead:
                self._handle_loss(pid, "worker process died")

    def _declare_exhausted(self, reason: str) -> None:
        with self._lock:
            if self._exhausted:
                return
            self._exhausted = True
        self.telemetry.incr("cluster.exhausted")
        self.telemetry.event("cluster.exhausted", reason=reason)
        if self.coordinator is not None:
            self.coordinator.fail_parked(reason)

    @property
    def exhausted(self) -> bool:
        """True once the fleet cannot heal (engine degrades to threads)."""
        return self._exhausted

    def live_count(self) -> int:
        if self.ha is not None:
            return self.ha.live_count()
        return self.coordinator.live_count()

    def backlog(self) -> float:
        if self.ha is not None:
            return self.ha.backlog()
        return self.coordinator.backlog()

    def scale_up(self, tag: str = "elastic") -> bool:
        """Add one worker (elastic controller); bounded by the policy."""
        if self._closed or self._exhausted:
            return False
        try:
            self.spawn_worker(tag=tag)
            return True
        except (WorkerError, OSError):
            return False

    def scale_down(self) -> bool:
        """Retire the newest live worker gracefully (elastic controller)."""
        if self.ha is not None:
            return False  # config forbids elastic+standby; nothing to do
        live = self.coordinator.live_workers()
        if not live:
            return False
        return self.coordinator.retire(live[-1])

    def worker_pids(self) -> List[int]:
        """Live workers' OS pids, for node-kill chaos campaigns."""
        if self.ha is not None:
            return self.ha.worker_pids()
        return [
            pid
            for pid in (
                self.coordinator.worker_pid(w)
                for w in self.coordinator.live_workers()
            )
            if pid is not None
        ]

    # -- the sharded-solve surface ---------------------------------------

    def lease(self, shape, dtype):
        """No shared memory across hosts; the engine's ``supports_shm``
        gate means this is never reached in normal operation."""
        raise ShmError(
            "the cluster transport has no shared-memory rung; "
            "shards travel as raw bytes over TCP"
        )

    def release(self, lease) -> None:  # pragma: no cover - symmetry only
        raise ShmError("the cluster transport has no shared-memory rung")

    def _submit(self, key, payload, col0, col1):
        if self.ha is not None:
            return self.ha.submit(key, payload, col0, col1)
        return self.coordinator.submit(key, payload, col0, col1)

    def solve_array(self, key, block: np.ndarray, restore=None) -> None:
        """Solve *block* in place, column-sharded over the live fleet.

        The decomposition is balanced over the workers live *now*
        (elastic fleets change width between batches); any split yields
        bitwise-identical results because the batched kernels treat
        columns independently — the same invariant the single-host
        executor and the coalescer already rely on.  Shards orphaned by
        a node loss mid-call are re-issued by the coordinator without
        this method noticing; *restore* is unnecessary (the coordinator
        retains each shard's verbatim payload) and accepted only for
        interface parity.
        """
        n, cols = block.shape
        if cols == 0:
            return
        ranks = min(max(1, self.live_count()), cols)
        decomp = Decomposition(extent=cols, ranks=ranks)
        self.telemetry.incr("cluster.blocks")
        self.telemetry.observe("cluster.shards_per_block", ranks)
        entries = []
        failure: Optional[BaseException] = None
        with self.telemetry.span("cluster.solve"):
            for shard in range(ranks):
                col0, col1 = decomp.bounds(shard)
                if col1 == col0:
                    continue  # zero-width block (ranks > extent): nothing to do
                self.telemetry.observe("cluster.shard_cols", col1 - col0)
                try:
                    if self.faults is not None:
                        self.faults.fire(
                            "sharded.dispatch", key=key, cols=(col0, col1)
                        )
                    payload = np.ascontiguousarray(block[:, col0:col1])
                    entries.append(
                        (self._submit(key, payload, col0, col1), col0, col1)
                    )
                except BaseException as exc:  # noqa: BLE001 - drain first
                    failure = exc
                    break
            # Await every issued shard even on failure, so no late write
            # can land after this call returns.
            timeout = (
                self.live_wait_timeout * self.config.shard_attempts
                + self.config.lease_timeout
                + 30.0
            )
            for fut, col0, col1 in entries:
                try:
                    block[:, col0:col1] = fut.result(timeout=timeout)
                except FutureTimeoutError:
                    failure = failure or WorkerError(
                        f"cluster shard [{col0}, {col1}) unresolved after "
                        f"{timeout:.0f}s",
                        key=key,
                        cols=(col0, col1),
                    )
                except BaseException as exc:  # noqa: BLE001 - re-raise below
                    failure = failure or exc
        if failure is not None:
            raise failure

    # -- telemetry and lifecycle ----------------------------------------

    def worker_snapshots(self) -> List[dict]:
        """Every node's telemetry snapshot (live + farewell), merged by
        the engine into its fleet view exactly like local workers'."""
        if self._closed:
            return self._final_snapshots
        if self.ha is not None:
            return self.ha.request_snapshots(timeout=self.config.drain_timeout)
        return self.coordinator.request_snapshots(
            timeout=self.config.drain_timeout
        )

    def host_snapshot(self) -> dict:
        """HA mode: the active coordinator host's own telemetry (empty
        for an in-process coordinator, whose counters land directly in
        :attr:`telemetry`)."""
        if self.ha is None:
            return {}
        return self.ha.host_snapshot(timeout=self.config.drain_timeout).get(
            "host", {}
        )

    def shutdown(self) -> None:
        """Stop elasticity, the fleet, and the coordinator; reap procs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned = list(self._owned.values()) + self._zombies
            self._owned.clear()
            self._zombies = []
            timers = list(self._rejoining.values())
            self._rejoining.clear()
        for timer in timers:
            timer.cancel()
        if self._elastic is not None:
            self._elastic.stop()
        if self.ha is not None:
            self._final_snapshots = self.ha.request_snapshots(
                timeout=self.config.drain_timeout
            )
            self.ha.stop()
        else:
            self.coordinator.stop()
            self._final_snapshots = self.coordinator.final_snapshots
        for proc in owned:
            proc.join(timeout=self.config.drain_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=2.0)

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterExecutor(live={self.live_count()}, "
            f"ha={self.ha is not None}, "
            f"restarts={self._restarts_used}/{self.restart_budget}, "
            f"exhausted={self._exhausted}, closed={self._closed})"
        )
