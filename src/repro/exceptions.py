"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
shape/validation problems still also subclass the matching built-ins
(``ValueError`` etc.) for idiomatic use.
"""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or layout."""


class SingularMatrixError(ReproError, ArithmeticError):
    """A factorization encountered an (numerically) singular matrix."""

    def __init__(self, message: str, index: int = -1):
        super().__init__(message)
        #: Zero-based row/pivot index at which the factorization broke down,
        #: or ``-1`` when not applicable.
        self.index = index


class NotPositiveDefiniteError(SingularMatrixError):
    """A Cholesky-type factorization (pbtrf/pttrf) met a non-positive pivot."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance."""

    def __init__(self, message: str, iterations: int = -1, residual: float = float("nan")):
        super().__init__(message)
        #: Number of iterations performed before giving up.
        self.iterations = iterations
        #: Final relative residual norm (worst column for multi-RHS solves).
        self.residual = residual


class BackendError(ReproError, ValueError):
    """An unknown backend / execution-space name was requested."""


class VerificationError(ReproError, ArithmeticError):
    """A solve failed numerical verification (backward error above tolerance).

    Raised by :mod:`repro.verify` checkers and by the runtime engine's
    verify-on-solve sampling when a sampled batch exceeds its
    condition-aware backward-error tolerance.
    """

    def __init__(self, message: str, backward_error: float = float("nan"),
                 tol: float = float("nan")):
        super().__init__(message)
        #: Worst measured normwise backward error of the offending solve.
        self.backward_error = backward_error
        #: The condition-aware tolerance the error was checked against.
        self.tol = tol
