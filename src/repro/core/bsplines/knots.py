"""Break points and periodic knot vectors.

GYSELA's new version introduces non-uniform meshes to resolve steep
equilibrium gradients (§II-A, ref. [30]); the solver stack must therefore
handle arbitrary break-point distributions.  Three non-uniform families are
provided, all smooth deformations of the uniform grid so the resulting
spline matrices stay well conditioned (as the paper's matrices are):

* ``"stretched"`` — points clustered near the domain centre by a sinusoidal
  deformation (a sheath/pedestal-like refinement);
* ``"geometric"`` — cell widths in geometric progression (boundary layer);
* ``"random"`` — uniform grid with bounded random jitter (stress test).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError


def uniform_breakpoints(n_cells: int, xmin: float = 0.0, xmax: float = 1.0) -> np.ndarray:
    """``n_cells + 1`` equally spaced break points spanning ``[xmin, xmax]``."""
    if n_cells < 1:
        raise ShapeError(f"need at least one cell, got {n_cells}")
    if not xmax > xmin:
        raise ShapeError(f"empty domain [{xmin}, {xmax}]")
    return np.linspace(xmin, xmax, n_cells + 1)


def nonuniform_breakpoints(
    n_cells: int,
    xmin: float = 0.0,
    xmax: float = 1.0,
    kind: str = "stretched",
    strength: float = 0.5,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Non-uniform break points on ``[xmin, xmax]``.

    Parameters
    ----------
    kind:
        ``"stretched"`` / ``"geometric"`` / ``"random"`` (see module doc).
    strength:
        Deformation amplitude in ``[0, 1)``; 0 reproduces the uniform grid.
    seed:
        RNG seed for ``kind="random"``.
    """
    if not 0.0 <= strength < 1.0:
        raise ValueError(f"strength must be in [0, 1), got {strength}")
    s = np.linspace(0.0, 1.0, n_cells + 1)
    if kind == "stretched":
        # Monotone for strength < 1: ds/dx = 1 - strength*cos(2 pi s) > 0.
        mapped = s - strength * np.sin(2.0 * np.pi * s) / (2.0 * np.pi)
    elif kind == "geometric":
        ratio = 1.0 + 2.0 * strength / max(n_cells, 1)
        widths = ratio ** np.arange(n_cells)
        mapped = np.concatenate(([0.0], np.cumsum(widths)))
        mapped /= mapped[-1]
    elif kind == "random":
        rng = np.random.default_rng(seed)
        h = 1.0 / n_cells
        jitter = rng.uniform(-0.5 * strength * h, 0.5 * strength * h, n_cells + 1)
        jitter[0] = jitter[-1] = 0.0
        mapped = s + jitter
        if np.any(np.diff(mapped) <= 0):  # paranoia for strength ~ 1
            mapped = np.sort(mapped)
    else:
        raise ValueError(f"unknown non-uniform kind {kind!r}")
    breaks = xmin + (xmax - xmin) * mapped
    breaks[0], breaks[-1] = xmin, xmax  # exact endpoints
    return breaks


def make_breakpoints(
    n_cells: int,
    uniform: bool,
    xmin: float = 0.0,
    xmax: float = 1.0,
    kind: str = "stretched",
    strength: float = 0.5,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Dispatch between :func:`uniform_breakpoints` and
    :func:`nonuniform_breakpoints` on the *uniform* flag."""
    if uniform:
        return uniform_breakpoints(n_cells, xmin, xmax)
    return nonuniform_breakpoints(n_cells, xmin, xmax, kind=kind,
                                  strength=strength, seed=seed)


def periodic_knots(breaks: np.ndarray, degree: int) -> np.ndarray:
    """Periodic knot vector for break points *breaks* and *degree*.

    Returns an array ``t`` of length ``n_cells + 2*degree + 1`` such that
    ``t[j + degree] = breaks[j]`` for ``0 <= j <= n_cells`` and the
    ``degree`` knots on either side are the periodic images
    ``breaks[n-j] - L`` / ``breaks[j] + L``.
    """
    breaks = np.asarray(breaks, dtype=np.float64)
    if breaks.ndim != 1 or breaks.size < 2:
        raise ShapeError("breaks must be a 1-D array with at least 2 points")
    if np.any(np.diff(breaks) <= 0.0):
        raise ShapeError("breaks must be strictly increasing")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    n = breaks.size - 1
    if n < degree + 1:
        raise ShapeError(
            f"periodic degree-{degree} splines need at least {degree + 1} "
            f"cells, got {n}"
        )
    period = breaks[-1] - breaks[0]
    t = np.empty(n + 2 * degree + 1)
    t[degree : n + degree + 1] = breaks
    t[:degree] = breaks[n - degree : n] - period
    t[n + degree + 1 :] = breaks[1 : degree + 1] + period
    return t
