"""Periodic B-spline spaces, interpolation matrices and their structure.

This subpackage owns the *numerical* content of the paper's §II:

* :mod:`~repro.core.bsplines.knots` — break-point generators (uniform and
  the non-uniform meshes the new GYSELA needs for steep-gradient regions)
  and periodic knot-vector construction;
* :mod:`~repro.core.bsplines.basis` — Cox-de Boor evaluation of B-spline
  basis functions and derivatives, scalar and vectorized;
* :mod:`~repro.core.bsplines.space` — :class:`PeriodicBSplines`: a degree-d
  periodic spline space with Greville interpolation points and collocation
  (spline) matrix assembly (the matrix of Fig. 1);
* :mod:`~repro.core.bsplines.classify` — structural classification of the
  spline matrix reproducing Table I (which LAPACK solver fits which
  degree/uniformity combination);
* :mod:`~repro.core.bsplines.blocks` — the cyclic-band → Schur block
  splitting ``A = [[Q, γ], [λ, δ]]`` of Eq. (3).
"""

from repro.core.bsplines.knots import (
    make_breakpoints,
    nonuniform_breakpoints,
    periodic_knots,
    uniform_breakpoints,
)
from repro.core.bsplines.basis import eval_basis, eval_basis_derivs, find_cell
from repro.core.bsplines.space import PeriodicBSplines
from repro.core.bsplines.nonperiodic import ClampedBSplines, clamped_knots
from repro.core.bsplines.classify import MatrixType, classify_matrix, expected_type
from repro.core.bsplines.blocks import CyclicBlocks, cyclic_bandwidth, split_cyclic_banded

__all__ = [
    "uniform_breakpoints",
    "nonuniform_breakpoints",
    "make_breakpoints",
    "periodic_knots",
    "find_cell",
    "eval_basis",
    "eval_basis_derivs",
    "PeriodicBSplines",
    "ClampedBSplines",
    "clamped_knots",
    "MatrixType",
    "classify_matrix",
    "expected_type",
    "CyclicBlocks",
    "cyclic_bandwidth",
    "split_cyclic_banded",
]
