"""Cox-de Boor evaluation of B-spline basis functions.

Scalar and batch-vectorized variants of the classic algorithm (Piegl &
Tiller, "The NURBS Book", A2.2/A2.3).  Given a knot vector ``t`` and a
*span* index ``s`` with ``t[s] <= x < t[s+1]``, the ``degree + 1`` basis
functions that are non-zero at ``x`` are ``B_{s-degree} .. B_s`` (indices
in knot-array convention, i.e. ``B_j`` supported on ``[t[j], t[j+d+1])``).

The vectorized variant carries an array of evaluation points through the
same recurrence — each recurrence level is a handful of fused array
operations, which is what makes the semi-Lagrangian evaluator fast enough
to act as the benchmark application.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError


def find_cell(breaks: np.ndarray, x) -> np.ndarray:
    """Cell indices ``i`` with ``breaks[i] <= x < breaks[i+1]``.

    Points exactly at the right domain edge map to the last cell.  Works
    for scalars and arrays; callers must pass x inside ``[breaks[0],
    breaks[-1]]`` (periodic wrapping happens upstream).
    """
    idx = np.searchsorted(breaks, x, side="right") - 1
    return np.clip(idx, 0, breaks.size - 2)


def eval_basis(t: np.ndarray, degree: int, span, x) -> np.ndarray:
    """Non-zero basis values at *x* (span *span*), shape ``(d+1,)`` or
    ``(d+1, len(x))`` for array input.

    ``out[r]`` is the value of ``B_{span - degree + r}`` at ``x``.
    """
    scalar = np.isscalar(x) or np.ndim(x) == 0
    xs = np.atleast_1d(np.asarray(x, dtype=np.float64))
    spans = np.broadcast_to(np.atleast_1d(span), xs.shape).astype(np.int64)
    if spans.shape != xs.shape:
        raise ShapeError("span and x must have matching shapes")
    npts = xs.size
    left = np.empty((degree + 1, npts))
    right = np.empty((degree + 1, npts))
    values = np.zeros((degree + 1, npts))
    values[0] = 1.0
    for j in range(1, degree + 1):
        left[j] = xs - t[spans + 1 - j]
        right[j] = t[spans + j] - xs
        saved = np.zeros(npts)
        for r in range(j):
            denom = right[r + 1] + left[j - r]
            temp = values[r] / denom
            values[r] = saved + right[r + 1] * temp
            saved = left[j - r] * temp
        values[j] = saved
    return values[:, 0] if scalar else values


def eval_basis_all_derivs(
    t: np.ndarray, degree: int, span, x, nderiv: int
) -> np.ndarray:
    """Basis values and derivatives up to order *nderiv* at *x*.

    Returns an array of shape ``(nderiv + 1, degree + 1[, len(x)])`` whose
    ``[k, r]`` entry is ``dᵏ/dxᵏ B_{span - degree + r}(x)``.  Orders above
    the degree are identically zero (piecewise polynomials).

    The computation lifts through degrees with the standard relation
    ``(B_j^{p})' = p (B_j^{p-1}/(t_{j+p}−t_j) − B_{j+1}^{p-1}/(t_{j+p+1}−t_{j+1}))``,
    with zero-width knot spans (repeated clamped knots) contributing zero,
    as LAPACK/NURBS conventions prescribe.
    """
    if nderiv < 0:
        raise ValueError(f"nderiv must be >= 0, got {nderiv}")
    scalar = np.isscalar(x) or np.ndim(x) == 0
    xs = np.atleast_1d(np.asarray(x, dtype=np.float64))
    spans = np.broadcast_to(np.atleast_1d(span), xs.shape).astype(np.int64)
    npts = xs.size
    kmax = min(nderiv, degree)
    # level[k][p] holds the k-th derivatives of the degree-p basis
    # functions non-zero at x (length p + 1 along the basis axis).
    level = {}
    for p in range(degree - kmax, degree + 1):
        level[(0, p)] = eval_basis(t, p, spans, xs)
    for k in range(1, kmax + 1):
        for p in range(degree - kmax + k, degree + 1):
            prev = level[(k - 1, p - 1)]  # (p, npts): bases span-(p-1)..span
            out = np.zeros((p + 1, npts))
            for r in range(p + 1):
                j = spans - p + r  # global index of B_j^p
                acc = np.zeros(npts)
                if r > 0:
                    width = t[j + p] - t[j]
                    np.divide(prev[r - 1], width, out=acc, where=width != 0.0)
                if r < p:
                    width = t[j + p + 1] - t[j + 1]
                    term = np.zeros(npts)
                    np.divide(prev[r], width, out=term, where=width != 0.0)
                    acc -= term
                out[r] = p * acc
            level[(k, p)] = out
    result = np.zeros((nderiv + 1, degree + 1, npts))
    for k in range(kmax + 1):
        result[k] = level[(k, degree)]
    return result[:, :, 0] if scalar else result


def eval_basis_derivs(
    t: np.ndarray, degree: int, span, x
) -> Tuple[np.ndarray, np.ndarray]:
    """Values *and first derivatives* of the non-zero basis functions at *x*.

    Returns ``(values, derivs)``, each shaped like :func:`eval_basis`'s
    output.  Derivatives follow the standard reduction
    ``B'_j = d·( B̃_j/(t[j+d]−t[j]) − B̃_{j+1}/(t[j+d+1]−t[j+1]) )`` where
    ``B̃`` are the degree-(d−1) functions.
    """
    scalar = np.isscalar(x) or np.ndim(x) == 0
    xs = np.atleast_1d(np.asarray(x, dtype=np.float64))
    spans = np.broadcast_to(np.atleast_1d(span), xs.shape).astype(np.int64)
    values = eval_basis(t, degree, spans, xs)
    derivs = np.zeros_like(values)
    if degree >= 1:
        lower = eval_basis(t, degree - 1, spans, xs)  # (d, npts): B̃_{span-d+1..span}
        for r in range(degree + 1):
            j = spans - degree + r  # global index of B_j
            acc = np.zeros(xs.size)
            if r > 0:
                acc += lower[r - 1] / (t[j + degree] - t[j])
            if r < degree:
                acc -= lower[r] / (t[j + degree + 1] - t[j + 1])
            derivs[r] = degree * acc
    if scalar:
        return values[:, 0], derivs[:, 0]
    return values, derivs
