"""Cyclic-band block splitting — Eq. (3) of the paper.

The periodic spline matrix is banded *up to corner entries* from the wrap
(Fig. 1).  The Schur-complement direct method peels off the last ``b``
rows/columns, where ``b`` is the cyclic (corner) bandwidth, so that

* ``Q = A[:m, :m]`` is strictly banded (no wrap) — solved by the dedicated
  solver of Table I,
* ``γ = A[:m, m:]`` and ``λ = A[m:, :m]`` are the sparse corner blocks,
* ``δ = A[m:, m:]`` is a tiny dense block,

with ``m = n - b``.  For uniform degree 3 this gives the paper's shapes:
``λ`` is ``(1, 999)`` with 2 non-zeros and ``γ`` is ``(999, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError


def cyclic_bandwidth(a: np.ndarray, tol: float = 1e-12) -> int:
    """Half-bandwidth of a cyclic band matrix.

    The cyclic distance between row ``i`` and column ``j`` is
    ``min(|i - j|, n - |i - j|)``; the cyclic bandwidth is its maximum over
    non-zero entries.  For the periodic degree-d spline matrices this is
    ``ceil(d/2)``-ish and, crucially, equals the corner width ``b``.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected square matrix, got {a.shape}")
    n = a.shape[0]
    rows, cols = np.nonzero(np.abs(a) > tol)
    if rows.size == 0:
        return 0
    dist = np.abs(rows - cols)
    return int(np.max(np.minimum(dist, n - dist)))


@dataclass
class CyclicBlocks:
    """The four blocks of Eq. (3), plus their geometry."""

    q: np.ndarray  # (m, m) banded, no wrap
    gamma: np.ndarray  # (m, b) sparse corner
    lam: np.ndarray  # (b, m) sparse corner
    delta: np.ndarray  # (b, b) dense
    corner_width: int  # b

    @property
    def n(self) -> int:
        return self.q.shape[0] + self.corner_width


def split_cyclic_banded(a: np.ndarray, tol: float = 1e-12) -> CyclicBlocks:
    """Split cyclic-banded *a* into the blocks of Eq. (3).

    ``b`` is chosen as the cyclic bandwidth, which guarantees ``Q`` carries
    no wrap-around entries.  Degenerate sizes (``b >= n``) raise — such a
    matrix is dense in the cyclic sense and should go through ``getrs``
    directly.
    """
    n = a.shape[0]
    b = cyclic_bandwidth(a, tol=tol)
    if b == 0:
        b = 1  # diagonal matrix: keep the block structure non-degenerate
    if 2 * b >= n:
        raise ShapeError(
            f"cyclic bandwidth {b} is not small against matrix size {n}: "
            "matrix is not meaningfully banded; use a dense solver"
        )
    m = n - b
    q = np.ascontiguousarray(a[:m, :m])
    gamma = np.ascontiguousarray(a[:m, m:])
    lam = np.ascontiguousarray(a[m:, :m])
    delta = np.ascontiguousarray(a[m:, m:])
    # Sanity: Q must now be strictly banded with bandwidth <= b + (b-1)?
    # For a cyclic band matrix of width b, the principal (m, m) block has
    # plain bandwidth exactly b — entries beyond that would mean the input
    # was not cyclic-banded with the computed width.
    rows, cols = np.nonzero(np.abs(q) > tol)
    if rows.size and np.max(np.abs(rows - cols)) > b:
        raise ShapeError(
            "input matrix has entries outside its cyclic band; "
            "split_cyclic_banded expects a cyclic band matrix"
        )
    return CyclicBlocks(q=q, gamma=gamma, lam=lam, delta=delta, corner_width=b)
