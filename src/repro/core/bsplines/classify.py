"""Structural classification of spline matrices — Table I, computed.

The paper's Table I asserts which LAPACK solver fits the Schur block ``Q``
for each (degree, uniformity) combination.  Rather than hard-coding that
table we *measure* it: :func:`classify_matrix` inspects symmetry, positive
definiteness (by attempting our own Cholesky) and bandwidth, and maps the
structure to the dedicated solver.  ``benchmarks/bench_table1_matrix_types``
regenerates the table by classifying actually-assembled matrices, and the
test suite asserts the paper's entries hold.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import NotPositiveDefiniteError, ShapeError, SingularMatrixError
from repro.kbatched.band import dense_band_widths, spd_dense_to_band_lower
from repro.kbatched.pbtrf import serial_pbtrf


class MatrixType(enum.Enum):
    """Structure classes with their dedicated LAPACK solvers (Table I)."""

    PDS_TRIDIAGONAL = "pttrs"
    PDS_BANDED = "pbtrs"
    GENERAL_BANDED = "gbtrs"
    GENERAL = "getrs"

    @property
    def lapack_solver(self) -> str:
        """The LAPACK solve routine handling this class (Table I, parens)."""
        return self.value

    @property
    def lapack_factorization(self) -> str:
        return {"pttrs": "pttrf", "pbtrs": "pbtrf",
                "gbtrs": "gbtrf", "getrs": "getrf"}[self.value]


def _is_positive_definite(a: np.ndarray, kd: int) -> bool:
    """Attempt our band Cholesky; success certifies positive definiteness."""
    try:
        serial_pbtrf(spd_dense_to_band_lower(a, kd))
        return True
    except (NotPositiveDefiniteError, SingularMatrixError):
        return False


def classify_matrix(
    a: np.ndarray,
    tol: float = 1e-12,
    banded_fraction: float = 0.5,
) -> MatrixType:
    """Classify a dense square matrix into a :class:`MatrixType`.

    Parameters
    ----------
    tol:
        Absolute threshold below which entries count as structural zeros
        (assembly noise from basis evaluation is ~1e-17).
    banded_fraction:
        A matrix only counts as *banded* if its bandwidth is below this
        fraction of its size — a "banded" matrix with ``k ≈ n`` would gain
        nothing from band solvers.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {a.shape}")
    n = a.shape[0]
    kl, ku = dense_band_widths(a, tol=tol)
    banded = max(kl, ku) <= max(1, int(banded_fraction * n))
    symmetric = kl == ku and np.allclose(a, a.T, atol=tol)
    if symmetric and banded:
        if _is_positive_definite(a, kl):
            return MatrixType.PDS_TRIDIAGONAL if kl <= 1 else MatrixType.PDS_BANDED
    if banded:
        return MatrixType.GENERAL_BANDED
    return MatrixType.GENERAL


def expected_type(degree: int, uniform: bool) -> MatrixType:
    """The paper's Table I entry for the sub-matrix ``Q``.

    Used by tests to assert that classification of real assembled matrices
    matches the published table.
    """
    if not uniform:
        return MatrixType.GENERAL_BANDED
    return MatrixType.PDS_TRIDIAGONAL if degree == 3 else MatrixType.PDS_BANDED
