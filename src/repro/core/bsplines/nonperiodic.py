"""Non-periodic (clamped / open-knot) B-spline spaces.

GYSELA's non-periodic directions (radial profiles, the sheath simulations
of the paper's ref. [30]) interpolate on *clamped* B-splines: the knot
vector repeats the end break points ``degree + 1`` times, giving
``n_cells + degree`` basis functions whose Greville abscissae include the
domain end points.  The collocation matrix is then **plain banded** (no
cyclic corners), so the builder solves it directly with the Table-I band
solvers — no Schur complement needed.  This class mirrors
:class:`~repro.core.bsplines.space.PeriodicBSplines`' interface so the
builder and evaluator work with either space.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.bsplines.basis import eval_basis, eval_basis_derivs, find_cell
from repro.exceptions import ShapeError


def clamped_knots(breaks: np.ndarray, degree: int) -> np.ndarray:
    """Open (clamped) knot vector: end break points repeated ``d+1`` times."""
    breaks = np.asarray(breaks, dtype=np.float64)
    if breaks.ndim != 1 or breaks.size < 2:
        raise ShapeError("breaks must be a 1-D array with at least 2 points")
    if np.any(np.diff(breaks) <= 0.0):
        raise ShapeError("breaks must be strictly increasing")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    return np.concatenate([
        np.full(degree, breaks[0]),
        breaks,
        np.full(degree, breaks[-1]),
    ])


class ClampedBSplines:
    """A clamped B-spline space of given *degree* over *breaks*.

    ``nbasis = n_cells + degree``; basis ``j`` is supported on
    ``[t_j, t_{j+d+1})`` of the open knot vector.  Unlike the periodic
    space, evaluation outside the domain clamps to the end points (there
    is no periodic image to wrap to).
    """

    def __init__(self, breaks: np.ndarray, degree: int):
        self.breaks = np.asarray(breaks, dtype=np.float64)
        self.degree = int(degree)
        self.knots = clamped_knots(self.breaks, self.degree)
        self.ncells = self.breaks.size - 1
        self.nbasis = self.ncells + self.degree
        self.xmin = float(self.breaks[0])
        self.xmax = float(self.breaks[-1])
        self.period = None  # non-periodic

    def wrap(self, x) -> np.ndarray:
        """Clamp *x* into the domain (the non-periodic analogue of wrap)."""
        return np.clip(np.asarray(x, dtype=np.float64), self.xmin, self.xmax)

    @cached_property
    def greville(self) -> np.ndarray:
        """Greville abscissae ``g_j = mean(t[j+1 .. j+d])`` — ``nbasis``
        points including both domain end points."""
        d = self.degree
        pts = np.empty(self.nbasis)
        for j in range(self.nbasis):
            pts[j] = np.mean(self.knots[j + 1 : j + d + 1])
        return pts

    @cached_property
    def quadrature_weights(self) -> np.ndarray:
        """Exact integrals of the basis functions over the domain:
        ``∫ B_j = (t_{j+d+1} − t_j) / (d + 1)`` on the clamped knots."""
        d = self.degree
        j = np.arange(self.nbasis)
        return (self.knots[j + d + 1] - self.knots[j]) / (d + 1)

    def eval_nonzero_basis(self, x):
        """``(indices, values)`` of the ``d+1`` non-zero basis functions.

        Indices are plain (no modulo); points outside the domain are
        clamped first.
        """
        xw = self.wrap(x)
        cells = find_cell(self.breaks, xw)
        spans = cells + self.degree
        values = eval_basis(self.knots, self.degree, spans, xw)
        offsets = np.arange(self.degree + 1, dtype=np.int64)
        if np.ndim(cells) == 0:
            indices = int(cells) + offsets
        else:
            indices = np.asarray(cells)[None, :] + offsets[:, None]
        return indices, values

    def eval_nonzero_basis_derivs(self, x):
        """Like :meth:`eval_nonzero_basis` plus first derivatives."""
        xw = self.wrap(x)
        cells = find_cell(self.breaks, xw)
        spans = cells + self.degree
        values, derivs = eval_basis_derivs(self.knots, self.degree, spans, xw)
        offsets = np.arange(self.degree + 1, dtype=np.int64)
        if np.ndim(cells) == 0:
            indices = int(cells) + offsets
        else:
            indices = np.asarray(cells)[None, :] + offsets[:, None]
        return indices, values, derivs

    def collocation_matrix(self, points: np.ndarray = None) -> np.ndarray:
        """Dense ``(nbasis, nbasis)`` banded collocation matrix at the
        Greville points (or at custom *points*)."""
        pts = self.greville if points is None else np.asarray(points, dtype=np.float64)
        if pts.ndim != 1:
            raise ShapeError(f"points must be 1-D, got shape {pts.shape}")
        a = np.zeros((pts.size, self.nbasis))
        indices, values = self.eval_nonzero_basis(pts)
        rows = np.broadcast_to(np.arange(pts.size)[None, :], indices.shape)
        np.add.at(a, (rows.ravel(), indices.ravel()), values.ravel())
        return a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClampedBSplines(degree={self.degree}, ncells={self.ncells}, "
            f"domain=[{self.xmin}, {self.xmax}])"
        )
