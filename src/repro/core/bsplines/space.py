"""Periodic B-spline space: basis bookkeeping, Greville points and the
collocation (spline) matrix of Eq. (2) / Fig. 1.

A degree-``d`` periodic spline space over ``n`` cells has exactly ``n``
independent basis functions: the ``n + d`` plain B-splines living on the
periodically extended knot vector are identified modulo ``n``.  The
interpolation conditions are placed at the **Greville abscissae** (the knot
averages), which for uniform odd degrees coincide with the break points and
for even degrees with the cell mid-points — exactly the convention of the
paper's DDC spline builder.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.bsplines.basis import eval_basis, eval_basis_derivs, find_cell
from repro.core.bsplines.knots import periodic_knots
from repro.exceptions import ShapeError


class PeriodicBSplines:
    """A periodic B-spline space of given *degree* over *breaks*.

    Parameters
    ----------
    breaks:
        Strictly increasing break points; ``breaks[-1] - breaks[0]`` is the
        period and the last point is identified with the first.
    degree:
        Spline degree (the paper evaluates 3, 4 and 5; any ``>= 1`` works).
    """

    def __init__(self, breaks: np.ndarray, degree: int):
        self.breaks = np.asarray(breaks, dtype=np.float64)
        self.degree = int(degree)
        self.knots = periodic_knots(self.breaks, self.degree)
        #: Number of cells == number of periodic basis functions == matrix size.
        self.nbasis = self.breaks.size - 1
        self.xmin = float(self.breaks[0])
        self.xmax = float(self.breaks[-1])
        self.period = self.xmax - self.xmin
        widths = np.diff(self.breaks)
        #: Uniform grids take an O(1) arithmetic cell lookup instead of a
        #: binary search — the hot path of batched evaluation.
        self.is_uniform = bool(np.allclose(widths, widths[0], rtol=1e-12))
        self._h = float(widths[0])

    # -- geometry ---------------------------------------------------------
    @property
    def ncells(self) -> int:
        return self.nbasis

    def wrap(self, x) -> np.ndarray:
        """Map *x* periodically into ``[xmin, xmax)``."""
        return self.xmin + np.mod(np.asarray(x, dtype=np.float64) - self.xmin,
                                  self.period)

    @cached_property
    def greville(self) -> np.ndarray:
        """Greville abscissae ``g_j = mean(t[j+1 .. j+d])`` wrapped into the
        domain — the interpolation points, one per basis function."""
        d, n = self.degree, self.nbasis
        pts = np.empty(n)
        # Periodic basis j is the plain B-spline with support
        # [t_j, t_{j+d+1}); in the stored (offset-by-d) knot array its
        # Greville average t_{j+1}..t_{j+d} sits at slice [j+d+1, j+2d+1).
        for j in range(n):
            pts[j] = np.mean(self.knots[j + d + 1 : j + 2 * d + 1])
        return self.wrap(pts)

    @cached_property
    def quadrature_weights(self) -> np.ndarray:
        """Exact integrals of the basis functions over one period.

        ``∫ B_j = (t_{j+d+1} − t_j) / (d + 1)``, so ``Σ_j c_j w_j`` is the
        *exact* integral of the spline — the spline-consistent quadrature
        the Vlasov diagnostics use.
        """
        d, n = self.degree, self.nbasis
        j = np.arange(n)
        return (self.knots[j + 2 * d + 1] - self.knots[j + d]) / (d + 1)

    def _cells(self, xw):
        """Cell index of each (already-wrapped) point; O(1) on uniform grids."""
        if self.is_uniform:
            idx = np.floor((np.asarray(xw) - self.xmin) / self._h).astype(np.int64)
            return np.clip(idx, 0, self.ncells - 1)
        return find_cell(self.breaks, xw)

    # -- evaluation ---------------------------------------------------------
    def eval_nonzero_basis(self, x):
        """Values of the ``d+1`` non-zero basis functions at *x* (wrapped).

        Returns ``(indices, values)`` where ``indices`` are the *periodic*
        basis indices (``(cell - d + r) mod n``) and ``values`` the matching
        basis values; both have shape ``(d+1,)`` for scalar *x* or
        ``(d+1, len(x))`` for arrays.
        """
        xw = self.wrap(x)
        cells = self._cells(xw)
        spans = cells + self.degree  # knot-array span: t[span] <= x < t[span+1]
        values = eval_basis(self.knots, self.degree, spans, xw)
        offsets = np.arange(self.degree + 1, dtype=np.int64)
        if np.ndim(cells) == 0:
            indices = (int(cells) - self.degree + offsets) % self.nbasis
        else:
            indices = (np.asarray(cells)[None, :] - self.degree
                       + offsets[:, None]) % self.nbasis
        return indices, values

    def eval_nonzero_basis_derivs(self, x):
        """Like :meth:`eval_nonzero_basis` but returning
        ``(indices, values, derivatives)``."""
        xw = self.wrap(x)
        cells = self._cells(xw)
        spans = cells + self.degree
        values, derivs = eval_basis_derivs(self.knots, self.degree, spans, xw)
        offsets = np.arange(self.degree + 1, dtype=np.int64)
        if np.ndim(cells) == 0:
            indices = (int(cells) - self.degree + offsets) % self.nbasis
        else:
            indices = (np.asarray(cells)[None, :] - self.degree
                       + offsets[:, None]) % self.nbasis
        return indices, values, derivs

    # -- the spline matrix --------------------------------------------------
    def collocation_matrix(self, points: np.ndarray = None) -> np.ndarray:
        """Dense ``(n, n)`` spline matrix ``A[i, j] = P_j(x_i)``.

        With the default Greville *points* this is exactly the matrix ``A``
        of Eq. (2) whose degree-3 uniform instance is shown in Fig. 1: a
        cyclic band with corner entries from the periodic wrap.
        """
        pts = self.greville if points is None else np.asarray(points, dtype=np.float64)
        if pts.ndim != 1:
            raise ShapeError(f"points must be 1-D, got shape {pts.shape}")
        n = self.nbasis
        a = np.zeros((pts.size, n))
        indices, values = self.eval_nonzero_basis(pts)
        rows = np.broadcast_to(np.arange(pts.size)[None, :], indices.shape)
        np.add.at(a, (rows.ravel(), indices.ravel()), values.ravel())
        return a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeriodicBSplines(degree={self.degree}, ncells={self.ncells}, "
            f"domain=[{self.xmin}, {self.xmax}))"
        )
