"""Batched spline evaluation — the second half of spline interpolation.

The semi-Lagrangian benchmark (Algorithm 2) evaluates the freshly built
spline at the foot of every characteristic.  Feet differ per batch column
(each ``v_j`` advects at a different speed), so the evaluator supports
both shared points (``x`` of shape ``(npts,)`` applied to every batch
column) and per-column points (``x`` of shape ``(npts, batch)``).

Per-column evaluation is processed in batch chunks: the Cox-de Boor
recurrence runs on the flattened chunk and coefficients are gathered with
one fancy-indexing pass per basis offset, keeping temporaries bounded at
``(degree + 1) x npts x chunk`` regardless of the total batch size.
"""

from __future__ import annotations

import numpy as np

from repro.core.bsplines.space import PeriodicBSplines
from repro.exceptions import ShapeError

#: Batch-chunk width for per-column evaluation.
DEFAULT_EVAL_CHUNK = 4096


class SplineEvaluator:
    """Evaluates periodic splines given their coefficient blocks."""

    def __init__(self, space: PeriodicBSplines, chunk: int = DEFAULT_EVAL_CHUNK):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.space = space
        self.chunk = int(chunk)

    # -- single coefficient vector -----------------------------------------
    def eval_1d(self, coeffs: np.ndarray, x) -> np.ndarray:
        """Evaluate one spline (``coeffs`` of length ``n``) at points *x*."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.ndim != 1 or coeffs.shape[0] != self.space.nbasis:
            raise ShapeError(
                f"coeffs must have length {self.space.nbasis}, got {coeffs.shape}"
            )
        indices, values = self.space.eval_nonzero_basis(x)
        return np.sum(values * coeffs[indices], axis=0)

    def eval_deriv_1d(self, coeffs: np.ndarray, x) -> np.ndarray:
        """First derivative of one spline at points *x*."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.ndim != 1 or coeffs.shape[0] != self.space.nbasis:
            raise ShapeError(
                f"coeffs must have length {self.space.nbasis}, got {coeffs.shape}"
            )
        indices, _, derivs = self.space.eval_nonzero_basis_derivs(x)
        return np.sum(derivs * coeffs[indices], axis=0)

    def integrate(self, coeffs: np.ndarray) -> np.ndarray:
        """Exact integral of the spline(s) over the domain.

        ``coeffs`` of shape ``(n,)`` returns a scalar; ``(n, batch)``
        returns per-column integrals.  Exact because B-spline integrals
        are knot differences (see ``quadrature_weights``).
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape[0] != self.space.nbasis:
            raise ShapeError(
                f"coeffs must have leading extent {self.space.nbasis}, "
                f"got {coeffs.shape}"
            )
        w = self.space.quadrature_weights
        if coeffs.ndim == 1:
            return float(w @ coeffs)
        return w @ coeffs

    # -- batched ---------------------------------------------------------
    def eval_batched(
        self,
        coeffs: np.ndarray,
        x: np.ndarray,
        coeffs_batch_major: bool = False,
    ) -> np.ndarray:
        """Evaluate a coefficient block at points *x*.

        ``x`` of shape ``(npts,)``: the same points for every column —
        returns ``(npts, batch)``.  ``x`` of shape ``(npts, batch)``:
        per-column points — returns ``(npts, batch)``.

        ``coeffs`` is ``(n, batch)`` by default; with
        ``coeffs_batch_major=True`` it is ``(batch, n)`` — the storage
        layout the transpose-fused solve path
        (:meth:`~repro.core.SplineBuilder.solve_transposed`) produces, so
        no full transpose is needed between solving and evaluating.
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        n_axis = 1 if coeffs_batch_major else 0
        if coeffs.ndim != 2 or coeffs.shape[n_axis] != self.space.nbasis:
            raise ShapeError(
                f"coeffs must have {self.space.nbasis} entries on axis "
                f"{n_axis}, got shape {coeffs.shape}"
            )
        nbatch = coeffs.shape[1 - n_axis]
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            indices, values = self.space.eval_nonzero_basis(x)
            # (d+1, npts) basis values contracted against the coefficient
            # gathers, (d+1, npts, batch) or (batch, d+1, npts).
            if coeffs_batch_major:
                return np.einsum("rp,brp->pb", values, coeffs[:, indices])
            return np.einsum("rp,rpb->pb", values, coeffs[indices])
        if x.ndim != 2 or x.shape[1] != nbatch:
            raise ShapeError(
                f"per-column points must have shape (npts, batch={nbatch}), "
                f"got {x.shape}"
            )
        npts, batch = x.shape
        out = np.empty((npts, batch))
        for lo in range(0, batch, self.chunk):
            hi = min(lo + self.chunk, batch)
            xc = x[:, lo:hi]
            flat = xc.reshape(-1)
            indices, values = self.space.eval_nonzero_basis(flat)
            # indices/values: (d+1, npts*(hi-lo)).  Column index of every
            # flattened point, for gathering the right coefficient column.
            cols = np.broadcast_to(
                np.arange(lo, hi)[None, :], xc.shape
            ).reshape(-1)
            if coeffs_batch_major:
                gathered = coeffs[cols[None, :], indices]
            else:
                gathered = coeffs[indices, cols[None, :]]
            out[:, lo:hi] = np.sum(values * gathered, axis=0).reshape(npts, hi - lo)
        return out

    def __call__(self, coeffs: np.ndarray, x) -> np.ndarray:
        """Dispatch on coefficient rank: 1-D → :meth:`eval_1d`, 2-D →
        :meth:`eval_batched`."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.ndim == 1:
            return self.eval_1d(coeffs, x)
        return self.eval_batched(coeffs, x)
