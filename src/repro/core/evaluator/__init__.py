"""Spline evaluation at arbitrary points (1-D batched and 2-D tensor)."""

from repro.core.evaluator.evaluator import SplineEvaluator
from repro.core.evaluator.evaluator2d import SplineEvaluator2D

__all__ = ["SplineEvaluator", "SplineEvaluator2D"]
