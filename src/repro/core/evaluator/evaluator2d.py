"""Evaluation of 2-D tensor-product splines."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


class SplineEvaluator2D:
    """Evaluates ``Σ_{ij} c[i,j] B_i(x) B_j(y)`` splines.

    Two entry points: :meth:`eval_points` for scattered ``(x, y)`` pairs
    (the semi-Lagrangian use: one foot per grid point) and
    :meth:`eval_grid` for a tensor grid of evaluation points (diagnostics,
    refinement), which contracts through two small dense operators instead
    of per-point gathers.
    """

    def __init__(self, space_x, space_y):
        self.space_x = space_x
        self.space_y = space_y

    def _check(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.ndim != 2 or coeffs.shape != (self.space_x.nbasis,
                                                self.space_y.nbasis):
            raise ShapeError(
                f"coeffs must have shape ({self.space_x.nbasis}, "
                f"{self.space_y.nbasis}), got {coeffs.shape}"
            )
        return coeffs

    def eval_points(self, coeffs: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Values at scattered points ``(x[k], y[k])``; returns shape ``(npts,)``."""
        coeffs = self._check(coeffs)
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        y = np.atleast_1d(np.asarray(y, dtype=np.float64))
        if x.shape != y.shape or x.ndim != 1:
            raise ShapeError(
                f"x and y must be matching 1-D arrays, got {x.shape} / {y.shape}"
            )
        ix, vx = self.space_x.eval_nonzero_basis(x)  # (dx+1, npts)
        iy, vy = self.space_y.eval_nonzero_basis(y)  # (dy+1, npts)
        gathered = coeffs[ix[:, None, :], iy[None, :, :]]  # (dx+1, dy+1, npts)
        return np.einsum("rp,sp,rsp->p", vx, vy, gathered)

    def eval_grid(self, coeffs: np.ndarray, xg: np.ndarray, yg: np.ndarray) -> np.ndarray:
        """Values on the tensor grid ``xg × yg``; returns ``(len(xg), len(yg))``.

        Uses the collocation operators ``B_x C B_yᵀ`` — two dense matmuls,
        far cheaper than per-point gathers when the grid is large.
        """
        coeffs = self._check(coeffs)
        bx = self.space_x.collocation_matrix(np.asarray(xg, dtype=np.float64))
        by = self.space_y.collocation_matrix(np.asarray(yg, dtype=np.float64))
        return bx @ coeffs @ by.T
