"""Problem specification: which spline space to build.

A :class:`BSplineSpec` captures the paper's experimental axes — degree
(3/4/5) and uniformity — plus the domain and the non-uniform mesh family,
and constructs the matching :class:`~repro.core.bsplines.PeriodicBSplines`
space.  Benchmarks sweep over these specs exactly like the paper sweeps its
six spline configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.core.bsplines.knots import make_breakpoints
from repro.core.bsplines.nonperiodic import ClampedBSplines
from repro.core.bsplines.space import PeriodicBSplines


@dataclass(frozen=True)
class BSplineSpec:
    """Degree / size / uniformity of a spline interpolation problem.

    Attributes
    ----------
    degree:
        Spline degree; the paper evaluates 3, 4 and 5.
    n_points:
        Number of interpolation points == number of basis functions ==
        matrix size ``N_x`` (for periodic splines this equals the cell
        count; for clamped splines it is ``cells + degree``).
    uniform:
        Uniform vs non-uniform break points (Table I's second axis).
    xmin, xmax:
        The domain (period for the periodic boundary).
    boundary:
        ``"periodic"`` (the paper's benchmark case, cyclic-banded matrix)
        or ``"clamped"`` (open knots — GYSELA's non-periodic directions,
        plain banded matrix).
    nonuniform_kind, nonuniform_strength, seed:
        Parameters of the non-uniform mesh generator (ignored when
        *uniform*); see :func:`repro.core.bsplines.nonuniform_breakpoints`.
    """

    degree: int = 3
    n_points: int = 64
    uniform: bool = True
    xmin: float = 0.0
    xmax: float = 1.0
    boundary: str = "periodic"
    nonuniform_kind: str = "stretched"
    nonuniform_strength: float = 0.5
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.boundary not in ("periodic", "clamped"):
            raise ValueError(
                f"boundary must be 'periodic' or 'clamped', got {self.boundary!r}"
            )
        min_points = self.degree + 2 if self.boundary == "periodic" else self.degree + 1
        if self.n_points < min_points:
            raise ValueError(
                f"n_points={self.n_points} too small for {self.boundary} degree "
                f"{self.degree} splines (need >= {min_points})"
            )

    @property
    def n_cells(self) -> int:
        """Break-point cell count implied by *n_points* and *boundary*."""
        if self.boundary == "periodic":
            return self.n_points
        return self.n_points - self.degree

    def make_space(self):
        """Construct the spline space this spec describes."""
        breaks = make_breakpoints(
            self.n_cells,
            self.uniform,
            self.xmin,
            self.xmax,
            kind=self.nonuniform_kind,
            strength=self.nonuniform_strength,
            seed=self.seed,
        )
        if self.boundary == "periodic":
            return PeriodicBSplines(breaks, self.degree)
        return ClampedBSplines(breaks, self.degree)

    def with_size(self, n_points: int) -> "BSplineSpec":
        """Copy of this spec with a different matrix size (sweep helper)."""
        return replace(self, n_points=n_points)

    @property
    def label(self) -> str:
        """Human-readable label as used in the paper's tables/figures."""
        u = "uniform" if self.uniform else "non-uniform"
        return f"{u} (Degree {self.degree})"


def paper_configurations(n_points: int = 64) -> Iterator[BSplineSpec]:
    """The six (degree, uniformity) combinations of Tables I/IV/V & Fig. 2."""
    for uniform in (True, False):
        for degree in (3, 4, 5):
            yield BSplineSpec(degree=degree, n_points=n_points, uniform=uniform)
