"""The paper's primary contribution: performance-portable spline building.

Public surface:

* :class:`BSplineSpec` — problem description (degree / size / uniformity);
* :class:`SplineBuilder` — the direct (Kokkos-kernels-style) builder with
  the three optimization versions of §IV;
* :class:`GinkgoSplineBuilder` — the iterative (Ginkgo-style) builder;
* :class:`SplineEvaluator` — batched evaluation at arbitrary points;
* :mod:`repro.core.bsplines` — the underlying spline-space machinery.
"""

from repro.core.spec import BSplineSpec, paper_configurations
from repro.core.builder import (
    DirectBandSolver,
    GinkgoSplineBuilder,
    HermiteSplineInterpolator,
    SchurSolver,
    SplineBuilder,
    SplineBuilder2D,
    make_plan,
)
from repro.core.evaluator import SplineEvaluator, SplineEvaluator2D
from repro.core.bsplines import (
    ClampedBSplines,
    MatrixType,
    PeriodicBSplines,
    classify_matrix,
    expected_type,
)

__all__ = [
    "BSplineSpec",
    "paper_configurations",
    "SplineBuilder",
    "SplineBuilder2D",
    "GinkgoSplineBuilder",
    "HermiteSplineInterpolator",
    "SchurSolver",
    "DirectBandSolver",
    "make_plan",
    "SplineEvaluator",
    "SplineEvaluator2D",
    "PeriodicBSplines",
    "ClampedBSplines",
    "MatrixType",
    "classify_matrix",
    "expected_type",
]
