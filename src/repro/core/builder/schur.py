"""Schur-complement solver for cyclic banded systems — Algorithm 1.

The periodic spline matrix ``A`` is banded up to corner entries; Eq. (3)
splits it as::

        A = [[Q, γ],
             [λ, δ]]

Setup (factor once, §II-B2):

1. factor ``Q`` with the dedicated solver of Table I (:func:`make_plan`),
2. ``β = Q⁻¹ γ``,
3. ``δ' = δ − λ β`` and its dense LU.

Solve (per right-hand side, Algorithm 1 lines 5–8)::

        Q x₀' = b₀
        δ' x₁ = b₁ − λ x₀'
        x₀    = x₀' − β x₁

The three §IV optimization *versions* of the paper are selected per solve:

* ``version=0`` — baseline: whole batch at once, dense corner products;
* ``version=1`` — kernel fusion: the batch is swept in cache-resident
  chunks of ``chunk`` columns (§IV-A);
* ``version=2`` — sparse corners: ``λ`` and ``β`` are applied as COO
  SpMM (§IV-B); ``β``'s entries decay exponentially away from the corner,
  so ``drop_tol`` reduces it from ``m·b`` dense entries to a few dozen.
"""

from __future__ import annotations

import numpy as np

from repro.backend import asnumpy, backend_name_of, get_namespace, is_numpy_namespace
from repro.core.bsplines.blocks import split_cyclic_banded
from repro.core.bsplines.classify import MatrixType
from repro.core.builder.plan import FactorizationPlan, make_plan
from repro.exceptions import ShapeError
from repro.kbatched import Coo, coo_spmm, gemv, serial_coo_spmv

__all__ = ["SchurSolver", "DEFAULT_CHUNK", "DEFAULT_DROP_TOL"]

#: default batch-chunk width (columns per fused sweep), the paper's GPU value
DEFAULT_CHUNK = 65535

#: default drop tolerance for the sparse corner blocks (§IV-B)
DEFAULT_DROP_TOL = 1e-15

_VERSIONS = (0, 1, 2)


class SchurSolver:
    """Factor-once / solve-many cyclic banded solver (Algorithm 1).

    Parameters
    ----------
    a:
        The dense cyclic banded matrix.  Raises :class:`ShapeError` when it
        is not square or not meaningfully cyclic-banded.
    chunk:
        Batch columns per fused sweep for versions 1 and 2.
    drop_tol:
        Entries of ``β``/``λ`` with magnitude below this are dropped from
        the COO corners used by version 2.
    dtype:
        Storage/solve precision.  Factorization always runs in float64 and
        the factors are cast afterwards (§IV-C).
    """

    def __init__(
        self,
        a: np.ndarray,
        chunk: int = DEFAULT_CHUNK,
        drop_tol: float = DEFAULT_DROP_TOL,
        dtype=np.float64,
        tol: float = 1e-12,
    ) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be a positive column count, got {chunk}")
        a = np.asarray(asnumpy(a), dtype=np.float64)
        #: operator norms of the full cyclic matrix, for condition-aware
        #: verification (‖A‖₁ feeds the Hager/Higham estimator, ‖A‖∞ the
        #: backward-error denominator)
        self.norm1 = float(np.max(np.sum(np.abs(a), axis=0)))
        self.norm_inf = float(np.max(np.sum(np.abs(a), axis=1)))
        blocks = split_cyclic_banded(a, tol=tol)
        self.n = blocks.n
        self.m = blocks.q.shape[0]
        self.corner_width = blocks.corner_width
        self.chunk = int(chunk)
        self.drop_tol = float(drop_tol)
        self.dtype = np.dtype(dtype)

        # Setup phase (always double precision).
        q_plan64 = make_plan(blocks.q, tol=tol)
        beta64 = np.ascontiguousarray(blocks.gamma, dtype=np.float64).copy()
        q_plan64.solve(beta64)  # β = Q⁻¹ γ
        delta_schur = blocks.delta - blocks.lam @ beta64  # δ' = δ − λ β
        delta_plan64 = make_plan(delta_schur, force=MatrixType.GENERAL)

        # Cast stored factors / operands to the working precision.
        self.q_plan: FactorizationPlan = q_plan64.astype(self.dtype)
        self.delta_plan: FactorizationPlan = delta_plan64.astype(self.dtype)
        self.beta = np.ascontiguousarray(beta64, dtype=self.dtype)
        self.lam = np.ascontiguousarray(blocks.lam, dtype=self.dtype)
        self.beta_coo = Coo.from_dense(self.beta, drop_tol=self.drop_tol)
        self.lam_coo = Coo.from_dense(self.lam, drop_tol=self.drop_tol)

    @property
    def solver_name(self) -> str:
        """Table I solver used for the banded block ``Q``."""
        return self.q_plan.name

    @property
    def corner_nnz(self) -> dict:
        """Stored non-zeros of the sparse corner operators (§IV-B)."""
        return {"lambda": self.lam_coo.nnz, "beta": self.beta_coo.nnz}

    def _staged_corners(self, xp):
        """``(beta, lam, beta_coo, lam_coo)`` staged into namespace *xp*.

        Host NumPy operands pass through untouched; other backends get a
        one-time copy cached per namespace — the same stage-to-device step
        the factor plans perform (§II-B1).
        """
        if is_numpy_namespace(xp):
            return self.beta, self.lam, self.beta_coo, self.lam_coo
        key = backend_name_of(xp)
        cache = self.__dict__.setdefault("_staged", {})
        ops = cache.get(key)
        if ops is None:
            ops = (
                xp.asarray(self.beta),
                xp.asarray(self.lam),
                self.beta_coo.to_namespace(xp),
                self.lam_coo.to_namespace(xp),
            )
            cache[key] = ops
        return ops

    def _solve_block(self, b: np.ndarray, sparse: bool) -> None:
        """Algorithm 1 lines 5–8 on one ``(n, cols)`` block, in place."""
        beta, lam, beta_coo, lam_coo = self._staged_corners(get_namespace(b))
        b0 = b[: self.m, ...]
        b1 = b[self.m :, ...]
        self.q_plan.solve(b0)  # Q x₀' = b₀
        if sparse:
            coo_spmm(-1.0, lam_coo, b0, b1)  # b₁ ← b₁ − λ x₀'
        else:
            gemv(-1.0, lam, b0, 1.0, b1)
        self.delta_plan.solve(b1)  # δ' x₁ = b₁ − λ x₀'
        if sparse:
            coo_spmm(-1.0, beta_coo, b1, b0)  # x₀ = x₀' − β x₁
        else:
            gemv(-1.0, beta, b1, 1.0, b0)

    def solve(self, b: np.ndarray, version: int = 2) -> np.ndarray:
        """Solve in place for an ``(n, batch)`` right-hand-side block."""
        if version not in _VERSIONS:
            raise ValueError(
                f"unknown optimization version {version}; expected one of "
                f"{_VERSIONS} (§IV of the paper)"
            )
        if b.ndim != 2:
            raise ShapeError(
                f"batched solve expects a 2-D (n, batch) block, got shape {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        if version == 0:
            self._solve_block(b, sparse=False)
            return b
        sparse = version == 2
        for start in range(0, b.shape[1], self.chunk):
            self._solve_block(b[:, start : start + self.chunk], sparse=sparse)
        return b

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` in place from the same factorization.

        The Schur complement of ``Qᵀ`` in ``Aᵀ`` is ``δ'ᵀ`` and
        ``γᵀ Q⁻ᵀ = βᵀ``, so the transposed Algorithm 1 needs only the
        stored operators::

            δ'ᵀ x₁ = b₁ − βᵀ b₀
            Qᵀ x₀ = b₀ − λᵀ x₁

        Used by the Hager/Higham condition estimator; not a hot path, so
        the corner products run dense.
        """
        if b.ndim != 2:
            raise ShapeError(
                f"transpose solve expects a 2-D (n, batch) block, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        beta, lam, _, _ = self._staged_corners(get_namespace(b))
        b0 = b[: self.m, ...]
        b1 = b[self.m :, ...]
        b1 -= beta.T @ b0
        self.delta_plan.solve_transpose(b1)
        b0 -= lam.T @ b1
        self.q_plan.solve_transpose(b0)
        return b

    def solve_serial(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for a single 1-D right-hand side (serial kernels)."""
        if b.ndim != 1:
            raise ShapeError(
                f"serial solve expects a 1-D right-hand side, got shape {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side length {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        _, _, beta_coo, lam_coo = self._staged_corners(get_namespace(b))
        b0 = b[: self.m]
        b1 = b[self.m :]
        self.q_plan.solve_serial(b0)
        serial_coo_spmv(-1.0, lam_coo, b0, b1)
        self.delta_plan.solve_serial(b1)
        serial_coo_spmv(-1.0, beta_coo, b1, b0)
        return b

    def __repr__(self) -> str:
        return (
            f"SchurSolver(n={self.n}, corner_width={self.corner_width}, "
            f"solver={self.solver_name}, chunk={self.chunk}, "
            f"drop_tol={self.drop_tol}, dtype={self.dtype})"
        )
