"""Sherman–Morrison–Woodbury alternative to the Schur split (§II-B3).

The cyclic banded matrix is written as a banded core plus a low-rank
correction, ``A = B + U Vᵀ``, where ``U`` selects the rows carrying
wrap-around entries and ``V`` holds those rows' corner values.  The
Woodbury identity then solves ``A x = b`` with one banded solve plus a
rank-``k`` dense correction::

        x = B⁻¹ b − W̃ C⁻¹ Vᵀ B⁻¹ b,   W̃ = B⁻¹ U,  C = I + Vᵀ W̃

The rank ``k`` equals twice the cyclic bandwidth (≤ 4 for degree-5
splines), so ``C`` is tiny.  Zeroing the wrap entries is symmetric, so
``B`` keeps the structure that unlocks the Table I ``pttrs``/``pbtrs``
fast paths; the paper still prefers the Schur route (the correction there
touches only the ``b`` trailing rows instead of a rank-``2b`` update over
the full vector), but Woodbury is an important cross-check: both must
produce identical solutions.
"""

from __future__ import annotations

import numpy as np

from repro.backend import asnumpy, backend_name_of, get_namespace, is_numpy_namespace, ordered_matmul
from repro.core.builder.plan import make_plan
from repro.core.bsplines.blocks import cyclic_bandwidth
from repro.core.bsplines.classify import MatrixType
from repro.exceptions import ShapeError

__all__ = ["WoodburySolver", "split_wrap"]


def split_wrap(a: np.ndarray, tol: float = 1e-12):
    """Split cyclic banded *a* into ``(b, u, v)`` with ``a = b + u @ v.T``.

    ``b`` is *a* with the wrap-around (corner) entries zeroed, ``u`` holds
    one identity column per wrap-carrying row, and ``v`` the corresponding
    rows of the wrap part — so the reassembly is exact to the last bit.
    """
    a = np.asarray(asnumpy(a), dtype=np.float64)
    bw = cyclic_bandwidth(a, tol=tol)  # raises ShapeError on non-square input
    n = a.shape[0]
    idx = np.arange(n)
    dist = np.abs(idx[:, None] - idx[None, :])
    wrap = np.where(dist > bw, a, 0.0)
    core = a - wrap
    rows = np.flatnonzero(np.any(wrap != 0.0, axis=1))
    u = np.zeros((n, rows.size))
    u[rows, np.arange(rows.size)] = 1.0
    v = np.ascontiguousarray(wrap[rows].T)
    return core, u, v


class WoodburySolver:
    """Cyclic banded solver via the Woodbury identity (§II-B3).

    Raises :class:`ShapeError` when the matrix carries no wrap entries —
    a plain banded system should go through
    :class:`~repro.core.builder.direct.DirectBandSolver` instead.
    """

    def __init__(self, a: np.ndarray, dtype=np.float64, tol: float = 1e-12) -> None:
        core, u, v = split_wrap(a, tol=tol)
        if u.shape[1] == 0:
            raise ShapeError(
                "matrix has no cyclic wrap entries; use DirectBandSolver "
                "for plain banded systems"
            )
        self.n = core.shape[0]
        self.rank = u.shape[1]
        self.dtype = np.dtype(dtype)

        b_plan64 = make_plan(core, tol=tol)
        w = np.ascontiguousarray(u).copy()
        b_plan64.solve(w)  # W̃ = B⁻¹ U
        capacitance = np.eye(self.rank) + v.T @ w  # C = I + Vᵀ W̃
        cap_plan64 = make_plan(capacitance, force=MatrixType.GENERAL)

        self.b_plan = b_plan64.astype(self.dtype)
        self.cap_plan = cap_plan64.astype(self.dtype)
        self.w = np.ascontiguousarray(w, dtype=self.dtype)
        self.v = np.ascontiguousarray(v, dtype=self.dtype)

    @property
    def solver_name(self) -> str:
        """Table I solver used for the banded core ``B``."""
        return self.b_plan.name

    def _staged_wv(self, xp):
        """``(W̃, V)`` staged into the namespace of the right-hand side.

        NumPy callers get the factor-time arrays untouched; other
        namespaces get a per-backend cached copy, so the host→device
        transfer happens once per backend, not per solve.
        """
        if is_numpy_namespace(xp):
            return self.w, self.v
        cache = self.__dict__.setdefault("_staged", {})
        key = backend_name_of(xp)
        if key not in cache:
            cache[key] = (xp.asarray(self.w), xp.asarray(self.v))
        return cache[key]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for an ``(n, batch)`` right-hand-side block;
        result dtype == RHS dtype."""
        if b.ndim != 2:
            raise ShapeError(
                f"batched solve expects a 2-D (n, batch) block, got shape {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        xp = get_namespace(b, default=np)
        w, v = self._staged_wv(xp)
        self.b_plan.solve(b)  # y = B⁻¹ b
        # Batch-width-invariant reduction (see kbatched.gemv): keeps column
        # shards of a batch bitwise equal to the full-batch solve.
        t = ordered_matmul(xp, v.T, b)  # Vᵀ y
        self.cap_plan.solve(t)  # C z = Vᵀ y
        b -= w @ t  # x = y − W̃ z
        return b

    def __repr__(self) -> str:
        return (
            f"WoodburySolver(n={self.n}, rank={self.rank}, "
            f"solver={self.solver_name}, dtype={self.dtype})"
        )
