"""Factorization plans — factor once, solve many (§II-B1, Table I).

A *plan* owns the factorized form of one small host matrix and exposes the
two solve backends of :mod:`repro.kbatched`:

* :meth:`FactorizationPlan.solve` — batched, vectorized over an
  ``(n, batch)`` right-hand-side block, in place;
* :meth:`FactorizationPlan.solve_serial` — a single 1-D right-hand side
  through the scalar ``serial_*`` kernels, in place.

:func:`make_plan` measures the matrix structure with
:func:`repro.core.bsplines.classify.classify_matrix` and picks the
dedicated LAPACK pair of Table I — ``pttrf/s`` for positive-definite
tridiagonal (uniform degree 3), ``pbtrf/s`` for positive-definite banded
(uniform degree 4/5), ``gbtrf/s`` for general banded (non-uniform meshes)
and ``getrf/s`` as the dense fallback.

Factorization always runs in double precision; reduced-precision plans
(``dtype=np.float32``) cast the *stored factors* afterwards so the setup
phase keeps full accuracy (§IV-C of the paper's mixed-precision study).
"""

from __future__ import annotations

import numpy as np

from repro.backend import asnumpy, backend_name_of, get_namespace, is_numpy_namespace
from repro.core.bsplines.classify import MatrixType, classify_matrix
from repro.exceptions import ShapeError
from repro.kbatched import (
    gbtrs,
    getrs,
    pbtrs,
    pttrs,
    serial_gbtrf,
    serial_gbtrs,
    serial_getrf,
    serial_getrs,
    serial_pbtrf,
    serial_pbtrs,
    serial_pttrf,
    serial_pttrs,
)
from repro.kbatched.band import (
    dense_band_widths,
    dense_to_lu_band,
    spd_dense_to_band_lower,
)
from repro.kbatched.types import Trans

__all__ = [
    "FactorizationPlan",
    "PttrsPlan",
    "PbtrsPlan",
    "GbtrsPlan",
    "GetrsPlan",
    "make_plan",
]

_SUPPORTED_DTYPES = (
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.complex128),
)


def _check_dtype(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dt}; factorization plans support "
            "float32, float64 and complex128 only"
        )
    return dt


def _matrix_norm1(a: np.ndarray) -> float:
    """1-norm (max column sum) of the matrix about to be factorized."""
    return float(np.max(np.sum(np.abs(a), axis=0))) if a.size else 0.0


class FactorizationPlan:
    """Base class: a factorized matrix plus its two in-place solve backends.

    Concrete subclasses store the factor arrays named after their LAPACK
    layout (``d``/``e`` for pttrf, ``ab`` for the band factorizations,
    ``lu`` for dense LU).
    """

    #: the :class:`MatrixType` this plan was built for
    mtype: MatrixType

    def __init__(self, n: int, dtype: np.dtype, norm1: float = float("nan")) -> None:
        self.n = int(n)
        self.dtype = np.dtype(dtype)
        #: 1-norm (max column sum) of the matrix that was factorized, kept
        #: for condition estimation: ``κ₁ = ‖A‖₁ · ‖A⁻¹‖₁``.
        self.norm1 = float(norm1)
        #: cached Hager/Higham condition estimate (see :meth:`condest`)
        self._kappa1: float | None = None

    @property
    def name(self) -> str:
        """The LAPACK solver name (Table I, parenthesized entries)."""
        return self.mtype.lapack_solver

    @property
    def solver_name(self) -> str:
        """Alias for :attr:`name`, matching the builder/solver interface."""
        return self.mtype.lapack_solver

    def _factor_arrays(self) -> dict:
        raise NotImplementedError

    def _staged_factors(self, xp) -> dict:
        """The factor arrays staged into namespace *xp*.

        Factorization always runs on the host in NumPy; solving against a
        cupy/torch/jax (or strict) right-hand side stages a copy of the
        factors into that backend once and caches it per namespace — the
        paper's "factorize on CPU, copy the result to the device" setup
        step (§II-B1).  Pivot arrays stay host NumPy (kernels read them as
        Python ints).
        """
        if is_numpy_namespace(xp):
            return self._factor_arrays()
        key = backend_name_of(xp)
        cache = self.__dict__.setdefault("_staged", {})
        staged = cache.get(key)
        if staged is None:
            staged = {
                name: xp.asarray(np.ascontiguousarray(value))
                for name, value in self._factor_arrays().items()
            }
            cache[key] = staged
        return staged

    def astype(self, dtype) -> "FactorizationPlan":
        """A copy of this plan with the stored factors cast to *dtype*.

        Casting an already-computed factorization is how reduced-precision
        solvers keep a double-precision setup phase (§IV-C).
        """
        dt = _check_dtype(dtype)
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.__dict__.pop("_staged", None)
        clone.dtype = dt
        for key, value in self._factor_arrays().items():
            setattr(clone, key, np.ascontiguousarray(value, dtype=dt))
        return clone

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for an ``(n, batch)`` right-hand-side block."""
        if b.ndim != 2:
            raise ShapeError(
                f"batched solve expects a 2-D (n, batch) block, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self._solve(b)
        return b

    def solve_serial(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for a single 1-D right-hand side."""
        if b.ndim != 1:
            raise ShapeError(
                f"serial solve expects a 1-D right-hand side, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side length {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self._solve_serial(b)
        return b

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` in place for an ``(n, batch)`` block.

        Reuses the stored factorization: symmetric plans (pttrs/pbtrs)
        solve with the same factors, LU plans run the transposed
        substitution order (LAPACK's ``trans='T'``).  The transpose solve
        is what the Hager/Higham 1-norm condition estimator needs.
        """
        if b.ndim != 2:
            raise ShapeError(
                f"transpose solve expects a 2-D (n, batch) block, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self._solve_transpose(b)
        return b

    def condest(self, itmax: int = 5) -> float:
        """Hager/Higham estimate of ``κ₁(A)``, cached after the first call.

        Requires the 1-norm recorded at factorization time (plans built
        before a matrix was available report NaN).
        """
        if self._kappa1 is None:
            from repro.verify.condest import condest_from_plan

            self._kappa1 = condest_from_plan(self, itmax=itmax)
        return self._kappa1

    def _solve(self, b: np.ndarray) -> None:
        raise NotImplementedError

    def _solve_serial(self, b: np.ndarray) -> None:
        raise NotImplementedError

    def _solve_transpose(self, b: np.ndarray) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n}, dtype={self.dtype})"


class PttrsPlan(FactorizationPlan):
    """LDLᵀ plan for positive-definite symmetric tridiagonal matrices."""

    mtype = MatrixType.PDS_TRIDIAGONAL

    def __init__(self, a: np.ndarray, dtype=np.float64) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype), norm1=_matrix_norm1(a))
        d = np.ascontiguousarray(np.diag(a).copy())
        e = np.ascontiguousarray(np.diag(a, k=-1).copy())
        serial_pttrf(d, e)
        self.d = d.astype(self.dtype, copy=False)
        self.e = e.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"d": self.d, "e": self.e}

    def _solve(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        pttrs(f["d"], f["e"], b)

    def _solve_serial(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        serial_pttrs(f["d"], f["e"], b)

    def _solve_transpose(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        pttrs(f["d"], f["e"], b)  # symmetric: Aᵀ = A


class PbtrsPlan(FactorizationPlan):
    """Band-Cholesky plan for positive-definite symmetric banded matrices."""

    mtype = MatrixType.PDS_BANDED

    def __init__(self, a: np.ndarray, dtype=np.float64, tol: float = 1e-12) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype), norm1=_matrix_norm1(a))
        kl, _ = dense_band_widths(a, tol=tol)
        self.kd = int(kl)
        ab = spd_dense_to_band_lower(a, self.kd)
        serial_pbtrf(ab)
        self.ab = ab.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"ab": self.ab}

    def _solve(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        pbtrs(f["ab"], b)

    def _solve_serial(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        serial_pbtrs(f["ab"], b)

    def _solve_transpose(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        pbtrs(f["ab"], b)  # symmetric: Aᵀ = A


class GbtrsPlan(FactorizationPlan):
    """Banded-LU plan (partial pivoting) for general banded matrices."""

    mtype = MatrixType.GENERAL_BANDED

    def __init__(self, a: np.ndarray, dtype=np.float64, tol: float = 1e-12) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype), norm1=_matrix_norm1(a))
        kl, ku = dense_band_widths(a, tol=tol)
        self.kl = int(kl)
        self.ku = int(ku)
        ab = dense_to_lu_band(a, self.kl, self.ku)
        self.ipiv = serial_gbtrf(ab, self.kl, self.ku)
        self.ab = ab.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"ab": self.ab}

    def _solve(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        gbtrs(f["ab"], self.ipiv, b, self.kl, self.ku)

    def _solve_serial(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        serial_gbtrs(f["ab"], self.ipiv, b, self.kl, self.ku)

    def _solve_transpose(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        gbtrs(f["ab"], self.ipiv, b, self.kl, self.ku, trans=Trans.TRANSPOSE)


class GetrsPlan(FactorizationPlan):
    """Dense-LU plan (partial pivoting) — the structure-agnostic fallback."""

    mtype = MatrixType.GENERAL

    def __init__(self, a: np.ndarray, dtype=np.float64) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype), norm1=_matrix_norm1(a))
        lu = np.ascontiguousarray(a, dtype=np.float64).copy()
        self.ipiv = serial_getrf(lu)
        self.lu = lu.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"lu": self.lu}

    def _solve(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        getrs(f["lu"], self.ipiv, b)

    def _solve_serial(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        serial_getrs(f["lu"], self.ipiv, b)

    def _solve_transpose(self, b: np.ndarray) -> None:
        f = self._staged_factors(get_namespace(b))
        getrs(f["lu"], self.ipiv, b, trans=Trans.TRANSPOSE)


_PLAN_CLASSES = {
    MatrixType.PDS_TRIDIAGONAL: PttrsPlan,
    MatrixType.PDS_BANDED: PbtrsPlan,
    MatrixType.GENERAL_BANDED: GbtrsPlan,
    MatrixType.GENERAL: GetrsPlan,
}


def make_plan(
    a: np.ndarray,
    force: MatrixType | None = None,
    dtype=np.float64,
    tol: float = 1e-12,
) -> FactorizationPlan:
    """Classify *a* (Table I) and return the matching factorization plan.

    Parameters
    ----------
    force:
        Skip classification and use this :class:`MatrixType` directly —
        e.g. the tiny Schur complement ``δ'`` is always solved dense.
    dtype:
        Precision of the *stored factors*.  Factorization itself always
        runs in float64.
    """
    a = np.asarray(asnumpy(a), dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {a.shape}")
    dt = _check_dtype(dtype)
    mtype = force if force is not None else classify_matrix(a, tol=tol)
    cls = _PLAN_CLASSES[mtype]
    if cls is GetrsPlan:
        return GetrsPlan(a, dtype=dt)
    if cls is PttrsPlan:
        return PttrsPlan(a, dtype=dt)
    return cls(a, dtype=dt, tol=tol)
