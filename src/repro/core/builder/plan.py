"""Factorization plans — factor once, solve many (§II-B1, Table I).

A *plan* owns the factorized form of one small host matrix and exposes the
two solve backends of :mod:`repro.kbatched`:

* :meth:`FactorizationPlan.solve` — batched, vectorized over an
  ``(n, batch)`` right-hand-side block, in place;
* :meth:`FactorizationPlan.solve_serial` — a single 1-D right-hand side
  through the scalar ``serial_*`` kernels, in place.

:func:`make_plan` measures the matrix structure with
:func:`repro.core.bsplines.classify.classify_matrix` and picks the
dedicated LAPACK pair of Table I — ``pttrf/s`` for positive-definite
tridiagonal (uniform degree 3), ``pbtrf/s`` for positive-definite banded
(uniform degree 4/5), ``gbtrf/s`` for general banded (non-uniform meshes)
and ``getrf/s`` as the dense fallback.

Factorization always runs in double precision; reduced-precision plans
(``dtype=np.float32``) cast the *stored factors* afterwards so the setup
phase keeps full accuracy (§IV-C of the paper's mixed-precision study).
"""

from __future__ import annotations

import numpy as np

from repro.core.bsplines.classify import MatrixType, classify_matrix
from repro.exceptions import ShapeError
from repro.kbatched import (
    gbtrs,
    getrs,
    pbtrs,
    pttrs,
    serial_gbtrf,
    serial_gbtrs,
    serial_getrf,
    serial_getrs,
    serial_pbtrf,
    serial_pbtrs,
    serial_pttrf,
    serial_pttrs,
)
from repro.kbatched.band import (
    dense_band_widths,
    dense_to_lu_band,
    spd_dense_to_band_lower,
)

__all__ = [
    "FactorizationPlan",
    "PttrsPlan",
    "PbtrsPlan",
    "GbtrsPlan",
    "GetrsPlan",
    "make_plan",
]

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _check_dtype(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dt}; factorization plans support "
            "float32 and float64 only"
        )
    return dt


class FactorizationPlan:
    """Base class: a factorized matrix plus its two in-place solve backends.

    Concrete subclasses store the factor arrays named after their LAPACK
    layout (``d``/``e`` for pttrf, ``ab`` for the band factorizations,
    ``lu`` for dense LU).
    """

    #: the :class:`MatrixType` this plan was built for
    mtype: MatrixType

    def __init__(self, n: int, dtype: np.dtype) -> None:
        self.n = int(n)
        self.dtype = np.dtype(dtype)

    @property
    def name(self) -> str:
        """The LAPACK solver name (Table I, parenthesized entries)."""
        return self.mtype.lapack_solver

    @property
    def solver_name(self) -> str:
        """Alias for :attr:`name`, matching the builder/solver interface."""
        return self.mtype.lapack_solver

    def _factor_arrays(self) -> dict:
        raise NotImplementedError

    def astype(self, dtype) -> "FactorizationPlan":
        """A copy of this plan with the stored factors cast to *dtype*.

        Casting an already-computed factorization is how reduced-precision
        solvers keep a double-precision setup phase (§IV-C).
        """
        dt = _check_dtype(dtype)
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.dtype = dt
        for key, value in self._factor_arrays().items():
            setattr(clone, key, np.ascontiguousarray(value, dtype=dt))
        return clone

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for an ``(n, batch)`` right-hand-side block."""
        if b.ndim != 2:
            raise ShapeError(
                f"batched solve expects a 2-D (n, batch) block, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self._solve(b)
        return b

    def solve_serial(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for a single 1-D right-hand side."""
        if b.ndim != 1:
            raise ShapeError(
                f"serial solve expects a 1-D right-hand side, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side length {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self._solve_serial(b)
        return b

    def _solve(self, b: np.ndarray) -> None:
        raise NotImplementedError

    def _solve_serial(self, b: np.ndarray) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n}, dtype={self.dtype})"


class PttrsPlan(FactorizationPlan):
    """LDLᵀ plan for positive-definite symmetric tridiagonal matrices."""

    mtype = MatrixType.PDS_TRIDIAGONAL

    def __init__(self, a: np.ndarray, dtype=np.float64) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype))
        d = np.ascontiguousarray(np.diag(a).copy())
        e = np.ascontiguousarray(np.diag(a, k=-1).copy())
        serial_pttrf(d, e)
        self.d = d.astype(self.dtype, copy=False)
        self.e = e.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"d": self.d, "e": self.e}

    def _solve(self, b: np.ndarray) -> None:
        pttrs(self.d, self.e, b)

    def _solve_serial(self, b: np.ndarray) -> None:
        serial_pttrs(self.d, self.e, b)


class PbtrsPlan(FactorizationPlan):
    """Band-Cholesky plan for positive-definite symmetric banded matrices."""

    mtype = MatrixType.PDS_BANDED

    def __init__(self, a: np.ndarray, dtype=np.float64, tol: float = 1e-12) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype))
        kl, _ = dense_band_widths(a, tol=tol)
        self.kd = int(kl)
        ab = spd_dense_to_band_lower(a, self.kd)
        serial_pbtrf(ab)
        self.ab = ab.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"ab": self.ab}

    def _solve(self, b: np.ndarray) -> None:
        pbtrs(self.ab, b)

    def _solve_serial(self, b: np.ndarray) -> None:
        serial_pbtrs(self.ab, b)


class GbtrsPlan(FactorizationPlan):
    """Banded-LU plan (partial pivoting) for general banded matrices."""

    mtype = MatrixType.GENERAL_BANDED

    def __init__(self, a: np.ndarray, dtype=np.float64, tol: float = 1e-12) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype))
        kl, ku = dense_band_widths(a, tol=tol)
        self.kl = int(kl)
        self.ku = int(ku)
        ab = dense_to_lu_band(a, self.kl, self.ku)
        self.ipiv = serial_gbtrf(ab, self.kl, self.ku)
        self.ab = ab.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"ab": self.ab}

    def _solve(self, b: np.ndarray) -> None:
        gbtrs(self.ab, self.ipiv, b, self.kl, self.ku)

    def _solve_serial(self, b: np.ndarray) -> None:
        serial_gbtrs(self.ab, self.ipiv, b, self.kl, self.ku)


class GetrsPlan(FactorizationPlan):
    """Dense-LU plan (partial pivoting) — the structure-agnostic fallback."""

    mtype = MatrixType.GENERAL

    def __init__(self, a: np.ndarray, dtype=np.float64) -> None:
        super().__init__(a.shape[0], _check_dtype(dtype))
        lu = np.ascontiguousarray(a, dtype=np.float64).copy()
        self.ipiv = serial_getrf(lu)
        self.lu = lu.astype(self.dtype, copy=False)

    def _factor_arrays(self) -> dict:
        return {"lu": self.lu}

    def _solve(self, b: np.ndarray) -> None:
        getrs(self.lu, self.ipiv, b)

    def _solve_serial(self, b: np.ndarray) -> None:
        serial_getrs(self.lu, self.ipiv, b)


_PLAN_CLASSES = {
    MatrixType.PDS_TRIDIAGONAL: PttrsPlan,
    MatrixType.PDS_BANDED: PbtrsPlan,
    MatrixType.GENERAL_BANDED: GbtrsPlan,
    MatrixType.GENERAL: GetrsPlan,
}


def make_plan(
    a: np.ndarray,
    force: MatrixType | None = None,
    dtype=np.float64,
    tol: float = 1e-12,
) -> FactorizationPlan:
    """Classify *a* (Table I) and return the matching factorization plan.

    Parameters
    ----------
    force:
        Skip classification and use this :class:`MatrixType` directly —
        e.g. the tiny Schur complement ``δ'`` is always solved dense.
    dtype:
        Precision of the *stored factors*.  Factorization itself always
        runs in float64.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {a.shape}")
    dt = _check_dtype(dtype)
    mtype = force if force is not None else classify_matrix(a, tol=tol)
    cls = _PLAN_CLASSES[mtype]
    if cls is GetrsPlan:
        return GetrsPlan(a, dtype=dt)
    if cls is PttrsPlan:
        return PttrsPlan(a, dtype=dt)
    return cls(a, dtype=dt, tol=tol)
