"""Spline builders — the paper's Algorithm 1 and its §IV/§V variants.

This subpackage is the headline contribution of the reproduction: the
factor-once / solve-many spline coefficient builders.

* :mod:`~repro.core.builder.plan` — :func:`make_plan` classifies a matrix
  (Table I) and returns one of the four LAPACK factorization plans;
* :mod:`~repro.core.builder.schur` — :class:`SchurSolver`, the
  cyclic-banded Schur-complement direct method of Algorithm 1 with the
  §IV optimization versions (fusion, sparse corners);
* :mod:`~repro.core.builder.woodbury` — :class:`WoodburySolver`, the
  Sherman–Morrison–Woodbury alternative (§II-B3), a cross-check;
* :mod:`~repro.core.builder.direct` — :class:`DirectBandSolver` for
  plain-banded clamped matrices;
* :mod:`~repro.core.builder.builder` / ``builder2d`` — the user-facing
  :class:`SplineBuilder` / :class:`SplineBuilder2D`;
* :mod:`~repro.core.builder.ginkgo_builder` —
  :class:`GinkgoSplineBuilder`, the iterative Krylov route (§III-B);
* :mod:`~repro.core.builder.hermite` — :class:`HermiteSplineInterpolator`
  for clamped splines with Hermite boundary conditions.
"""

from repro.core.builder.plan import (
    FactorizationPlan,
    GbtrsPlan,
    GetrsPlan,
    PbtrsPlan,
    PttrsPlan,
    make_plan,
)
from repro.core.builder.schur import SchurSolver
from repro.core.builder.direct import DirectBandSolver
from repro.core.builder.woodbury import WoodburySolver, split_wrap
from repro.core.builder.builder import SplineBuilder
from repro.core.builder.builder2d import SplineBuilder2D
from repro.core.builder.ginkgo_builder import GinkgoSplineBuilder
from repro.core.builder.hermite import HermiteSplineInterpolator

__all__ = [
    "FactorizationPlan",
    "PttrsPlan",
    "PbtrsPlan",
    "GbtrsPlan",
    "GetrsPlan",
    "make_plan",
    "SchurSolver",
    "DirectBandSolver",
    "WoodburySolver",
    "split_wrap",
    "SplineBuilder",
    "SplineBuilder2D",
    "GinkgoSplineBuilder",
    "HermiteSplineInterpolator",
]
