"""Hermite-boundary spline interpolation for clamped (odd-degree) splines.

GYSELA's non-periodic directions close the interpolation system with
*Hermite* boundary conditions: a clamped degree-``d`` space has
``n_cells + d`` basis functions but only ``n_cells + 1`` break points to
interpolate at, so the remaining ``d − 1`` equations prescribe
``nbc = (d − 1) / 2`` derivatives at each domain end (odd degrees only —
even degrees cannot split the deficit symmetrically).  The resulting
square system is plain banded apart from the derivative rows and goes
through the same :func:`~repro.core.builder.plan.make_plan` machinery as
every other builder matrix.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.builder.plan import make_plan
from repro.core.bsplines.basis import eval_basis_all_derivs
from repro.core.bsplines.knots import make_breakpoints
from repro.core.bsplines.nonperiodic import ClampedBSplines
from repro.exceptions import ShapeError

__all__ = ["HermiteSplineInterpolator"]


class HermiteSplineInterpolator:
    """Interpolate values at break points plus end derivatives (Hermite BC).

    The system rows are, in order: derivative orders ``1..nbc`` at
    ``xmin``, interpolation at every break point, derivative orders
    ``1..nbc`` at ``xmax`` — mirroring the layout used by GYSELA and
    ``scipy.interpolate.CubicSpline(bc_type="clamped")`` for degree 3.
    """

    def __init__(self, breaks: np.ndarray, degree: int, tol: float = 1e-12) -> None:
        degree = int(degree)
        if degree < 1 or degree % 2 == 0:
            raise ValueError(
                f"Hermite boundary conditions need an odd spline degree, "
                f"got {degree}: only odd degrees split the {max(degree - 1, 0)} "
                "missing equations evenly between the two ends"
            )
        self.space = ClampedBSplines(breaks, degree)
        self.degree = degree
        self.nbc = (degree - 1) // 2
        self.n_breaks = self.space.breaks.size
        self.matrix = self._assemble(tol)
        self.plan = make_plan(self.matrix, tol=tol)

    def _assemble(self, tol: float) -> np.ndarray:
        space = self.space
        d = self.degree
        nbc = self.nbc
        a = np.zeros((space.nbasis, space.nbasis))
        # Left end: derivative orders 1..nbc of the d+1 bases alive in cell 0.
        left = eval_basis_all_derivs(space.knots, d, d, space.xmin, nderiv=nbc)
        for k in range(1, nbc + 1):
            a[k - 1, 0 : d + 1] = left[k]
        # Interpolation rows at every break point.
        indices, values = space.eval_nonzero_basis(space.breaks)
        rows = np.broadcast_to(
            nbc + np.arange(self.n_breaks)[None, :], indices.shape
        )
        np.add.at(a, (rows.ravel(), indices.ravel()), values.ravel())
        # Right end: derivatives in the last cell.
        last_span = space.ncells - 1 + d
        right = eval_basis_all_derivs(space.knots, d, last_span, space.xmax, nderiv=nbc)
        for k in range(1, nbc + 1):
            row = nbc + self.n_breaks + k - 1
            a[row, space.nbasis - d - 1 : space.nbasis] = right[k]
        return a

    @classmethod
    def from_spec(cls, spec) -> "HermiteSplineInterpolator":
        """Build from a :class:`~repro.core.spec.BSplineSpec` — the spec is
        reinterpreted with clamped boundaries (Hermite BCs are inherently
        non-periodic)."""
        s = replace(spec, boundary="clamped")
        breaks = make_breakpoints(
            s.n_cells,
            s.uniform,
            s.xmin,
            s.xmax,
            kind=s.nonuniform_kind,
            strength=s.nonuniform_strength,
            seed=s.seed,
        )
        return cls(breaks, s.degree)

    @property
    def solver_name(self) -> str:
        return self.plan.name

    def _coerce_derivs(self, derivs, batch: int, side: str) -> np.ndarray:
        if derivs is None:
            return np.zeros((self.nbc, batch))
        derivs = np.asarray(derivs, dtype=np.float64)
        if derivs.ndim == 1:
            if derivs.shape[0] != self.nbc:
                raise ShapeError(
                    f"{side} derivatives must provide {self.nbc} orders, "
                    f"got {derivs.shape[0]}"
                )
            return np.broadcast_to(derivs[:, None], (self.nbc, batch))
        if derivs.ndim != 2 or derivs.shape != (self.nbc, batch):
            raise ShapeError(
                f"{side} derivatives must have shape ({self.nbc},) or "
                f"({self.nbc}, {batch}), got {derivs.shape}"
            )
        return derivs

    def solve(self, f, derivs_left=None, derivs_right=None) -> np.ndarray:
        """Spline coefficients for break-point values *f* plus end derivatives.

        *f* is ``(n_breaks,)`` or ``(n_breaks, batch)``; the derivative
        arrays hold orders ``1..nbc`` (default: all zero, the "natural
        clamped" choice).  Returns coefficients of matching dimensionality.
        """
        f = np.asarray(f, dtype=np.float64)
        if f.ndim not in (1, 2):
            raise ShapeError(f"expected 1-D or 2-D values, got shape {f.shape}")
        if f.shape[0] != self.n_breaks:
            raise ShapeError(
                f"values must be sampled at the {self.n_breaks} break points, "
                f"got leading extent {f.shape[0]}"
            )
        squeeze = f.ndim == 1
        fb = f[:, None] if squeeze else f
        batch = fb.shape[1]
        dl = self._coerce_derivs(derivs_left, batch, "left")
        dr = self._coerce_derivs(derivs_right, batch, "right")
        rhs = np.empty((self.space.nbasis, batch))
        rhs[: self.nbc] = dl
        rhs[self.nbc : self.nbc + self.n_breaks] = fb
        rhs[self.nbc + self.n_breaks :] = dr
        self.plan.solve(rhs)
        return rhs[:, 0] if squeeze else rhs

    def __repr__(self) -> str:
        return (
            f"HermiteSplineInterpolator(degree={self.degree}, "
            f"nbasis={self.space.nbasis}, nbc={self.nbc}, "
            f"solver={self.solver_name})"
        )
