"""Spline builder — the user-facing factor-once interpolation solver.

``SplineBuilder`` assembles the collocation matrix of a B-spline space at
its Greville points, factors it once through the structure-matched plan
(Table I, Algorithm 1 for periodic wrap), and then turns function values
into spline coefficients for arbitrarily many right-hand sides::

    spec = BSplineSpec(degree=3, n_points=1000)
    builder = SplineBuilder(spec, version=2)
    coeffs = builder.solve(f_values)          # (n,) or (n, batch)

Two execution backends mirror the paper's §II-C split:

* ``backend="vectorized"`` — the ``(n, batch)`` block kernels; with a
  threaded execution space and a large enough batch, the block is split
  into per-worker slabs dispatched through ``parallel_for``;
* ``backend="serial"`` — ``parallel_for`` over batch columns calling the
  scalar ``serial_*`` kernels, the line-by-line Listing 2 analogue.

``version`` selects the §IV optimization level (0 = baseline, 1 = fused
chunks, 2 = fused chunks + sparse corners) and ``dtype`` the §IV-C working
precision.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ascopy, get_namespace, is_numpy_namespace
from repro.core.builder.direct import DirectBandSolver
from repro.core.builder.schur import DEFAULT_CHUNK, DEFAULT_DROP_TOL, SchurSolver
from repro.core.spec import BSplineSpec
from repro.exceptions import BackendError, ShapeError
from repro.xspace import DefaultExecutionSpace, ExecutionSpace, parallel_for

__all__ = ["SplineBuilder", "DEFAULT_SLAB"]

#: default row-slab width for :meth:`SplineBuilder.solve_transposed`
DEFAULT_SLAB = 128

_BACKENDS = ("vectorized", "serial")


def _resolve_space(spec_or_space):
    """Accept either a :class:`BSplineSpec` or a prebuilt spline space."""
    if isinstance(spec_or_space, BSplineSpec):
        return spec_or_space, spec_or_space.make_space()
    return None, spec_or_space


class SplineBuilder:
    """Factor-once spline interpolation builder (Algorithm 1, §IV).

    Parameters
    ----------
    spec:
        A :class:`~repro.core.spec.BSplineSpec` (the space is assembled
        from it) or an already-built spline space such as
        :class:`~repro.core.bsplines.space.PeriodicBSplines`.
    version:
        §IV optimization level 0/1/2, forwarded to every solve.
    backend:
        ``"vectorized"`` (batched block kernels) or ``"serial"``
        (``parallel_for`` over columns with scalar kernels).
    space:
        Execution space for ``parallel_for`` dispatch (default serial).
    dtype:
        Working precision of the solve phase; setup always runs float64.
    engine:
        Optional :class:`~repro.runtime.SolveEngine`.  When given,
        out-of-place :meth:`solve` calls are submitted to the engine —
        coalescing with every other caller of the same spec — instead of
        running the solver directly; in-place solves (already batched)
        stay direct.  Requires a :class:`BSplineSpec` *spec* so the
        engine can key its plan cache; this builder's own factorization
        is donated to that cache so it is never repeated.
    """

    def __init__(
        self,
        spec,
        version: int = 2,
        backend: str = "vectorized",
        space: ExecutionSpace | None = None,
        dtype=np.float64,
        chunk: int = DEFAULT_CHUNK,
        drop_tol: float = DEFAULT_DROP_TOL,
        engine=None,
    ) -> None:
        if version not in (0, 1, 2):
            raise ValueError(
                f"unknown optimization version {version}; the paper defines "
                "versions 0 (baseline), 1 (fusion) and 2 (fusion + spmv)"
            )
        if backend not in _BACKENDS:
            raise BackendError(
                f"unknown backend {backend!r}; available backends: {_BACKENDS}"
            )
        self.spec, self.space_1d = _resolve_space(spec)
        self.version = int(version)
        self.backend = backend
        self.exec_space = space if space is not None else DefaultExecutionSpace
        self.dtype = np.dtype(dtype)
        self.chunk = int(chunk)
        self.drop_tol = float(drop_tol)
        self.matrix = self.space_1d.collocation_matrix()
        periodic = getattr(self.space_1d, "period", None) is not None
        if periodic:
            self.solver = SchurSolver(
                self.matrix, chunk=chunk, drop_tol=drop_tol, dtype=self.dtype
            )
        else:
            self.solver = DirectBandSolver(
                self.matrix, chunk=chunk, dtype=self.dtype
            )
        self.n = self.space_1d.nbasis
        self.engine = engine
        if engine is not None:
            if self.spec is None:
                raise ValueError(
                    "engine routing needs a BSplineSpec (prebuilt spline "
                    "spaces cannot key the engine's plan cache)"
                )
            # Donate this factorization so the engine never repeats it.
            engine.plan_cache.put(self.plan_key(), self)

    def plan_key(self):
        """This builder's configuration as a plan-cache key.

        Raises :class:`ValueError` for builders made from prebuilt spline
        spaces, which have no hashable spec.
        """
        from repro.runtime.plan_cache import PlanKey

        if self.spec is None:
            raise ValueError("builders made from prebuilt spaces have no plan key")
        return PlanKey.from_spec(
            self.spec,
            version=self.version,
            dtype=self.dtype,
            chunk=self.chunk,
            drop_tol=self.drop_tol,
            backend=self.backend,
        )

    @property
    def solver_name(self) -> str:
        """The Table I LAPACK solver backing this builder."""
        return self.solver.solver_name

    def interpolation_points(self) -> np.ndarray:
        """The Greville abscissae where input values must be sampled."""
        return np.array(self.space_1d.greville, copy=True)

    # -- solve ------------------------------------------------------------

    def _check_rhs(self, f: np.ndarray, in_place: bool) -> None:
        if in_place:
            if f.ndim != 2:
                raise ShapeError(
                    f"in-place solve needs a 2-D (n, batch) array, got {f.shape}"
                )
            if f.dtype != self.dtype:
                raise ShapeError(
                    f"in-place solve needs dtype {self.dtype}, got {f.dtype}"
                )
        elif f.ndim not in (1, 2):
            raise ShapeError(
                f"expected a 1-D or 2-D right-hand side, got shape {f.shape}"
            )
        if f.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {f.shape[0]} does not match "
                f"the {self.n} basis functions"
            )

    def _dispatch(self, work: np.ndarray) -> None:
        """Run the configured backend on an ``(n, batch)`` block, in place."""
        if self.backend == "serial":
            parallel_for(
                f"SplineBuilder::solve_serial[{self.solver_name}]",
                work.shape[1],
                lambda j: self.solver.solve_serial(work[:, j]),
                space=self.exec_space,
            )
            return
        nworkers = self.exec_space.concurrency
        batch = work.shape[1]
        if nworkers > 1 and batch >= 2 * nworkers:
            # One contiguous column slab per worker; each slab runs the
            # batched kernels independently (§II-C "parallel over batch").
            bounds = np.linspace(0, batch, nworkers + 1, dtype=int)
            parallel_for(
                f"SplineBuilder::solve[{self.solver_name}]",
                nworkers,
                lambda k: self.solver.solve(
                    work[:, bounds[k] : bounds[k + 1]], version=self.version
                ),
                space=self.exec_space,
            )
        else:
            self.solver.solve(work, version=self.version)

    def solve(self, f: np.ndarray, in_place: bool = False) -> np.ndarray:
        """Turn sampled values into spline coefficients.

        Out-of-place (default): *f* may be 1-D ``(n,)`` or 2-D
        ``(n, batch)`` of any real dtype; a cast copy is solved and
        returned with matching dimensionality.  With ``in_place=True``,
        *f* must be a 2-D array of the builder's dtype; it is overwritten
        with the coefficients and returned.

        When an engine is attached, out-of-place solves are submitted to
        it (and may coalesce with other callers' requests); in-place
        solves always run the solver directly.

        The result lives in the namespace of *f*: pass a cupy / torch /
        strict array in and the coefficients come back from the same
        library (the factorization is staged into that namespace once and
        cached).  Engine coalescing is a host-NumPy transport, so only
        NumPy right-hand sides route through an attached engine; other
        namespaces always solve directly.
        """
        xp = get_namespace(f, default=np)
        if is_numpy_namespace(xp):
            f = np.asarray(f)
        self._check_rhs(f, in_place)
        if self.engine is not None and not in_place and is_numpy_namespace(xp):
            return self.engine.solve(
                self.spec,
                f,
                version=self.version,
                dtype=self.dtype,
                backend=self.backend,
            )
        if in_place:
            work = f
        else:
            work = ascopy(f, dtype=self.dtype, xp=xp)
            if work.ndim == 1:
                work = xp.reshape(work, (work.shape[0], 1))
        self._dispatch(work)
        if in_place:
            return f
        if f.ndim == 1:
            # reshape may have copied on non-NumPy backends; flatten the
            # solved buffer itself rather than re-viewing f's copy.
            return work[:, 0] if is_numpy_namespace(xp) else xp.reshape(
                work, (self.n,)
            )
        return work

    def solve_transposed(self, fb: np.ndarray, slab: int = DEFAULT_SLAB) -> np.ndarray:
        """In-place solve for a transposed ``(batch, n)`` layout.

        Distributed advection stores fields batch-major; rather than
        transposing the whole array we sweep it in ``slab``-row blocks,
        transposing each into a small contiguous scratch buffer (the
        LayoutRight-friendly access pattern of §VI's future-work note).
        """
        if slab < 1:
            raise ValueError(f"slab must be a positive row count, got {slab}")
        if fb.ndim != 2:
            raise ShapeError(
                f"solve_transposed needs a 2-D (batch, n) array, got {fb.shape}"
            )
        if fb.shape[1] != self.n:
            raise ShapeError(
                f"trailing extent {fb.shape[1]} does not match the "
                f"{self.n} basis functions"
            )
        if fb.dtype != self.dtype:
            raise ShapeError(
                f"solve_transposed needs dtype {self.dtype}, got {fb.dtype}"
            )
        xp = get_namespace(fb, default=np)
        for start in range(0, fb.shape[0], slab):
            block = fb[start : start + slab, ...]
            if is_numpy_namespace(xp):
                scratch = np.ascontiguousarray(block.T)
            else:
                scratch = xp.asarray(block.T, copy=True)
            self.solver.solve(scratch, version=self.version)
            block[...] = scratch.T
        return fb

    def __repr__(self) -> str:
        return (
            f"SplineBuilder(n={self.n}, degree={self.space_1d.degree}, "
            f"version={self.version}, backend={self.backend!r}, "
            f"solver={self.solver_name}, dtype={self.dtype})"
        )
