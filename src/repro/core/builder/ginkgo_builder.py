"""Iterative (Ginkgo-style) spline builder — §III-B / §V of the paper.

Instead of factoring the collocation matrix, this builder keeps it in CSR
and solves every batch through a preconditioned Krylov method, pipelined
in ``cols_per_chunk`` column chunks (Listing 3) with a *warm start* from
the previous solve's coefficients — the property the paper leans on for
time-stepping advection, where consecutive fields differ only slightly.

The Ginkgo path trades the Table I structure exploitation for generality:
it works on any solvable matrix and is the comparison baseline for the
Kokkos-kernels direct route (Table IV, Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.spec import BSplineSpec
from repro.exceptions import ShapeError
from repro.iterative import (
    ChunkedSolver,
    ConvergenceLogger,
    Csr,
    Preconditioner,
    StoppingCriterion,
    make_preconditioner,
    make_solver,
)
from repro.iterative.chunked import CPU_COLS_PER_CHUNK

__all__ = ["GinkgoSplineBuilder"]

#: assembly noise below this is dropped when building the CSR matrix
_CSR_DROP_TOL = 1e-14


class GinkgoSplineBuilder:
    """Krylov-based spline builder over :mod:`repro.iterative`.

    Parameters
    ----------
    spec:
        A :class:`~repro.core.spec.BSplineSpec` or a prebuilt spline space.
    solver:
        Krylov method name: ``"cg"``, ``"bicg"``, ``"bicgstab"`` (paper's
        GPU choice) or ``"gmres"`` (paper's CPU choice).
    preconditioner:
        Name (``"identity"`` / ``"jacobi"`` / ``"block_jacobi"`` /
        ``"ilu0"``) or a ready :class:`~repro.iterative.Preconditioner`.
    max_block_size:
        Block-Jacobi block-size cap, Ginkgo's 1..32 tuning knob.
    tolerance / max_iterations:
        Residual reduction target and iteration cap (paper: 1e-15 / 1000).
    cols_per_chunk:
        Batch pipelining width (Listing 3).
    logger:
        Optional shared :class:`~repro.iterative.ConvergenceLogger`; when
        omitted the builder creates its own, exposed as ``.logger``.
    solver_options:
        Extra keywords for the solver constructor (e.g. ``restart=`` for
        GMRES).
    """

    def __init__(
        self,
        spec,
        solver: str = "bicgstab",
        preconditioner="block_jacobi",
        max_block_size: int = 8,
        tolerance: float = 1e-15,
        max_iterations: int = 1000,
        cols_per_chunk: int = CPU_COLS_PER_CHUNK,
        logger: ConvergenceLogger | None = None,
        **solver_options,
    ) -> None:
        if isinstance(spec, BSplineSpec):
            self.spec = spec
            self.space_1d = spec.make_space()
        else:
            self.spec = None
            self.space_1d = spec
        self.n = self.space_1d.nbasis
        self.matrix_dense = self.space_1d.collocation_matrix()
        self.matrix = Csr.from_dense(self.matrix_dense, drop_tol=_CSR_DROP_TOL)
        self.logger = logger if logger is not None else ConvergenceLogger()
        if isinstance(preconditioner, Preconditioner):
            precond = preconditioner
        else:
            precond = make_preconditioner(
                preconditioner, self.matrix, max_block_size=max_block_size
            )
        criterion = StoppingCriterion(
            reduction_factor=tolerance, max_iterations=max_iterations
        )
        self._solver = make_solver(
            solver,
            self.matrix,
            preconditioner=precond,
            criterion=criterion,
            logger=self.logger,
            **solver_options,
        )
        self.chunked = ChunkedSolver(self._solver, cols_per_chunk=cols_per_chunk)
        self.last_iterations = 0
        self._previous: np.ndarray | None = None

    @property
    def solver_name(self) -> str:
        """The Krylov method name (Ginkgo class name, lowercase)."""
        return self._solver.name

    def interpolation_points(self) -> np.ndarray:
        """The Greville abscissae where input values must be sampled."""
        return np.array(self.space_1d.greville, copy=True)

    def reset_warm_start(self) -> None:
        """Forget the previous solution (e.g. on a field discontinuity)."""
        self._previous = None

    def solve(self, f: np.ndarray, in_place: bool = False) -> np.ndarray:
        """Turn sampled values into spline coefficients.

        Each solve warm-starts from the previous solve's coefficients when
        the batch shape matches (the time-stepping pattern of §V); the
        first solve starts from the right-hand side itself.
        """
        f = np.asarray(f)
        if in_place:
            if f.ndim != 2:
                raise ShapeError(
                    f"in-place solve needs a 2-D (n, batch) array, got {f.shape}"
                )
            if f.dtype != np.float64:
                raise ShapeError(
                    f"in-place solve needs a float64 array, got {f.dtype}"
                )
        elif f.ndim not in (1, 2):
            raise ShapeError(
                f"expected a 1-D or 2-D right-hand side, got shape {f.shape}"
            )
        if f.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {f.shape[0]} does not match "
                f"the {self.n} basis functions"
            )
        if in_place:
            work = f
        else:
            work = np.array(f, dtype=np.float64, copy=True, order="C")
            if work.ndim == 1:
                work = work[:, None]
        x0 = None
        if self._previous is not None and self._previous.shape == work.shape:
            x0 = self._previous
        self.last_iterations = self.chunked.apply_in_place(work, x0=x0)
        self._previous = work.copy()
        if in_place:
            return f
        return work[:, 0] if f.ndim == 1 else work

    def __repr__(self) -> str:
        return (
            f"GinkgoSplineBuilder(n={self.n}, solver={self.solver_name}, "
            f"preconditioner={type(self._solver.preconditioner).__name__}, "
            f"cols_per_chunk={self.chunked.cols_per_chunk})"
        )
