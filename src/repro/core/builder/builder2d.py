"""Tensor-product 2-D spline builder (the gyrokinetic poloidal plane).

A 2-D interpolation on a tensor-product B-spline basis factorizes into two
sweeps of 1-D solves: first along ``x`` for every ``y``-line, then along
``y`` for every ``x``-line of the intermediate result.  Each sweep reuses
the corresponding 1-D :class:`~repro.core.builder.builder.SplineBuilder`
with the full cross-dimension (times any trailing batch) as its batch axis
— exactly the batched workload Algorithm 1 was designed for.  Because the
two passes act on different axes they commute to rounding error, which the
test suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ascopy, get_namespace, is_numpy_namespace
from repro.core.builder.builder import SplineBuilder
from repro.core.spec import BSplineSpec
from repro.exceptions import ShapeError

__all__ = ["SplineBuilder2D"]


class SplineBuilder2D:
    """Two 1-D builders composed into a tensor-product 2-D solve.

    ``spec_x`` / ``spec_y`` may be :class:`~repro.core.spec.BSplineSpec`
    instances or prebuilt spline spaces, independently — mixed periodic /
    clamped boundaries are supported since each axis dispatches to its own
    structure-matched solver.

    With an *engine*, the per-axis builders are resolved through the
    engine's :class:`~repro.runtime.PlanCache`, so every 2-D builder over
    the same axis specs shares one factorization per axis (a poloidal
    plane and its transpose-partner cost one setup, not four).  Requires
    :class:`BSplineSpec` axis specs.
    """

    def __init__(
        self,
        spec_x,
        spec_y,
        version: int = 2,
        dtype=np.float64,
        engine=None,
        **builder_options,
    ) -> None:
        self.engine = engine
        if engine is not None:
            if not (
                isinstance(spec_x, BSplineSpec) and isinstance(spec_y, BSplineSpec)
            ):
                raise ValueError(
                    "engine routing needs BSplineSpec axis specs (prebuilt "
                    "spline spaces cannot key the engine's plan cache)"
                )
            from repro.core.builder.schur import DEFAULT_CHUNK, DEFAULT_DROP_TOL
            from repro.runtime.plan_cache import PlanKey

            def cached(spec):
                key = PlanKey.from_spec(
                    spec,
                    version=version,
                    dtype=dtype,
                    chunk=builder_options.get("chunk", DEFAULT_CHUNK),
                    drop_tol=builder_options.get("drop_tol", DEFAULT_DROP_TOL),
                    backend=builder_options.get("backend", "vectorized"),
                )
                return engine.plan_cache.builder(
                    key,
                    factory=lambda: SplineBuilder(
                        spec, version=version, dtype=dtype, **builder_options
                    ),
                )

            self.builder_x = cached(spec_x)
            self.builder_y = cached(spec_y)
        else:
            self.builder_x = SplineBuilder(
                spec_x, version=version, dtype=dtype, **builder_options
            )
            self.builder_y = SplineBuilder(
                spec_y, version=version, dtype=dtype, **builder_options
            )
        self.space_x = self.builder_x.space_1d
        self.space_y = self.builder_y.space_1d
        self.nx = self.builder_x.n
        self.ny = self.builder_y.n
        self.version = int(version)
        self.dtype = np.dtype(dtype)

    def interpolation_points(self):
        """Greville abscissae per axis: ``(points_x, points_y)``."""
        return (
            self.builder_x.interpolation_points(),
            self.builder_y.interpolation_points(),
        )

    def solve(self, f: np.ndarray) -> np.ndarray:
        """Coefficients for values sampled on the tensor grid.

        *f* has shape ``(nx, ny)`` or ``(nx, ny, batch)``; the result has
        the same shape and lives in the namespace of *f*.
        """
        xp = get_namespace(f, default=np)
        if is_numpy_namespace(xp):
            f = np.asarray(f)
        if f.ndim not in (2, 3) or f.shape[0] != self.nx or f.shape[1] != self.ny:
            raise ShapeError(
                f"expected values of shape ({self.nx}, {self.ny}[, batch]), "
                f"got {f.shape}"
            )
        squeeze = f.ndim == 2
        work = ascopy(f, dtype=self.dtype, xp=xp)
        work = xp.reshape(work, (self.nx, self.ny, -1))
        batch = work.shape[2]
        # x-pass: each of the ny*batch lines along x is one batch column.
        xwork = xp.reshape(work, (self.nx, self.ny * batch))
        self.builder_x.solve(xwork, in_place=True)
        # reshape may copy off-NumPy; fold the solved lines back in.
        work = xp.reshape(xwork, (self.nx, self.ny, batch))
        # y-pass: bring y to the front, solve, and restore the layout.
        if is_numpy_namespace(xp):
            ytensor = np.ascontiguousarray(work.transpose(1, 0, 2))
        else:
            ytensor = xp.asarray(xp.permute_dims(work, (1, 0, 2)), copy=True)
        ywork = xp.reshape(ytensor, (self.ny, self.nx * batch))
        self.builder_y.solve(ywork, in_place=True)
        ysolved = xp.reshape(ywork, (self.ny, self.nx, batch))
        if is_numpy_namespace(xp):
            out = np.ascontiguousarray(ysolved.transpose(1, 0, 2))
        else:
            out = xp.asarray(xp.permute_dims(ysolved, (1, 0, 2)), copy=True)
        return out[:, :, 0] if squeeze else out

    def __repr__(self) -> str:
        return (
            f"SplineBuilder2D(nx={self.nx}, ny={self.ny}, "
            f"solver_x={self.builder_x.solver_name}, "
            f"solver_y={self.builder_y.solver_name}, version={self.version})"
        )
