"""Direct banded solver for non-periodic (clamped) spline matrices.

Clamped B-spline collocation matrices are plain banded — no cyclic wrap,
no corner blocks — so Algorithm 1 degenerates to a single Table I solve.
:class:`DirectBandSolver` mirrors the :class:`~repro.core.builder.schur.SchurSolver`
interface (``solve``/``solve_serial``/``solver_name``/``corner_nnz``) so
:class:`~repro.core.builder.builder.SplineBuilder` can dispatch on boundary
conditions without branching downstream.
"""

from __future__ import annotations

import numpy as np

from repro.backend import asnumpy
from repro.core.builder.plan import make_plan
from repro.core.builder.schur import DEFAULT_CHUNK, _VERSIONS
from repro.exceptions import ShapeError

__all__ = ["DirectBandSolver"]


class DirectBandSolver:
    """Factor-once banded solver: the clamped counterpart of Algorithm 1.

    The §IV version knob is accepted for interface parity: version 0 solves
    the whole batch at once, versions 1 and 2 sweep it in ``chunk``-column
    blocks (there are no corner products to sparsify here).
    """

    def __init__(
        self,
        a: np.ndarray,
        chunk: int = DEFAULT_CHUNK,
        drop_tol: float = 0.0,
        dtype=np.float64,
        tol: float = 1e-12,
    ) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be a positive column count, got {chunk}")
        a = np.asarray(asnumpy(a), dtype=np.float64)
        self.norm1 = float(np.max(np.sum(np.abs(a), axis=0)))
        self.norm_inf = float(np.max(np.sum(np.abs(a), axis=1)))
        plan64 = make_plan(a, tol=tol)
        self.dtype = np.dtype(dtype)
        self.plan = plan64.astype(self.dtype)
        self.n = self.plan.n
        self.chunk = int(chunk)
        self.corner_width = 0
        self.drop_tol = float(drop_tol)

    @property
    def solver_name(self) -> str:
        return self.plan.name

    @property
    def corner_nnz(self) -> dict:
        """No cyclic wrap — the corner operators are empty."""
        return {"lambda": 0, "beta": 0}

    def solve(self, b: np.ndarray, version: int = 2) -> np.ndarray:
        """Solve in place for an ``(n, batch)`` right-hand-side block."""
        if version not in _VERSIONS:
            raise ValueError(
                f"unknown optimization version {version}; expected one of {_VERSIONS}"
            )
        if b.ndim != 2:
            raise ShapeError(
                f"batched solve expects a 2-D (n, batch) block, got shape {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        if version == 0:
            self.plan.solve(b)
            return b
        for start in range(0, b.shape[1], self.chunk):
            self.plan.solve(b[:, start : start + self.chunk])
        return b

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` in place (no wrap — one transposed band solve)."""
        if b.ndim != 2:
            raise ShapeError(
                f"transpose solve expects a 2-D (n, batch) block, got {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side leading extent {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self.plan.solve_transpose(b)
        return b

    def solve_serial(self, b: np.ndarray) -> np.ndarray:
        """Solve in place for a single 1-D right-hand side."""
        if b.ndim != 1:
            raise ShapeError(
                f"serial solve expects a 1-D right-hand side, got shape {b.shape}"
            )
        if b.shape[0] != self.n:
            raise ShapeError(
                f"right-hand side length {b.shape[0]} does not match "
                f"matrix size {self.n}"
            )
        self.plan.solve_serial(b)
        return b

    def __repr__(self) -> str:
        return (
            f"DirectBandSolver(n={self.n}, solver={self.solver_name}, "
            f"chunk={self.chunk}, dtype={self.dtype})"
        )
