"""Hardware descriptors — the paper's Table II.

Numbers are taken verbatim from Table II (which itself extracts them from
the vendor data sheets).  For MI250X the paper treats each Graphics Compute
Die as a single GPU, so the TDP is listed as 500/2 W.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Device:
    """One processor's roofline-relevant description (Table II row set)."""

    name: str
    peak_gflops: float  # FP64 peak [GFlops]
    peak_bandwidth_gbs: float  # peak memory bandwidth [GB/s]
    shared_cache_mb: float
    tdp_watts: float
    year: int
    process_nm: int
    fp64_cores: Optional[int] = None
    simd_bits: Optional[int] = None
    warp_size: Optional[int] = None
    compiler: str = ""

    @property
    def bf_ratio(self) -> float:
        """Byte-per-flop ratio ``B/F`` (Table II's B/F row)."""
        return self.peak_bandwidth_gbs / self.peak_gflops

    def row(self) -> Tuple:
        """Values in Table II's row order (for the table benchmark)."""
        return (
            self.name,
            self.fp64_cores,
            self.shared_cache_mb,
            self.peak_gflops,
            self.peak_bandwidth_gbs,
            round(self.bf_ratio, 3),
            self.simd_bits,
            self.warp_size,
            self.tdp_watts,
            self.process_nm,
            self.year,
            self.compiler,
        )


#: Intel Xeon Gold 6346 (one socket) — Table II column 1.
ICELAKE = Device(
    name="Icelake",
    fp64_cores=32,
    shared_cache_mb=36.0,
    peak_gflops=3174.4,
    peak_bandwidth_gbs=204.8,
    simd_bits=512,
    warp_size=None,
    tdp_watts=205.0,
    process_nm=10,
    year=2021,
    compiler="gcc 11.0",
)

#: NVIDIA A100 (PCIe 40 GB) — Table II column 2.
A100 = Device(
    name="A100",
    fp64_cores=3456,
    shared_cache_mb=40.0,
    peak_gflops=9700.0,
    peak_bandwidth_gbs=1555.0,
    simd_bits=None,
    warp_size=32,
    tdp_watts=400.0,
    process_nm=7,
    year=2020,
    compiler="CUDA/12.2.128",
)

#: AMD MI250X, one GCD — Table II column 3.
MI250X = Device(
    name="MI250X",
    fp64_cores=None,
    shared_cache_mb=16.0 / 2.0,
    peak_gflops=26500.0,
    peak_bandwidth_gbs=1600.0,
    simd_bits=None,
    warp_size=64,
    tdp_watts=500.0 / 2.0,
    process_nm=6,
    year=2021,
    compiler="rocm 5.7.0",
)

#: The paper's evaluation set H (Eq. 8).
PAPER_DEVICES = (ICELAKE, A100, MI250X)


def measure_host_device(size_mb: float = 256.0, repeats: int = 3) -> Device:
    """Estimate the *actual* host machine as a :class:`Device`.

    Peak bandwidth is estimated with a STREAM-triad-like sweep (the usual
    ~80% of theoretical peak on real machines); peak flops with a chunked
    fused-multiply-add sweep through NumPy.  Both are order-of-magnitude
    calibrations so measured kernel efficiencies on the host can be quoted
    against a meaningful roofline; they are **not** vendor-sheet numbers.
    """
    n = int(size_mb * 1e6 / 8 / 3)
    a = np.zeros(n)
    b = np.ones(n)
    c = np.full(n, 2.0)
    best_bw = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(b, 3.0, out=a)
        a += c
        dt = time.perf_counter() - t0
        # Triad traffic: read b, read c, write a twice (two passes).
        best_bw = max(best_bw, 4.0 * n * 8.0 / dt / 1e9)
    m = 512
    x = np.random.default_rng(0).standard_normal((m, m))
    best_fl = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        x @ x
        dt = time.perf_counter() - t0
        best_fl = max(best_fl, 2.0 * m**3 / dt / 1e9)
    return Device(
        name="host",
        peak_gflops=best_fl,
        peak_bandwidth_gbs=best_bw,
        shared_cache_mb=0.0,
        tdp_watts=0.0,
        year=0,
        process_nm=0,
        compiler="numpy",
    )
