"""Performance metrics: GLUPS (Eq. 7), achieved bandwidth (§V-B),
architectural efficiency (Eq. 9)."""

from __future__ import annotations

from repro.perfmodel.hardware import Device


def glups(nx: int, nv: int, seconds: float, steps: int = 1) -> float:
    """Giga lattice updates per second: ``N_x · N_v · steps · 1e-9 / t``."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return nx * nv * steps * 1e-9 / seconds


def achieved_bandwidth_gbs(nx: int, nv: int, seconds: float, steps: int = 1) -> float:
    """The paper's §V-B bandwidth: one load + store of the RHS per solve,
    ``N_x · N_v · 8 / t`` (perfect-cache idealization) in GB/s.

    Note the paper's formula counts ``8`` bytes per lattice point — one
    double moved once; the load and the store are *not* double-counted.
    """
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return nx * nv * 8.0 * steps / seconds / 1e9


def efficiency(achieved_gbs: float, device: Device) -> float:
    """Fraction of the device's peak bandwidth achieved (Table V's %)."""
    return achieved_gbs / device.peak_bandwidth_gbs


def energy_joules(device: Device, seconds: float) -> float:
    """TDP-bound energy estimate of running *seconds* on *device*.

    Table II lists each processor's TDP; multiplying by wall-clock gives
    the standard upper-bound energy estimate used for GLUPS/W comparisons
    (real draw is lower, but relative orderings are preserved for
    similarly-utilized kernels).
    """
    if seconds < 0:
        raise ValueError("elapsed time must be non-negative")
    return device.tdp_watts * seconds


def glups_per_watt(nx: int, nv: int, seconds: float, device: Device,
                   steps: int = 1) -> float:
    """Energy efficiency: lattice updates per second per watt (GLUPS/W)."""
    if device.tdp_watts <= 0:
        raise ValueError("device TDP unknown (zero); cannot compute GLUPS/W")
    return glups(nx, nv, seconds, steps) / device.tdp_watts
