"""Hand-counted memory traffic and flops per kernel — reproducing §IV.

The paper explains each optimization step with Nsight byte counts for the
(1000, 100000) degree-3 problem:

========== ========== ==========
 version    GB loaded  GB stored
========== ========== ==========
 baseline     1.58       1.56     (pttrs kernel alone; + two gemm kernels)
 fused        3.16       2.37     (single fused kernel)
 spmv         1.60       1.59     (single fused kernel)
========== ========== ==========

The traffic model below reproduces these numbers from first principles:

* a banded triangular solve makes **two sweeps** (forward + backward) over
  the right-hand-side block; the working set (``n × batch × 8`` bytes)
  vastly exceeds any cache, so each sweep is one full load + store of the
  block — 2 sweeps → 2 loads + 2 stores of 0.8 GB = 1.6/1.6 GB (matches
  baseline's ``pttrs`` and the entire spmv version, whose corner updates
  touch only ``nnz`` rows);
* the *fused* version's dense ``gemv`` corner updates add one full read of
  ``b0`` (the λ·b0 product), and one read-modify-write of ``b0`` (the
  β·b1 update): +1.6 GB loaded, +0.8 GB stored → 3.2/2.4 GB (matches
  3.16/2.37);
* the baseline's ``gemm`` kernels move the same corner-update traffic, but
  in separate, poorly-performing kernels (§IV-B's Gantt chart).

Flop counts are the usual hand counts per right-hand-side element and are
only used to confirm every kernel is memory-bound (AI « machine balance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ShapeError

_F64 = 8  # bytes per double


@dataclass(frozen=True)
class KernelTraffic:
    """Bytes and flops of one kernel (or one composite solve)."""

    loads_bytes: float
    stores_bytes: float
    flops: float

    @property
    def total_bytes(self) -> float:
        return self.loads_bytes + self.stores_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte moved."""
        return self.flops / self.total_bytes if self.total_bytes else 0.0

    def __add__(self, other: "KernelTraffic") -> "KernelTraffic":
        return KernelTraffic(
            self.loads_bytes + other.loads_bytes,
            self.stores_bytes + other.stores_bytes,
            self.flops + other.flops,
        )


def _solver_flops_per_point(solver: str, degree: int) -> float:
    """Approximate flops per RHS element of the banded Q solve."""
    if solver == "pttrs":
        return 5.0  # fwd: 2 (mul+sub); bwd: 3 (div+mul+sub)
    if solver == "pbtrs":
        kd = 1 if degree <= 3 else 2
        return 4.0 * kd + 2.0
    if solver == "gbtrs":
        klu = max(2, (degree + 1) // 2 * 2)
        return 4.0 * klu + 2.0
    if solver == "getrs":
        return 2.0  # per element per row — only used on the tiny δ' block
    raise ShapeError(f"unknown solver {solver!r}")


def solver_traffic(n: int, batch: int, solver: str = "pttrs",
                   degree: int = 3) -> KernelTraffic:
    """Traffic of the batched Q solve: two full sweeps over the RHS block."""
    block = float(n) * batch * _F64
    return KernelTraffic(
        loads_bytes=2.0 * block,
        stores_bytes=2.0 * block,
        flops=_solver_flops_per_point(solver, degree) * n * batch,
    )


def dense_corner_traffic(n: int, batch: int) -> KernelTraffic:
    """Dense corner updates (gemm or fused gemv): λ·b0 reads all of b0,
    β·b1 reads **and** writes all of b0."""
    block = float(n) * batch * _F64
    return KernelTraffic(
        loads_bytes=2.0 * block,  # b0 read by both corner products
        stores_bytes=1.0 * block,  # b0 rewritten by the β update
        flops=4.0 * n * batch,  # two axpy-like passes
    )


def sparse_corner_traffic(batch: int, nnz_lambda: int, nnz_beta: int) -> KernelTraffic:
    """COO corner updates: traffic proportional to nnz, not to n.

    The touched rows are the ones the fused solver sweep just wrote, so
    they are still cache-resident; only about half of the theoretical
    read-modify-write traffic reaches DRAM (the paper measures the spmv
    version at just +0.02/+0.03 GB over the bare solver sweeps).
    """
    rows = float(nnz_lambda + nnz_beta) * batch * _F64
    return KernelTraffic(
        loads_bytes=0.5 * rows,
        stores_bytes=0.5 * rows,
        flops=2.0 * (nnz_lambda + nnz_beta) * batch,
    )


def version_traffic(
    n: int,
    batch: int,
    version: int,
    solver: str = "pttrs",
    degree: int = 3,
    nnz_lambda: int = 2,
    nnz_beta: int = 48,
) -> KernelTraffic:
    """Total per-solve traffic of builder version 0/1/2 (§IV's numbers)."""
    base = solver_traffic(n, batch, solver, degree)
    if version in (0, 1):
        # v0 and v1 move the same bytes; v0 does it in separate (slower)
        # gemm kernels, v1 inside the fused kernel.
        return base + dense_corner_traffic(n, batch)
    if version == 2:
        return base + sparse_corner_traffic(batch, nnz_lambda, nnz_beta)
    raise ShapeError(f"unknown version {version} (expected 0/1/2)")


def ideal_traffic(n: int, batch: int) -> KernelTraffic:
    """The paper's §V-B idealization: one load + one store of the RHS
    block, assuming perfect unlimited cache (``N_x · N_v · 8`` each way)."""
    block = float(n) * batch * _F64
    return KernelTraffic(block, block, 0.0)


def iterative_traffic(
    n: int,
    batch: int,
    iterations: int,
    nnz_per_row: float,
    solver: str = "bicgstab",
) -> KernelTraffic:
    """Per-solve traffic of the Krylov path (Ginkgo model).

    Per iteration: BiCGStab does 2 spmv + 2 preconditioner applies + ~10
    block-vector sweeps; GMRES does 1 spmv + 1 apply + ~(restart/2) basis
    sweeps on average (modified Gram-Schmidt re-reads grow with j — we use
    a representative average of 6 sweeps).
    """
    block = float(n) * batch * _F64
    # One multi-RHS spmv: gather x once per stored entry per column, plus a
    # write of y (the matrix itself is tiny and cache-resident).
    spmv = (nnz_per_row + 2.0) * block
    if solver == "bicgstab":
        sweeps, spmvs = 10.0, 2.0
    elif solver == "gmres":
        sweeps, spmvs = 6.0, 1.0
    else:
        sweeps, spmvs = 8.0, 1.0
    per_iter_bytes = spmvs * spmv + sweeps * 2 * block
    return KernelTraffic(
        loads_bytes=0.6 * per_iter_bytes * iterations,
        stores_bytes=0.4 * per_iter_bytes * iterations,
        flops=(2.0 * nnz_per_row * n + 8.0 * n) * batch * iterations,
    )


def advection_traffic(n: int, batch: int, version: int = 2,
                      solver: str = "pttrs", degree: int = 3) -> KernelTraffic:
    """Whole Algorithm-2 pipeline: 2 transposes + solve + interpolation."""
    block = float(n) * batch * _F64
    transpose = KernelTraffic(2.0 * block, 2.0 * block, 0.0)
    solve = version_traffic(n, batch, version, solver, degree)
    interp = KernelTraffic(
        loads_bytes=(degree + 2.0) * block,  # d+1 coefficient gathers + feet
        stores_bytes=block,
        flops=2.0 * (degree + 1) * (degree + 1) * n * batch,
    )
    return transpose + solve + interp
