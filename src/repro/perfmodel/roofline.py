"""Roofline model (Williams et al.) — Eq. (10) of the paper."""

from __future__ import annotations

from repro.perfmodel.counters import KernelTraffic
from repro.perfmodel.hardware import Device


def arithmetic_intensity(traffic: KernelTraffic) -> float:
    """Flops per byte of a kernel, from the hand-counted traffic."""
    return traffic.arithmetic_intensity


def attainable_gflops(device: Device, ai_flops_per_byte: float) -> float:
    """``R = min(F, B · f/b)`` — the roofline ceiling at intensity *ai*.

    ``ai`` is the kernel's flops-per-byte ratio ``f_a / b_a``; kernels
    left of the machine-balance point are bandwidth-limited.
    """
    if ai_flops_per_byte < 0:
        raise ValueError("arithmetic intensity must be non-negative")
    return min(
        device.peak_gflops, device.peak_bandwidth_gbs * ai_flops_per_byte
    )


def is_memory_bound(device: Device, traffic: KernelTraffic) -> bool:
    """True when the roofline at this kernel's intensity is the bandwidth
    slope (AI below the machine balance ``F/B``)."""
    balance = device.peak_gflops / device.peak_bandwidth_gbs
    return traffic.arithmetic_intensity < balance
