"""Calibrating the device simulator against a *real* accelerator backend.

The analytical :data:`~repro.perfmodel.devicesim.EFFICIENCY` table carries
the paper's Table III fits for machines we cannot run on.  But the kernel
layer is now namespace-agnostic (:mod:`repro.backend`): when a real
accelerator library (cupy / torch / jax) is importable, the very same
kernels that production solves run can be *timed* on that device, and the
per-kernel-class efficiencies re-fitted from measurements instead of from
the paper's tables:

1. a STREAM-triad sweep through the backend estimates the device's
   achievable peak bandwidth (the roofline denominator);
2. one representative kernel per class — batched ``pttrs`` (stream),
   the corner ``gemv`` contraction, a dense ``gemm``, and a COO spmv
   sweep (iterative) — is timed through the array-API kernel layer;
3. ``eff(class) = achieved bytes/s ÷ triad bytes/s``, the same definition
   the paper uses against Nsight counters.

With no accelerator importable (the common CI case) :func:`calibrate`
falls back to the analytical Table III model, clearly labelled, so every
downstream consumer — :func:`portability_report`'s Table V
``P(a, p, H)`` reproduction included — works identically either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.backend import ordered_matmul, resolve_backend
from repro.exceptions import BackendError
from repro.perfmodel.counters import solver_traffic
from repro.perfmodel.devicesim import (
    CONFIG_SOLVER,
    EFFICIENCY,
    SPLINE_CONFIG_COST_UNITS,
    DeviceSimulator,
    EfficiencyModel,
)
from repro.perfmodel.hardware import PAPER_DEVICES, Device
from repro.perfmodel.portability import pennycook_metric

__all__ = [
    "ACCELERATOR_BACKENDS",
    "CalibrationResult",
    "calibrate",
    "measure_backend_efficiency",
    "portability_report",
]

#: Backends worth timing: real device libraries, probed in this order.
ACCELERATOR_BACKENDS = ("cupy", "torch", "jax")


@dataclass(frozen=True)
class CalibrationResult:
    """One calibrated efficiency model and where its numbers came from."""

    device: Device
    model: EfficiencyModel
    #: ``"measured:<backend>"`` or ``"analytical"`` (Table III fallback).
    source: str
    #: Per kernel class, the achieved GB/s behind each fitted efficiency
    #: (empty on the analytical path).
    samples: Dict[str, float] = field(default_factory=dict)

    @property
    def measured(self) -> bool:
        return self.source.startswith("measured")

    def simulator(self) -> DeviceSimulator:
        """A :class:`DeviceSimulator` running on this calibration."""
        return DeviceSimulator(self.device, model=self.model)


def _sync(xp) -> None:
    """Block until the backend's queued device work is done (no-op on
    synchronous backends)."""
    cuda = getattr(xp, "cuda", None)
    if cuda is not None:
        stream = getattr(cuda, "get_current_stream", None)
        if stream is not None:  # cupy
            stream().synchronize()
            return
        sync = getattr(cuda, "synchronize", None)
        if sync is not None and getattr(cuda, "is_available", lambda: False)():
            sync()  # torch


def _finish(xp, out) -> None:
    """Force lazy backends (jax) to materialise *out*, then sync."""
    block = getattr(out, "block_until_ready", None)
    if block is not None:
        block()
    _sync(xp)


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _triad_gbs(xp, size: int, repeats: int) -> float:
    """STREAM-triad achieved bandwidth through *xp* — the roofline peak."""
    b = xp.asarray(np.ones(size))
    c = xp.asarray(np.full(size, 2.0))

    def run():
        out = b * 3.0 + c
        _finish(xp, out)

    run()  # warm-up (JIT, allocator pools)
    dt = _time_best(run, repeats)
    return 3.0 * size * 8.0 / dt / 1e9


def measure_backend_efficiency(
    backend: Optional[str] = None,
    n: int = 2048,
    batch: int = 2048,
    repeats: int = 3,
) -> Optional[CalibrationResult]:
    """Time one kernel per class through *backend*; ``None`` when no
    accelerator backend is importable.

    The returned :class:`CalibrationResult` names its device after the
    backend; decay/overhead/saturation fields are carried over from the
    analytical A100 entry (they shape curves the microbenchmarks cannot
    see), while the four class efficiencies are measured.
    """
    names: Iterable[str] = (backend,) if backend else ACCELERATOR_BACKENDS
    xp = None
    chosen = None
    for name in names:
        try:
            xp = resolve_backend(name)
            chosen = name
            break
        except BackendError:
            continue
    if xp is None:
        return None

    from repro.kbatched import coo_spmm, pttrf, pttrs
    from repro.kbatched.coo import Coo

    peak_gbs = _triad_gbs(xp, max(n * batch // 4, 1 << 20), repeats)
    samples: Dict[str, float] = {}

    # stream: the batched cyclic-tridiagonal solve, the paper's hot loop.
    d = np.full(n, 4.0)
    e = np.full(n - 1, 1.0)
    pttrf(d, e)
    dd = xp.asarray(d)
    ee = xp.asarray(e)
    rhs = xp.asarray(np.ones((n, batch)))

    def run_stream():
        pttrs(dd, ee, rhs)
        _finish(xp, rhs)

    run_stream()
    t = _time_best(run_stream, repeats)
    stream_bytes = solver_traffic(n, batch, "pttrs").total_bytes
    samples["stream"] = stream_bytes / t / 1e9

    # gemv: the dense corner contraction of version 1 (tall-skinny).
    corner = xp.asarray(np.ones((4, n)))

    def run_gemv():
        out = ordered_matmul(xp, corner, rhs)
        _finish(xp, out)

    run_gemv()
    t = _time_best(run_gemv, repeats)
    samples["gemv"] = (4 * n + n * batch + 4 * batch) * 8.0 / t / 1e9

    # gemm: the separate dense corner kernels of version 0.
    m = min(n, 1024)
    a_sq = xp.asarray(np.ones((m, m)))
    b_sq = xp.asarray(np.ones((m, m)))

    def run_gemm():
        out = xp.matmul(a_sq, b_sq)
        _finish(xp, out)

    run_gemm()
    t = _time_best(run_gemm, repeats)
    samples["gemm"] = 3.0 * m * m * 8.0 / t / 1e9

    # iterative: a sparse corner spmv sweep (the Krylov building block).
    nnz = 4 * n
    rng = np.random.default_rng(0)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = xp.asarray(np.ones(nnz))
    mat = Coo(n, n, rows, cols, vals)
    y = xp.asarray(np.zeros((n, batch)))

    def run_spmv():
        coo_spmm(1.0, mat, rhs, y)
        _finish(xp, y)

    run_spmv()
    t = _time_best(run_spmv, repeats)
    samples["iterative"] = (2.0 * n * batch + 3.0 * nnz) * 8.0 / t / 1e9

    template = EFFICIENCY["A100"]
    model = EfficiencyModel(
        stream=min(samples["stream"] / peak_gbs, 1.0),
        gemv=min(samples["gemv"] / peak_gbs, 1.0),
        gemm=min(samples["gemm"] / peak_gbs, 1.0),
        iterative=min(samples["iterative"] / peak_gbs, 1.0),
        config_decay=template.config_decay,
        launch_overhead_s=template.launch_overhead_s,
        batch_half=template.batch_half,
    )
    device = Device(
        name=f"measured-{chosen}",
        peak_gflops=0.0,
        peak_bandwidth_gbs=peak_gbs,
        shared_cache_mb=0.0,
        tdp_watts=0.0,
        year=0,
        process_nm=0,
        compiler=chosen,
    )
    return CalibrationResult(
        device=device,
        model=model,
        source=f"measured:{chosen}",
        samples=samples,
    )


def calibrate(
    device: Optional[Device] = None,
    backend: Optional[str] = None,
    **measure_kwargs,
) -> CalibrationResult:
    """Measured calibration when an accelerator backend imports,
    analytical Table III otherwise.

    With an explicit *device* the analytical path uses that device's
    fitted :data:`EFFICIENCY` entry; the default is the A100 column.
    """
    result = measure_backend_efficiency(backend=backend, **measure_kwargs)
    if result is not None:
        return result
    if device is None:
        device = next(d for d in PAPER_DEVICES if d.name == "A100")
    if device.name not in EFFICIENCY:
        raise KeyError(
            f"no analytical efficiency model for device {device.name!r} "
            "and no accelerator backend importable to measure one"
        )
    return CalibrationResult(
        device=device,
        model=EFFICIENCY[device.name],
        source="analytical",
    )


def portability_report(
    n: int = 1023,
    batch: int = 65536,
    version: int = 2,
    devices: Iterable[Device] = PAPER_DEVICES,
    extra: Optional[CalibrationResult] = None,
) -> List[dict]:
    """Table V: per spline configuration, each platform's architectural
    efficiency and the Pennycook ``P(a, p, H)`` over the set.

    Efficiency of one platform is the model-predicted solve bandwidth
    over that platform's peak — the paper's bandwidth-roofline
    definition (all kernels are memory bound).  *extra* adds a measured
    calibration (e.g. from :func:`calibrate` on a GPU host) as one more
    platform in ``H``.
    """
    sims = [DeviceSimulator(d) for d in devices]
    if extra is not None:
        sims.append(extra.simulator())
    rows: List[dict] = []
    for degree, uniform in sorted(
        SPLINE_CONFIG_COST_UNITS, key=lambda k: (not k[1], k[0])
    ):
        per_device: Dict[str, float] = {}
        for sim in sims:
            bw = sim.solve_bandwidth_gbs(
                n, batch, version=version, degree=degree, uniform=uniform
            )
            per_device[sim.device.name] = bw / sim.device.peak_bandwidth_gbs
        rows.append(
            {
                "degree": degree,
                "uniform": uniform,
                "solver": CONFIG_SOLVER[(degree, uniform)],
                "efficiency": per_device,
                "pennycook": pennycook_metric(per_device.values()),
            }
        )
    return rows
