"""The Pennycook performance-portability metric — Eqs. (8)-(9).

``P(a, p, H)`` is the harmonic mean of the application's architectural
efficiency over the platform set ``H``, and zero if any platform is
unsupported.  The paper reports it per spline configuration in Table V,
with efficiencies measured against the bandwidth roofline (all kernels are
memory bound).
"""

from __future__ import annotations

from typing import Iterable, Optional


def pennycook_metric(efficiencies: Iterable[Optional[float]]) -> float:
    """Harmonic mean of *efficiencies* (fractions in (0, 1]); 0 if any
    platform is unsupported (``None``) or the set is empty.

    Matches Eq. (8): ``|H| / Σ 1/e_i`` when every ``i ∈ H`` is supported.
    """
    effs = list(efficiencies)
    if not effs or any(e is None for e in effs):
        return 0.0
    if any(e <= 0 for e in effs):
        raise ValueError("efficiencies must be positive fractions")
    return len(effs) / sum(1.0 / e for e in effs)
