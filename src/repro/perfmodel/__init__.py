"""Performance model: hardware catalog, roofline, metrics and device simulator.

The paper's evaluation rests on four quantitative tools, all reproduced
here:

* :mod:`~repro.perfmodel.hardware` — the Table II device catalog (Icelake,
  A100, MI250X) plus a measured descriptor of the actual host machine;
* :mod:`~repro.perfmodel.counters` — hand-counted memory traffic and flops
  for every kernel/version, reproducing the Nsight byte counts of §IV;
* :mod:`~repro.perfmodel.roofline` / :mod:`~repro.perfmodel.metrics` —
  attainable performance (Eq. 10), GLUPS (Eq. 7), achieved bandwidth (§V-B);
* :mod:`~repro.perfmodel.portability` — the Pennycook performance-
  portability metric ``P(a, p, H)`` (Eqs. 8-9);
* :mod:`~repro.perfmodel.devicesim` — an analytical timing model of the
  three paper devices.  **Substitution notice:** we have no A100/MI250X;
  the simulator predicts kernel times from the traffic model and
  per-device efficiency parameters calibrated once against the paper's
  published measurements, and is used only to regenerate the *shape* of
  Tables III/V and Fig. 2.  Host-CPU numbers in the benchmarks are real
  wall-clock measurements;
* :mod:`~repro.perfmodel.calibrate` — re-fits those kernel-class
  efficiencies by *measuring* the array-API kernel layer on any importable
  accelerator backend (cupy / torch / jax), falling back to the analytical
  Table III values, and regenerates Table V's ``P(a, p, H)``.
"""

from repro.perfmodel.hardware import (
    A100,
    ICELAKE,
    MI250X,
    PAPER_DEVICES,
    Device,
    measure_host_device,
)
from repro.perfmodel.counters import KernelTraffic, advection_traffic, version_traffic
from repro.perfmodel.roofline import arithmetic_intensity, attainable_gflops
from repro.perfmodel.metrics import achieved_bandwidth_gbs, efficiency, glups
from repro.perfmodel.portability import pennycook_metric
from repro.perfmodel.devicesim import DeviceSimulator, SPLINE_CONFIG_COST_UNITS
from repro.perfmodel.calibrate import (
    CalibrationResult,
    calibrate,
    measure_backend_efficiency,
    portability_report,
)

__all__ = [
    "Device",
    "ICELAKE",
    "A100",
    "MI250X",
    "PAPER_DEVICES",
    "measure_host_device",
    "KernelTraffic",
    "version_traffic",
    "advection_traffic",
    "attainable_gflops",
    "arithmetic_intensity",
    "glups",
    "achieved_bandwidth_gbs",
    "efficiency",
    "pennycook_metric",
    "DeviceSimulator",
    "SPLINE_CONFIG_COST_UNITS",
    "CalibrationResult",
    "calibrate",
    "measure_backend_efficiency",
    "portability_report",
]
