"""Analytical device simulator — the stand-in for A100 / MI250X hardware.

**What this is.**  We cannot run on the paper's machines, so Tables III/V
and Fig. 2's device rows are regenerated from a timing model:

    t(kernel) = overhead + bytes(kernel) / (BW_peak · eff · util(batch))

with

* ``bytes`` from the first-principles traffic model of
  :mod:`repro.perfmodel.counters` (which independently reproduces the
  paper's Nsight byte counts),
* ``eff`` a per-device efficiency for each kernel *class* (streaming
  banded solve / dense corner ``gemv`` inside the fused kernel / separate
  dense ``gemm`` kernels / Krylov sweeps), **calibrated once** against the
  paper's Table III — three numbers per device; every other prediction
  (other versions, other sizes, Fig. 2's sweep, Table V's six rows) then
  follows from the model,
* a degradation factor ``decay^cost_units`` capturing the extra
  divergence/latency of wider-band and pivoted solvers (Table V's
  degradation with degree and non-uniformity),
* ``util(batch) = batch / (batch + batch_half)`` — a saturation curve for
  the under-filled-device regime that shapes the left side of Fig. 2,
* per-kernel-launch ``overhead``.

**What this is not:** a cycle-accurate GPU model.  It reproduces *shape* —
orderings, ratios, crossovers — not third-digit timings; EXPERIMENTS.md
reports model-vs-paper numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.perfmodel.counters import (
    KernelTraffic,
    dense_corner_traffic,
    ideal_traffic,
    iterative_traffic,
    solver_traffic,
    sparse_corner_traffic,
)
from repro.perfmodel.hardware import A100, ICELAKE, MI250X, Device

#: Relative difficulty of each (degree, uniform) spline configuration for
#: the batched Q solver: 0 = cyclic tridiagonal (pttrs), growing with band
#: width and with the pivoting/fill-in of gbtrs.  Drives the monotone
#: degradation seen across Table V's rows.
SPLINE_CONFIG_COST_UNITS: Dict[Tuple[int, bool], int] = {
    (3, True): 0,
    (4, True): 1,
    (5, True): 1,  # same band width as degree 4 (kd = 2)
    (3, False): 2,
    (4, False): 3,
    (5, False): 4,
}

#: Table-I solver for each configuration (mirrors the builder's choice).
CONFIG_SOLVER: Dict[Tuple[int, bool], str] = {
    (3, True): "pttrs",
    (4, True): "pbtrs",
    (5, True): "pbtrs",
    (3, False): "gbtrs",
    (4, False): "gbtrs",
    (5, False): "gbtrs",
}


@dataclass(frozen=True)
class EfficiencyModel:
    """Per-device kernel-class efficiencies (fractions of peak bandwidth)."""

    stream: float  # fused banded-solve / spmv / transpose kernels
    gemv: float  # dense corner updates inside the fused kernel (v1)
    gemm: float  # separate dense gemm kernels (v0)
    iterative: float  # Krylov block-vector sweeps
    config_decay: float  # efficiency multiplier per config cost unit
    launch_overhead_s: float  # per kernel launch
    batch_half: float  # batch size at which the device is half-utilized


#: Calibrated against Table III (see module docstring).  The three *_eff
#: numbers per device are the only fitted values; the decay factors come
#: from Table V's uniform-degree-3 → non-uniform-degree-5 ratio.
EFFICIENCY: Dict[str, EfficiencyModel] = {
    "Icelake": EfficiencyModel(
        stream=0.198, gemv=0.35, gemm=0.175, iterative=0.15,
        config_decay=0.80, launch_overhead_s=2e-6, batch_half=256.0,
    ),
    "A100": EfficiencyModel(
        stream=0.775, gemv=0.76, gemm=0.196, iterative=0.45,
        config_decay=0.853, launch_overhead_s=5e-6, batch_half=8192.0,
    ),
    "MI250X": EfficiencyModel(
        stream=0.70, gemv=0.197, gemm=0.125, iterative=0.35,
        config_decay=0.70, launch_overhead_s=8e-6, batch_half=8192.0,
    ),
}


class DeviceSimulator:
    """Predicts kernel and pipeline times for one catalog device."""

    def __init__(self, device: Device, model: Optional[EfficiencyModel] = None):
        self.device = device
        if model is None:
            if device.name not in EFFICIENCY:
                raise KeyError(
                    f"no calibrated efficiency model for device {device.name!r}; "
                    "pass one explicitly"
                )
            model = EFFICIENCY[device.name]
        self.model = model

    # -- primitive ---------------------------------------------------------
    def kernel_time(
        self, traffic: KernelTraffic, eff: float, batch: int, launches: int = 1
    ) -> float:
        """Time of one kernel class moving *traffic* at efficiency *eff*."""
        if eff <= 0:
            raise ValueError("efficiency must be positive")
        util = batch / (batch + self.model.batch_half)
        bw = self.device.peak_bandwidth_gbs * 1e9 * eff * util
        return launches * self.model.launch_overhead_s + traffic.total_bytes / bw

    def _config_eff(self, base: float, degree: int, uniform: bool) -> float:
        units = SPLINE_CONFIG_COST_UNITS[(degree, bool(uniform))]
        return base * self.model.config_decay**units

    # -- the spline builder (Table III / Table V) ---------------------------
    def solve_time(
        self,
        n: int,
        batch: int,
        version: int = 2,
        degree: int = 3,
        uniform: bool = True,
        nnz_lambda: int = 2,
        nnz_beta: int = 48,
    ) -> float:
        """Predicted time of one batched spline solve (Algorithm 1)."""
        solver = CONFIG_SOLVER[(degree, bool(uniform))]
        stream_eff = self._config_eff(self.model.stream, degree, uniform)
        base = self.kernel_time(
            solver_traffic(n, batch, solver, degree), stream_eff, batch
        )
        if version == 2:
            corner = self.kernel_time(
                sparse_corner_traffic(batch, nnz_lambda, nnz_beta),
                stream_eff,
                batch,
                launches=0,  # fused into the same kernel
            )
        elif version == 1:
            corner = self.kernel_time(
                dense_corner_traffic(n, batch), self.model.gemv, batch, launches=0
            )
        elif version == 0:
            corner = self.kernel_time(
                dense_corner_traffic(n, batch), self.model.gemm, batch, launches=3
            )
        else:
            raise ValueError(f"unknown version {version}")
        return base + corner

    def solve_bandwidth_gbs(self, n: int, batch: int, **kwargs) -> float:
        """Table V's metric: ideal bytes / predicted solve time."""
        t = self.solve_time(n, batch, **kwargs)
        # §V-B counts N_x · N_v · 8 bytes total (one pass of the block).
        return n * batch * 8.0 / t / 1e9

    # -- the iterative path (Fig. 2 bottom row) ------------------------------
    def iterative_solve_time(
        self,
        n: int,
        batch: int,
        iterations: int,
        nnz_per_row: float,
        solver: str = "bicgstab",
        cols_per_chunk: int = 65535,
    ) -> float:
        """Predicted time of the chunk-pipelined Krylov solve (Listing 3)."""
        chunks = max(1, -(-batch // cols_per_chunk))
        per_chunk_batch = min(batch, cols_per_chunk)
        traffic = iterative_traffic(
            n, per_chunk_batch, iterations, nnz_per_row, solver
        )
        kernels_per_iter = 10 if solver == "bicgstab" else 6
        # Staging copies in/out of the chunk buffers (Listing 3's deep_copys).
        staging = KernelTraffic(
            3.0 * n * per_chunk_batch * 8.0, 3.0 * n * per_chunk_batch * 8.0, 0.0
        )
        per_chunk = self.kernel_time(
            traffic, self.model.iterative, per_chunk_batch,
            launches=kernels_per_iter * max(iterations, 1),
        ) + self.kernel_time(staging, self.model.stream, per_chunk_batch)
        return chunks * per_chunk

    # -- the whole advection step (Fig. 2) ----------------------------------
    def advection_time(
        self,
        n: int,
        batch: int,
        version: int = 2,
        degree: int = 3,
        uniform: bool = True,
        method: str = "direct",
        iterations: int = 0,
        nnz_per_row: float = 3.0,
        solver: str = "bicgstab",
        cols_per_chunk: int = 65535,
        fuse_transpose: bool = False,
    ) -> float:
        """One Algorithm-2 step: transposes + spline solve + interpolation.

        ``fuse_transpose=True`` models the §V-C optimization: the two
        materializing transposes collapse into in-kernel staging, leaving
        only one layout-changing pass (the post-evaluation write-back).
        """
        block = float(n) * batch * 8.0
        transpose_passes = 1 if fuse_transpose else 2
        transpose = self.kernel_time(
            KernelTraffic(transpose_passes * block, transpose_passes * block, 0.0),
            self.model.stream, batch, launches=transpose_passes,
        )
        interp = self.kernel_time(
            KernelTraffic((degree + 2.0) * block, block, 0.0),
            self.model.stream,
            batch,
        )
        if method == "direct":
            solve = self.solve_time(n, batch, version, degree, uniform)
        elif method == "ginkgo":
            solve = self.iterative_solve_time(
                n, batch, iterations, nnz_per_row, solver, cols_per_chunk
            )
        else:
            raise ValueError(f"unknown method {method!r}")
        return transpose + solve + interp

    def glups(self, n: int, batch: int, **kwargs) -> float:
        """Predicted GLUPS of one advection step (Eq. 7)."""
        return n * batch * 1e-9 / self.advection_time(n, batch, **kwargs)


def paper_simulators() -> Dict[str, DeviceSimulator]:
    """Simulators for the three Table II devices."""
    return {d.name: DeviceSimulator(d) for d in (ICELAKE, A100, MI250X)}
