"""Engine telemetry — counters, distributions and span timings.

Every moving part of the runtime engine reports here: the plan cache its
hits/misses/evictions, the coalescer its assembled batch widths, the engine
its queue depth and per-request latency.  A :class:`Telemetry` instance is
a thread-safe bag of

* **counters** — monotonically increasing integers (``incr``);
* **series** — bounded sample reservoirs with running count/sum/max, from
  which p50/p99 quantiles are read (``observe``);
* **spans** — ``with telemetry.span("solve"):`` context timing, recorded
  as a ``<name>.seconds`` series;
* **events** — bounded last-N rings of structured records (``event``),
  used by the resilience layer for state transitions (circuit breaker
  open/close, supervisor respawns, degradation-ladder steps) and for the
  poisoned-request quarantine ledger;
* **tenants** — the multi-tenant dimension (``tenant_incr`` /
  ``tenant_observe``): per-tenant counters and sample series kept beside
  the global ones, so an admission layer can attribute submissions,
  completions, rejections, quarantines and latency to *who* asked.
  Requests without a tenant label cost nothing here.

``snapshot()`` exports everything as a plain dict (the exa-scale analogue
would ship this to a metrics backend) with the per-tenant dimension under
``snapshot()["tenants"]``; ``render()`` prints it through the same
:class:`repro.bench.report.Table` layout as the paper-table benchmarks —
including a per-tenant table when any tenant reported — so engine runs
and paper runs read alike.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

from repro.bench.report import Table

__all__ = [
    "Telemetry",
    "merged_counter",
    "merge_snapshots",
    "render_snapshot",
    "render_tenant_table",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_MAX_EVENTS",
]

#: samples retained per series; older observations only survive in the
#: running count/sum/min/max aggregates
DEFAULT_MAX_SAMPLES = 4096

#: structured records retained per event ring; older events are dropped
DEFAULT_MAX_EVENTS = 64


class _Series:
    """One observed quantity: bounded reservoir + unbounded aggregates."""

    __slots__ = ("samples", "count", "total", "minimum", "maximum")

    def __init__(self, max_samples: int) -> None:
        self.samples: deque = deque(maxlen=max_samples)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def snapshot_samples(self) -> np.ndarray:
        """The current reservoir as an array (call under the owning lock)."""
        return np.fromiter(self.samples, dtype=float, count=len(self.samples))

    @staticmethod
    def quantile_of(samples: np.ndarray, q: float) -> float:
        if samples.size == 0:
            return float("nan")
        return float(np.quantile(samples, q))

    def quantile(self, q: float) -> float:
        return self.quantile_of(self.snapshot_samples(), q)

    def summary(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else float("nan")
        samples = self.snapshot_samples()
        return {
            "count": self.count,
            "mean": mean,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
            "p50": self.quantile_of(samples, 0.50),
            "p99": self.quantile_of(samples, 0.99),
        }


class Telemetry:
    """Thread-safe counters / series / span timings for the runtime engine."""

    def __init__(
        self,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        max_events: int = DEFAULT_MAX_EVENTS,
        wall_clock=None,
        mono_clock=None,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_samples = int(max_samples)
        self.max_events = int(max_events)
        # Injectable clocks so clock-step behaviour is testable: ``t`` is
        # the human-readable wall stamp, ``mono`` the NTP-immune ordering
        # key (CLOCK_MONOTONIC is system-wide on Linux, so rings merged
        # across processes of one host still sort correctly).
        self._wall_clock = time.time if wall_clock is None else wall_clock
        self._mono_clock = time.monotonic if mono_clock is None else mono_clock
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._series: Dict[str, _Series] = {}
        self._events: Dict[str, deque] = {}
        # tenant -> ("counters" dict, "series" dict); populated only by
        # tenant-labelled traffic, so single-tenant runs never touch it
        self._tenants: Dict[str, tuple] = {}

    # -- recording ------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution *name*."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self.max_samples)
            series.observe(float(value))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; the duration lands in the ``<name>.seconds`` series."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(f"{name}.seconds", time.perf_counter() - t0)

    def _tenant_slot(self, tenant) -> tuple:
        """The (counters, series) pair of *tenant* (call under the lock)."""
        key = str(tenant)
        slot = self._tenants.get(key)
        if slot is None:
            slot = self._tenants[key] = ({}, {})
        return slot

    def tenant_incr(self, tenant, name: str, amount: int = 1) -> None:
        """Add *amount* to tenant-scoped counter *name* (creating at zero)."""
        with self._lock:
            counters, _ = self._tenant_slot(tenant)
            counters[name] = counters.get(name, 0) + amount

    def tenant_observe(self, tenant, name: str, value: float) -> None:
        """Record one sample of the tenant-scoped distribution *name*."""
        with self._lock:
            _, series = self._tenant_slot(tenant)
            s = series.get(name)
            if s is None:
                s = series[name] = _Series(self.max_samples)
            s.observe(float(value))

    def event(self, name: str, **fields) -> None:
        """Append one structured record to the bounded ring *name*.

        Each record is the given fields plus a wall-clock ``t`` stamp
        (human-readable) and a monotonic ``mono`` stamp (the ordering
        key — every deadline, token bucket and breaker in the runtime
        uses ``time.monotonic``, and unlike ``t`` it cannot jump under
        an NTP step; :func:`merge_snapshots` sorts merged rings on it).
        The ring keeps the most recent ``max_events`` records, so a
        long campaign's snapshot always shows the latest transitions
        (respawns, breaker flips, quarantined requests) without growing.
        """
        record = {"t": self._wall_clock(), "mono": self._mono_clock(), **fields}
        with self._lock:
            ring = self._events.get(name)
            if ring is None:
                ring = self._events[name] = deque(maxlen=self.max_events)
            ring.append(record)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def tenant_counter(self, tenant, name: str) -> int:
        with self._lock:
            slot = self._tenants.get(str(tenant))
            return slot[0].get(name, 0) if slot is not None else 0

    def events(self, name: str) -> list:
        """The retained records of the event ring *name* (oldest first)."""
        with self._lock:
            ring = self._events.get(name)
            return [dict(r) for r in ring] if ring is not None else []

    def quantile(self, name: str, q: float) -> float:
        # The sample reservoir must be materialized *under* the lock: a
        # concurrent observe() appending to the deque while np.fromiter
        # walks it raises "deque mutated during iteration".
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return float("nan")
            samples = series.snapshot_samples()
        return _Series.quantile_of(samples, q)

    def snapshot(self) -> dict:
        """Everything as a plain dict:
        ``{"counters": ..., "series": ..., "events": ..., "tenants": ...}``
        where ``tenants`` maps each tenant id to its own
        ``{"counters": ..., "series": ...}`` sub-snapshot."""
        with self._lock:
            counters = dict(self._counters)
            series = {name: s.summary() for name, s in self._series.items()}
            events = {
                name: [dict(r) for r in ring]
                for name, ring in self._events.items()
                if ring
            }
            tenants = {
                tenant: {
                    "counters": dict(tc),
                    "series": {name: s.summary() for name, s in ts.items()},
                }
                for tenant, (tc, ts) in self._tenants.items()
            }
        return {
            "counters": counters,
            "series": series,
            "events": events,
            "tenants": tenants,
        }

    def render(self, title: str = "Runtime engine telemetry") -> str:
        """Counters and series as one paper-style ASCII table."""
        return render_snapshot(self.snapshot(), title)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._series.clear()
            self._events.clear()
            self._tenants.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"Telemetry(counters={len(self._counters)}, "
                f"series={len(self._series)})"
            )


def render_snapshot(snapshot: dict, title: str = "Runtime engine telemetry") -> str:
    """A :meth:`Telemetry.snapshot`-shaped dict (possibly merged across
    workers by :func:`merge_snapshots`) as one paper-style ASCII table,
    followed by a per-tenant table when any tenant-labelled traffic was
    recorded (the rejection/quarantine attribution view)."""
    table = Table(title, ["metric", "count", "mean", "p50", "p99", "max"])
    for name in sorted(snapshot.get("counters", {})):
        table.add_row(name, snapshot["counters"][name], "", "", "", "")
    for name in sorted(snapshot.get("series", {})):
        s = snapshot["series"][name]
        table.add_row(name, s["count"], s["mean"], s["p50"], s["p99"], s["max"])
    rendered = table.render()
    tenants = snapshot.get("tenants") or {}
    if tenants:
        rendered += "\n\n" + render_tenant_table(tenants)
    return rendered


def render_tenant_table(tenants: dict, title: str = "Per-tenant telemetry") -> str:
    """The ``tenants`` section of a snapshot as one row-per-tenant table.

    The columns are the multi-tenant admission story: what each tenant
    submitted, what completed, and where the rest went — rejected at the
    door (admission/backpressure/circuit), timed out, or quarantined as
    poisoned — plus the tenant's observed latency tail.
    """
    table = Table(
        title,
        [
            "tenant",
            "submitted",
            "completed",
            "failed",
            "rejected",
            "timed_out",
            "quarantined",
            "hedges",
            "p50 lat (s)",
            "p99 lat (s)",
        ],
    )
    for tenant in sorted(tenants):
        counters = tenants[tenant].get("counters", {})
        series = tenants[tenant].get("series", {})
        latency = series.get("request_latency_seconds", {})
        table.add_row(
            tenant,
            counters.get("requests_submitted", 0),
            counters.get("requests_completed", 0),
            counters.get("requests_failed", 0),
            counters.get("requests_rejected", 0),
            counters.get("requests_timed_out", 0),
            counters.get("requests_quarantined", 0),
            counters.get("hedges", 0),
            latency.get("p50", float("nan")),
            latency.get("p99", float("nan")),
        )
    return table.render()


def merged_counter(snapshot: dict, *names: str) -> int:
    """Sum several counters out of a :meth:`Telemetry.snapshot` dict."""
    counters = snapshot.get("counters", {})
    return sum(int(counters.get(name, 0)) for name in names)


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold several :meth:`Telemetry.snapshot` dicts into one.

    The sharded executor keeps one :class:`Telemetry` per worker process;
    this merges their exported snapshots (plus the parent's) into a single
    fleet view.  Counters add exactly (each name is summed across
    snapshots with :func:`merged_counter`); series merge their exact
    aggregates — count, count-weighted mean, min, max.  Quantiles cannot
    be recovered from per-worker summaries, so a merged series keeps p50
    and p99 only when exactly one contributing snapshot observed it, and
    reports NaN otherwise.  Event rings concatenate and are sorted on
    their monotonic ``mono`` stamp when every record in the merged ring
    carries one (rings from processes of the same host share the
    system-wide CLOCK_MONOTONIC epoch); otherwise the wall-clock ``t``
    stamp orders them — never a mix, since the two epochs are
    incomparable.  The result is trimmed to the newest
    :data:`DEFAULT_MAX_EVENTS` records per name.  Per-tenant
    sub-snapshots merge with the same counter/series rules, tenant by
    tenant.
    """
    names = []
    for snap in snapshots:
        for name in snap.get("counters", {}):
            if name not in names:
                names.append(name)
    counters = {
        name: sum(merged_counter(snap, name) for snap in snapshots)
        for name in names
    }
    series: Dict[str, dict] = {}
    for snap in snapshots:
        for name, summ in snap.get("series", {}).items():
            _merge_series_into(series, name, summ)
    events: Dict[str, list] = {}
    for snap in snapshots:
        for name, records in snap.get("events", {}).items():
            events.setdefault(name, []).extend(records)
    events = {
        name: _sorted_ring(records)[-DEFAULT_MAX_EVENTS:]
        for name, records in events.items()
    }
    tenants: Dict[str, dict] = {}
    for snap in snapshots:
        for tenant, sub in (snap.get("tenants") or {}).items():
            merged = tenants.setdefault(tenant, {"counters": {}, "series": {}})
            for name, value in sub.get("counters", {}).items():
                merged["counters"][name] = merged["counters"].get(name, 0) + int(
                    value
                )
            for name, summ in sub.get("series", {}).items():
                _merge_series_into(merged["series"], name, summ)
    return {
        "counters": counters,
        "series": series,
        "events": events,
        "tenants": tenants,
    }


def _sorted_ring(records: list) -> list:
    """Order one merged event ring for trimming.

    Sorts on the monotonic ``mono`` stamp when every record carries one
    (the NTP-immune key); otherwise on the wall-clock ``t`` stamp.  The
    sort is stable, so records without either stamp keep snapshot order.
    """
    if records and all("mono" in r for r in records):
        return sorted(records, key=lambda r: r["mono"])
    return sorted(records, key=lambda r: r.get("t", 0.0))


def _merge_series_into(series: Dict[str, dict], name: str, summ: dict) -> None:
    """Fold one series summary into *series* (exact aggregates only)."""
    if int(summ.get("count", 0)) == 0:
        return
    merged = series.get(name)
    if merged is None:
        series[name] = dict(summ)
        return
    count = merged["count"] + summ["count"]
    merged["mean"] = (
        merged["mean"] * merged["count"] + summ["mean"] * summ["count"]
    ) / count
    merged["count"] = count
    merged["min"] = min(merged["min"], summ["min"])
    merged["max"] = max(merged["max"], summ["max"])
    merged["p50"] = merged["p99"] = float("nan")
