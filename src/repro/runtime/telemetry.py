"""Engine telemetry — counters, distributions and span timings.

Every moving part of the runtime engine reports here: the plan cache its
hits/misses/evictions, the coalescer its assembled batch widths, the engine
its queue depth and per-request latency.  A :class:`Telemetry` instance is
a thread-safe bag of

* **counters** — monotonically increasing integers (``incr``);
* **series** — bounded sample reservoirs with running count/sum/max, from
  which p50/p99 quantiles are read (``observe``);
* **spans** — ``with telemetry.span("solve"):`` context timing, recorded
  as a ``<name>.seconds`` series;
* **events** — bounded last-N rings of structured records (``event``),
  used by the resilience layer for state transitions (circuit breaker
  open/close, supervisor respawns, degradation-ladder steps) and for the
  poisoned-request quarantine ledger.

``snapshot()`` exports everything as a plain dict (the exa-scale analogue
would ship this to a metrics backend); ``render()`` prints it through the
same :class:`repro.bench.report.Table` layout as the paper-table
benchmarks, so engine runs and paper runs read alike.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

from repro.bench.report import Table

__all__ = [
    "Telemetry",
    "merged_counter",
    "merge_snapshots",
    "render_snapshot",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_MAX_EVENTS",
]

#: samples retained per series; older observations only survive in the
#: running count/sum/min/max aggregates
DEFAULT_MAX_SAMPLES = 4096

#: structured records retained per event ring; older events are dropped
DEFAULT_MAX_EVENTS = 64


class _Series:
    """One observed quantity: bounded reservoir + unbounded aggregates."""

    __slots__ = ("samples", "count", "total", "minimum", "maximum")

    def __init__(self, max_samples: int) -> None:
        self.samples: deque = deque(maxlen=max_samples)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def snapshot_samples(self) -> np.ndarray:
        """The current reservoir as an array (call under the owning lock)."""
        return np.fromiter(self.samples, dtype=float, count=len(self.samples))

    @staticmethod
    def quantile_of(samples: np.ndarray, q: float) -> float:
        if samples.size == 0:
            return float("nan")
        return float(np.quantile(samples, q))

    def quantile(self, q: float) -> float:
        return self.quantile_of(self.snapshot_samples(), q)

    def summary(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else float("nan")
        samples = self.snapshot_samples()
        return {
            "count": self.count,
            "mean": mean,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
            "p50": self.quantile_of(samples, 0.50),
            "p99": self.quantile_of(samples, 0.99),
        }


class Telemetry:
    """Thread-safe counters / series / span timings for the runtime engine."""

    def __init__(
        self,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_samples = int(max_samples)
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._series: Dict[str, _Series] = {}
        self._events: Dict[str, deque] = {}

    # -- recording ------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution *name*."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self.max_samples)
            series.observe(float(value))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; the duration lands in the ``<name>.seconds`` series."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(f"{name}.seconds", time.perf_counter() - t0)

    def event(self, name: str, **fields) -> None:
        """Append one structured record to the bounded ring *name*.

        Each record is the given fields plus a wall-clock ``t`` stamp;
        the ring keeps the most recent ``max_events`` records, so a
        long campaign's snapshot always shows the latest transitions
        (respawns, breaker flips, quarantined requests) without growing.
        """
        record = {"t": time.time(), **fields}
        with self._lock:
            ring = self._events.get(name)
            if ring is None:
                ring = self._events[name] = deque(maxlen=self.max_events)
            ring.append(record)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def events(self, name: str) -> list:
        """The retained records of the event ring *name* (oldest first)."""
        with self._lock:
            ring = self._events.get(name)
            return [dict(r) for r in ring] if ring is not None else []

    def quantile(self, name: str, q: float) -> float:
        # The sample reservoir must be materialized *under* the lock: a
        # concurrent observe() appending to the deque while np.fromiter
        # walks it raises "deque mutated during iteration".
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return float("nan")
            samples = series.snapshot_samples()
        return _Series.quantile_of(samples, q)

    def snapshot(self) -> dict:
        """Everything as a plain dict:
        ``{"counters": ..., "series": ..., "events": ...}``."""
        with self._lock:
            counters = dict(self._counters)
            series = {name: s.summary() for name, s in self._series.items()}
            events = {
                name: [dict(r) for r in ring]
                for name, ring in self._events.items()
                if ring
            }
        return {"counters": counters, "series": series, "events": events}

    def render(self, title: str = "Runtime engine telemetry") -> str:
        """Counters and series as one paper-style ASCII table."""
        return render_snapshot(self.snapshot(), title)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._series.clear()
            self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"Telemetry(counters={len(self._counters)}, "
                f"series={len(self._series)})"
            )


def render_snapshot(snapshot: dict, title: str = "Runtime engine telemetry") -> str:
    """A :meth:`Telemetry.snapshot`-shaped dict (possibly merged across
    workers by :func:`merge_snapshots`) as one paper-style ASCII table."""
    table = Table(title, ["metric", "count", "mean", "p50", "p99", "max"])
    for name in sorted(snapshot.get("counters", {})):
        table.add_row(name, snapshot["counters"][name], "", "", "", "")
    for name in sorted(snapshot.get("series", {})):
        s = snapshot["series"][name]
        table.add_row(name, s["count"], s["mean"], s["p50"], s["p99"], s["max"])
    return table.render()


def merged_counter(snapshot: dict, *names: str) -> int:
    """Sum several counters out of a :meth:`Telemetry.snapshot` dict."""
    counters = snapshot.get("counters", {})
    return sum(int(counters.get(name, 0)) for name in names)


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold several :meth:`Telemetry.snapshot` dicts into one.

    The sharded executor keeps one :class:`Telemetry` per worker process;
    this merges their exported snapshots (plus the parent's) into a single
    fleet view.  Counters add exactly (each name is summed across
    snapshots with :func:`merged_counter`); series merge their exact
    aggregates — count, count-weighted mean, min, max.  Quantiles cannot
    be recovered from per-worker summaries, so a merged series keeps p50
    and p99 only when exactly one contributing snapshot observed it, and
    reports NaN otherwise.  Event rings concatenate in snapshot order,
    trimmed to the newest :data:`DEFAULT_MAX_EVENTS` records per name.
    """
    names = []
    for snap in snapshots:
        for name in snap.get("counters", {}):
            if name not in names:
                names.append(name)
    counters = {
        name: sum(merged_counter(snap, name) for snap in snapshots)
        for name in names
    }
    series: Dict[str, dict] = {}
    for snap in snapshots:
        for name, summ in snap.get("series", {}).items():
            if int(summ.get("count", 0)) == 0:
                continue
            merged = series.get(name)
            if merged is None:
                series[name] = dict(summ)
                continue
            count = merged["count"] + summ["count"]
            merged["mean"] = (
                merged["mean"] * merged["count"] + summ["mean"] * summ["count"]
            ) / count
            merged["count"] = count
            merged["min"] = min(merged["min"], summ["min"])
            merged["max"] = max(merged["max"], summ["max"])
            merged["p50"] = merged["p99"] = float("nan")
    events: Dict[str, list] = {}
    for snap in snapshots:
        for name, records in snap.get("events", {}).items():
            events.setdefault(name, []).extend(records)
    events = {
        name: records[-DEFAULT_MAX_EVENTS:] for name, records in events.items()
    }
    return {"counters": counters, "series": series, "events": events}
