"""The batched solve engine — plan cache + coalescer + bounded executor.

:class:`SolveEngine` is the execution layer between callers (examples,
:mod:`repro.advection`, :mod:`repro.distributed`, benchmarks) and the
solver stack.  Callers hand it a :class:`~repro.core.spec.BSplineSpec`
and right-hand sides; the engine

1. resolves the factorized builder through its
   :class:`~repro.runtime.plan_cache.PlanCache` (one factorization per
   spline-space configuration, ever);
2. coalesces small ``submit()`` requests against the same configuration
   into paper-scale ``(n, B)`` batches
   (:class:`~repro.runtime.coalescer.RequestCoalescer`), dispatching a
   batch when it fills or when the oldest request has lingered;
3. runs batches on a bounded thread pool with backpressure (``"block"``
   or ``"reject"`` when the in-flight column budget is exhausted),
   per-request deadlines, and one retry that falls back to per-request
   solves so a single poisoned right-hand side cannot fail a whole batch;
4. with ``executor="processes"``, column-shards every batch across a
   persistent :class:`~repro.runtime.sharded.ShardedExecutor` worker-
   process pool through shared memory, putting multiple cores behind a
   *single* batch (bitwise identical to the thread path);
5. counts everything in :class:`~repro.runtime.telemetry.Telemetry`.

On top of that sits the PR 5 resilience layer (:mod:`repro.runtime.resilience`):

* every plan key flows through a :class:`~repro.runtime.resilience.circuit.PlanBreaker`
  — a key that keeps failing is short-circuited into a fast replica of
  its last failure instead of burning a solve-plus-retries cycle per
  request;
* under ``executor="processes"`` a
  :class:`~repro.runtime.resilience.supervisor.WorkerSupervisor` respawns
  dead workers and requeues their in-flight shards (bitwise-identical
  results);
* a **degradation ladder** keeps accepted requests answered when layers
  fail: shared-memory transport falls back to pickled transport
  (:class:`~repro.runtime.shm.ShmError`), an exhausted worker pool drops
  the engine from *processes* to *threads*, and a broken thread pool
  drops it to *serial* solves on the caller's thread.  Every transition
  is logged, counted, and recorded in the telemetry event ring; no rung
  ever silently drops a request.
* a seeded :class:`~repro.runtime.resilience.faults.FaultPlan`
  (``EngineConfig(faults=...)`` or the ``REPRO_FAULT_PLAN`` environment
  variable) injects all of those failures on demand, deterministically,
  for chaos tests; with no plan every hook is a single ``is None`` test.

Two entry points::

    engine = SolveEngine(max_batch=256, max_linger=2e-3)
    fut = engine.submit(spec, rhs)          # coalesced; fut.result() -> coeffs
    outs = engine.map_batches(spec, blocks) # bulk blocks, plan-cached + pooled

The engine is a context manager; ``shutdown()`` drains lingering partial
batches before stopping the workers, so no accepted request is dropped.
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend import (
    asnumpy,
    get_namespace,
    is_numpy_namespace,
    registered_backends,
    resolve_backend,
)
from repro.core.spec import BSplineSpec
from repro.exceptions import BackendError, ReproError, ShapeError
from repro.runtime.coalescer import CoalescedBatch, RequestCoalescer, SolveRequest
from repro.runtime.plan_cache import PlanCache, PlanKey
from repro.runtime.resilience.circuit import PlanBreaker
from repro.runtime.resilience.faults import FaultPlan
from repro.runtime.resilience.supervisor import SupervisorPolicy
from repro.runtime.shm import ShmError
from repro.runtime.telemetry import Telemetry

__all__ = [
    "EngineConfig",
    "SolveEngine",
    "BackpressureError",
    "EngineClosedError",
    "EngineTimeoutError",
]

_BACKPRESSURE_POLICIES = ("block", "reject")
_EXECUTORS = ("threads", "processes", "cluster")
#: executor rungs that column-shard batches across a worker fleet
_SHARDED_LEVELS = ("processes", "cluster")

_LOG = logging.getLogger("repro.runtime.engine")


class BackpressureError(ReproError, RuntimeError):
    """The engine's in-flight budget is exhausted and the policy rejects."""


class EngineClosedError(ReproError, RuntimeError):
    """A request arrived after :meth:`SolveEngine.shutdown`."""


class EngineTimeoutError(ReproError, TimeoutError):
    """A request's deadline passed before its batch was solved."""


def _fingerprint(rhs: np.ndarray) -> str:
    """A short stable fingerprint of one right-hand side.

    Quarantine records carry this instead of the data itself: enough to
    recognize the same poisoned input recurring across a campaign,
    bounded (first 64 KiB) so the failure path never hashes a paper-scale
    batch end to end.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(rhs.shape).encode())
    digest.update(rhs.dtype.str.encode())
    digest.update(memoryview(np.ascontiguousarray(rhs)).cast("B")[:65536])
    return digest.hexdigest()


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one :class:`SolveEngine`.

    Attributes
    ----------
    max_batch:
        Columns per coalesced batch; the flush trigger.
    max_linger:
        Seconds a lone request may wait for batch-mates before a partial
        batch is cut (the latency/throughput trade-off knob).
    num_workers:
        Workers solving batches concurrently: threads under
        ``executor="threads"``, worker *processes* (plus as many
        orchestrating threads) under ``executor="processes"``.
    executor:
        ``"threads"`` — batches solve on the engine's thread pool, one
        batch per thread (different batches overlap, one batch is one
        core).  ``"processes"`` — each batch is additionally column-split
        across a persistent :class:`~repro.runtime.sharded.ShardedExecutor`
        worker-process pool through shared memory, so a single paper-scale
        batch engages every worker past the GIL; results are bitwise
        identical to the thread path.  ``"cluster"`` — batches are
        column-sharded over a TCP worker fleet managed by a
        :class:`~repro.cluster.executor.ClusterExecutor` coordinator
        (heartbeat leases, shard re-issue on node loss, elastic
        scale-up/down; see :mod:`repro.cluster`); shards travel as raw
        C-order bytes, and results remain bitwise identical.
    max_queue:
        In-flight column budget (buffered + solving, across all lanes);
        beyond it the *backpressure* policy applies.
    backpressure:
        ``"block"`` — wait (up to *submit_timeout*) for capacity;
        ``"reject"`` — raise :class:`BackpressureError` immediately.
    submit_timeout:
        Seconds a blocked ``submit`` waits before raising
        :class:`BackpressureError`; ``None`` waits forever.
    default_timeout:
        Default per-request deadline in seconds (``None`` — no deadline).
        Expired requests are dropped from their batch with
        :class:`EngineTimeoutError` before any solve work is spent.
    retries:
        After a failed batched solve, how many per-request fallback
        attempts each member gets (the batch itself is never re-run).
    verify_every:
        Sample every Nth solved batch through the backward-error check of
        :class:`~repro.verify.residual.ResidualChecker` (0 — never).  A
        failed check is routed through the poisoned-RHS retry path, where
        each member is re-solved and re-verified individually so only the
        culprit column(s) fail.
    verify_cols:
        Columns checked per sampled batch.  The banded residual product
        costs the same order as the solve itself, so checking a bounded,
        evenly-spaced sample keeps even ``verify_every=1`` cheap on
        paper-scale batches.
    verify_tol_factor:
        Safety factor ``c`` of the condition-aware verification
        tolerance ``c · κ₁ · ε(dtype)``.
    faults:
        Optional :class:`~repro.runtime.resilience.faults.FaultPlan` of
        seeded fault triggers; ``None`` (the default) also consults the
        ``REPRO_FAULT_PLAN`` environment variable, so a plan can be
        injected without touching code.  Absent a plan, every hook costs
        one ``is None`` test.
    supervise:
        Under ``executor="processes"``, run a
        :class:`~repro.runtime.resilience.supervisor.WorkerSupervisor`
        that respawns dead workers (exponential backoff, seeded jitter)
        and requeues their in-flight shards onto survivors.
    restart_budget:
        Pool-wide worker respawns allowed before the supervisor declares
        the pool exhausted and the engine degrades to threads.
    hang_timeout:
        Seconds an in-flight shard may age before its worker is declared
        hung and terminated (``None`` — hang detection off).  Must exceed
        the worst honest shard solve time.
    live_wait_timeout:
        Seconds a shard dispatch waits for *any* live worker before
        failing (``None`` — the executor's default: 30 s for same-host
        pipes, scaled with the heartbeat lease timeout for the cluster
        transport, where respawning a remote worker takes longer).
    cluster:
        Optional :class:`~repro.cluster.config.ClusterConfig` tuning the
        ``executor="cluster"`` fleet (bind address, lease/heartbeat
        timing, elastic scaling policy, remote worker endpoints).
        ``None`` uses loopback defaults with ``num_workers`` local
        workers.  Ignored by the other executors.
    breaker_failures:
        Consecutive failures that trip one plan key's circuit open.
    breaker_reset:
        Seconds an open circuit short-circuits before half-open probes.
    breaker_probes:
        Trial requests allowed through a half-open circuit.
    backend_ns:
        Name of the array backend (:func:`repro.backend.resolve_backend`)
        results are staged into: ``None`` consults ``REPRO_BACKEND`` and
        defaults to ``"numpy"``.  The engine's transport (coalescer,
        shared memory) is host NumPy regardless; non-NumPy right-hand
        sides are converted on ingress and results are converted back on
        egress.  ``executor="processes"`` requires the NumPy backend —
        shared-memory shard transport cannot carry foreign arrays.
    plan_store_dir:
        Directory of a durable :class:`~repro.runtime.durable.PlanStore`
        backing the plan cache (and, under ``executor="processes"``,
        every sharded worker's cache): cold misses load from disk
        instead of refactorizing and fresh factorizations are written
        back, so a restarted engine warm-starts with zero
        factorizations.  ``None`` consults the ``REPRO_PLAN_STORE``
        environment variable; empty/unset disables the store.
    checkpoint_dir:
        Default directory for :meth:`SolveEngine.solve_stream` campaign
        checkpoints (``None`` — next to the campaign's output file).
    """

    max_batch: int = 256
    max_linger: float = 2e-3
    num_workers: int = 2
    executor: str = "threads"
    max_queue: int = 65536
    backpressure: str = "block"
    submit_timeout: Optional[float] = None
    default_timeout: Optional[float] = None
    retries: int = 1
    verify_every: int = 0
    verify_cols: int = 16
    verify_tol_factor: float = 64.0
    faults: Optional[FaultPlan] = None
    supervise: bool = True
    restart_budget: int = 8
    hang_timeout: Optional[float] = None
    breaker_failures: int = 5
    breaker_reset: float = 30.0
    breaker_probes: int = 1
    backend_ns: Optional[str] = None
    plan_store_dir: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    live_wait_timeout: Optional[float] = None
    cluster: Optional[object] = None

    def __post_init__(self) -> None:
        if (
            self.backend_ns is not None
            and self.backend_ns not in registered_backends()
        ):
            raise BackendError(
                f"unknown array backend {self.backend_ns!r}; registered "
                f"backends: {registered_backends()}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {self.max_linger}")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {_EXECUTORS}"
            )
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {_BACKPRESSURE_POLICIES}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.verify_every < 0:
            raise ValueError(f"verify_every must be >= 0, got {self.verify_every}")
        if self.verify_cols < 1:
            raise ValueError(f"verify_cols must be >= 1, got {self.verify_cols}")
        if self.verify_tol_factor <= 0:
            raise ValueError(
                f"verify_tol_factor must be > 0, got {self.verify_tol_factor}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ValueError(
                f"hang_timeout must be > 0 or None, got {self.hang_timeout}"
            )
        if self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_reset <= 0:
            raise ValueError(
                f"breaker_reset must be > 0, got {self.breaker_reset}"
            )
        if self.breaker_probes < 1:
            raise ValueError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )
        if self.live_wait_timeout is not None and self.live_wait_timeout <= 0:
            raise ValueError(
                f"live_wait_timeout must be > 0 or None, "
                f"got {self.live_wait_timeout}"
            )
        if self.cluster is not None:
            from repro.cluster.config import ClusterConfig

            if not isinstance(self.cluster, ClusterConfig):
                raise TypeError(
                    f"cluster must be a ClusterConfig or None, "
                    f"got {type(self.cluster).__name__}"
                )


class _Lane:
    """Per-:class:`PlanKey` state: the coalescer feeding one builder."""

    __slots__ = ("key", "coalescer")

    def __init__(self, key: PlanKey, n: int, config: EngineConfig) -> None:
        self.key = key
        self.coalescer = RequestCoalescer(
            n, max_batch=config.max_batch, max_linger=config.max_linger
        )


class SolveEngine:
    """Batched spline-solve engine: cache, coalesce, bound, measure.

    Parameters
    ----------
    config:
        An :class:`EngineConfig`; keyword overrides (``max_batch=...``)
        may be given instead of / on top of it.
    plan_cache, telemetry:
        Optionally share these across engines (e.g. one process-wide
        plan cache under several differently-tuned engines).
    breaker:
        Optionally share one :class:`PlanBreaker` across engines (a plan
        tripped anywhere stays tripped everywhere); by default each
        engine builds its own from the ``breaker_*`` config fields.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        telemetry: Optional[Telemetry] = None,
        breaker: Optional[PlanBreaker] = None,
        **overrides,
    ) -> None:
        if overrides:
            base = config or EngineConfig()
            config = EngineConfig(
                **{
                    field: overrides.pop(field, getattr(base, field))
                    for field in EngineConfig.__dataclass_fields__
                }
            )
            if overrides:
                raise TypeError(f"unknown EngineConfig fields: {sorted(overrides)}")
        self.config = config or EngineConfig()
        # The namespace results are staged into; transport stays NumPy.
        self.xp = resolve_backend(self.config.backend_ns)
        if self.config.executor in _SHARDED_LEVELS and not is_numpy_namespace(
            self.xp
        ):
            raise BackendError(
                f"executor={self.config.executor!r} requires the NumPy "
                "backend: the shard transport cannot carry foreign "
                "arrays; use executor='threads' with backend_ns="
                f"{self.config.backend_ns!r}"
            )
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # The fault plan: explicit config wins, else the environment; the
        # common case is None, and every hook below is gated on that.
        self._faults = (
            self.config.faults
            if self.config.faults is not None
            else FaultPlan.from_env()
        )
        # Durable plan store: explicit config wins, else the environment.
        store_dir = self.config.plan_store_dir
        if store_dir is None:
            from repro.runtime.durable import PLAN_STORE_ENV

            store_dir = os.environ.get(PLAN_STORE_ENV, "").strip() or None
        self.plan_store = None
        self._plan_store_dir = None if store_dir is None else os.fspath(store_dir)
        if self._plan_store_dir is not None:
            from repro.runtime.durable import PlanStore

            self.plan_store = PlanStore(
                self._plan_store_dir,
                telemetry=self.telemetry,
                faults=self._faults,
            )
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(
                telemetry=self.telemetry,
                faults=self._faults,
                store=self.plan_store,
            )
        )
        if self.plan_cache.telemetry is None:
            self.plan_cache.telemetry = self.telemetry
        if self.plan_cache.faults is None and self._faults is not None:
            self.plan_cache.faults = self._faults
        if self.plan_cache.store is None and self.plan_store is not None:
            self.plan_cache.store = self.plan_store
        self.breaker = (
            breaker
            if breaker is not None
            else PlanBreaker(
                failures=self.config.breaker_failures,
                reset_timeout=self.config.breaker_reset,
                probes=self.config.breaker_probes,
                telemetry=self.telemetry,
            )
        )
        self._lanes: Dict[PlanKey, _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._verify_lock = threading.Lock()
        self._verify_seq = 0
        self._checkers: Dict[PlanKey, object] = {}  # None = unverifiable builder
        self._capacity = threading.Condition()
        self._inflight_cols = 0
        self._closed = False
        # Degradation ladder state: "processes"/"cluster" -> "threads" ->
        # "serial".  Transitions are one-way for the engine's lifetime — a
        # layer that failed under load is not trusted again until a fresh
        # engine.
        self._level_lock = threading.Lock()
        self._level = (
            self.config.executor
            if self.config.executor in _SHARDED_LEVELS
            else "threads"
        )
        self._serial = False
        # The sharded worker pool forks/spawns before the engine's own
        # threads exist, keeping the child processes clean of them.
        self._sharded = None
        if self.config.executor == "processes":
            from repro.runtime.sharded import ShardedExecutor

            self._sharded = ShardedExecutor(
                num_workers=self.config.num_workers,
                telemetry=self.telemetry,
                faults=self._faults,
                supervise=self.config.supervise,
                policy=SupervisorPolicy(
                    restart_budget=self.config.restart_budget,
                    hang_timeout=self.config.hang_timeout,
                ),
                plan_store_dir=self._plan_store_dir,
                live_wait_timeout=self.config.live_wait_timeout,
            )
        elif self.config.executor == "cluster":
            from repro.cluster.config import ClusterConfig
            from repro.cluster.executor import ClusterExecutor

            self._sharded = ClusterExecutor(
                config=self.config.cluster or ClusterConfig(),
                num_workers=self.config.num_workers,
                telemetry=self.telemetry,
                faults=self._faults,
                restart_budget=self.config.restart_budget,
                plan_store_dir=self._plan_store_dir,
                live_wait_timeout=self.config.live_wait_timeout,
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.num_workers,
            thread_name_prefix="repro-solve",
        )
        self._stop_flusher = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-flusher", daemon=True
        )
        self._flusher.start()

    # -- per-tenant attribution ------------------------------------------

    def _tenant_incr(self, tenant, name: str, amount: int = 1) -> None:
        """Tenant-scoped counter bump; free for anonymous requests."""
        if tenant is not None:
            self.telemetry.tenant_incr(tenant, name, amount)

    def _tenant_observe(self, tenant, name: str, value: float) -> None:
        if tenant is not None:
            self.telemetry.tenant_observe(tenant, name, value)

    # -- capacity accounting --------------------------------------------

    def _acquire(self, cols: int) -> None:
        deadline = (
            time.perf_counter() + self.config.submit_timeout
            if self.config.submit_timeout is not None
            else None
        )
        with self._capacity:
            while self._inflight_cols + cols > self.config.max_queue:
                self.telemetry.incr("engine.backpressure_events")
                if self.config.backpressure == "reject":
                    raise BackpressureError(
                        f"in-flight budget exhausted: {self._inflight_cols} "
                        f"columns queued, {cols} requested, "
                        f"max_queue={self.config.max_queue}"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise BackpressureError(
                            f"blocked submit timed out after "
                            f"{self.config.submit_timeout}s waiting for capacity"
                        )
                self._capacity.wait(timeout=remaining)
            self._inflight_cols += cols
            self.telemetry.observe("engine.queue_depth_cols", self._inflight_cols)

    def _release(self, cols: int) -> None:
        with self._capacity:
            self._inflight_cols -= cols
            self._capacity.notify_all()

    # -- the degradation ladder -------------------------------------------

    @property
    def degradation_level(self) -> str:
        """Current executor rung: ``cluster``, ``processes``, ``threads``
        or ``serial``."""
        return self._level

    def _use_sharded(self):
        """The sharded executor, or ``None`` once the engine degraded."""
        return self._sharded if self._level in _SHARDED_LEVELS else None

    def _degrade_to_threads(self, reason: str) -> None:
        with self._level_lock:
            if self._level not in _SHARDED_LEVELS:
                return
            frm = self._level
            self._level = "threads"
        self.telemetry.incr("engine.degraded_to_threads")
        self.telemetry.event(
            "degradation", frm=frm, to="threads", reason=reason
        )
        _LOG.error(
            "solve engine degraded %s -> threads: %s", frm, reason
        )

    def _degrade_to_serial(self, reason: str) -> None:
        with self._level_lock:
            if self._serial:
                return
            frm = self._level
            self._serial = True
            self._level = "serial"
        self.telemetry.incr("engine.degraded_to_serial")
        self.telemetry.event("degradation", frm=frm, to="serial", reason=reason)
        _LOG.error("solve engine degraded %s -> serial: %s", frm, reason)

    # -- lanes and dispatch ---------------------------------------------

    def _key(self, spec: BSplineSpec, version: int, dtype, backend: str) -> PlanKey:
        return PlanKey.from_spec(
            spec, version=version, dtype=dtype, backend=backend
        )

    def _lane(self, key: PlanKey, n: int) -> _Lane:
        with self._lanes_lock:
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = _Lane(key, n, self.config)
            return lane

    def _dispatch(self, key: PlanKey, batch: CoalescedBatch) -> None:
        self.telemetry.incr("engine.batches_dispatched")
        self.telemetry.observe("coalescer.batch_cols", batch.cols)
        if self._serial:
            # The last rung: the thread pool is gone, so the batch solves
            # synchronously on whichever thread cut it (a submitter or
            # the flusher).  Slow, but every accepted request still gets
            # an answer.
            self._run_batch(key, batch)
            return
        try:
            if self._faults is not None:
                self._faults.fire("engine.dispatch", key=key)
            self._pool.submit(self._run_batch, key, batch)
        except RuntimeError as exc:
            if self._closed:
                raise
            self._degrade_to_serial(f"thread-pool dispatch failed: {exc}")
            self._run_batch(key, batch)

    # -- verify-on-solve sampling ----------------------------------------

    def _should_verify(self) -> bool:
        """Every ``verify_every``-th dispatched solve is sampled."""
        every = self.config.verify_every
        if every <= 0:
            return False
        with self._verify_lock:
            seq = self._verify_seq
            self._verify_seq += 1
        return seq % every == 0

    def _checker_for(self, key: PlanKey, builder):
        """Cached :class:`ResidualChecker` for *key*; None when the
        builder cannot expose its matrix (e.g. test fakes)."""
        with self._verify_lock:
            if key in self._checkers:
                checker = self._checkers[key]
                if checker is None:
                    self.telemetry.incr("verify.unsupported")
                return checker
        from repro.verify.residual import ResidualChecker

        try:
            checker = ResidualChecker(
                builder, tol_factor=self.config.verify_tol_factor
            )
        except TypeError:
            checker = None
            self.telemetry.incr("verify.unsupported")
        with self._verify_lock:
            self._checkers.setdefault(key, checker)
        return checker

    def _sample_cols(self, cols: int) -> np.ndarray:
        """Evenly spaced column sample, at most ``verify_cols`` wide."""
        take = min(self.config.verify_cols, cols)
        if take == cols:
            return np.arange(cols)
        return np.linspace(0, cols - 1, take).astype(int)

    def _verify_sample(self, checker, x: np.ndarray, b: np.ndarray) -> None:
        """Check solved sample *x* against pre-solve *b*; raise on failure."""
        self.telemetry.incr("verify.checks")
        if self._faults is not None:
            self._faults.fire("engine.verify")
        with self.telemetry.span("engine.verify"):
            report = checker.check(x, b)
        # η is meaningful on [0, 1]; a NaN-poisoned column reports η = ∞,
        # which is recorded as 1.0 to keep the telemetry percentiles finite.
        self.telemetry.observe(
            "verify.backward_error",
            report.worst if np.isfinite(report.worst) else 1.0,
        )
        if report.passed:
            self.telemetry.incr("verify.passes")
        else:
            self.telemetry.incr("verify.failures")
        report.raise_if_failed()

    # -- batch execution ---------------------------------------------------

    def _sharded_solve_or_degrade(
        self, sharded, key: PlanKey, batch, block, lease, builder
    ) -> None:
        """One sharded solve with the full ladder under it.

        *lease* given — shared-memory transport; otherwise pickled
        transport through :meth:`ShardedExecutor.solve_array`.  A
        :class:`WorkerError` from an **exhausted** pool (restart budget
        spent, no survivors) degrades the engine to threads: the block's
        columns are restored from the original request data (survivor
        shards may have half-written them) and solved locally.  Any other
        worker failure propagates to the per-request retry path.
        """
        from repro.runtime.sharded import WorkerError

        try:
            if lease is not None:
                sharded.solve(
                    key,
                    lease,
                    restore=lambda c0, c1: batch.fill(block, c0, c1),
                )
            else:
                sharded.solve_array(key, block)
        except WorkerError as exc:
            if not sharded.exhausted:
                raise
            self._degrade_to_threads(f"worker pool exhausted: {exc}")
            batch.fill(block, 0, block.shape[1])
            builder.solve(block, in_place=True)

    def _run_batch(self, key: PlanKey, batch: CoalescedBatch) -> None:
        now = time.perf_counter()
        live: List[SolveRequest] = []
        for req in batch.requests:
            if req.expired(now):
                self.telemetry.incr("engine.requests_timed_out")
                self._tenant_incr(req.tenant, "requests_timed_out")
                if req.future.set_running_or_notify_cancel():
                    req.future.set_exception(
                        EngineTimeoutError(
                            "request deadline passed before its batch was solved"
                        )
                    )
                self._release(req.cols)
            else:
                live.append(req)
        if not live:
            return
        batch = CoalescedBatch(live)
        builder = None
        checker = None
        sharded = None
        lease = None
        try:
            if not self.breaker.allow(key):
                raise self.breaker.open_error(key)
            builder = self.plan_cache.builder(key)
            sharded = self._use_sharded()
            if (
                sharded is not None
                and batch.cols > 0
                and not getattr(sharded, "supports_shm", True)
            ):
                # Wire transport (cluster): no shared-memory rung — shards
                # travel as raw bytes through solve_array.
                block = batch.assemble(builder.dtype)
            elif sharded is not None and batch.cols > 0:
                try:
                    # Assemble straight into a pooled shared segment: the
                    # workers solve their column shards in place there and
                    # the scatter below reads the very same buffer.
                    lease = sharded.lease((builder.n, batch.cols), builder.dtype)
                    block = batch.assemble(builder.dtype, out=lease.array)
                except ShmError as exc:
                    # Transport rung: shared memory is down, but the
                    # worker pool is not — ship shards pickled instead.
                    self.telemetry.incr("engine.shm_fallbacks")
                    self.telemetry.event(
                        "degradation", frm="shm", to="pickled", reason=str(exc)
                    )
                    _LOG.warning(
                        "shared-memory lease failed (%s); using pickled "
                        "shard transport for this batch", exc,
                    )
                    lease = None
                    block = batch.assemble(builder.dtype)
            else:
                sharded = None
                block = batch.assemble(builder.dtype)
            if self._faults is not None:
                self._faults.fire("engine.rhs", array=block)
            if self._should_verify():
                checker = self._checker_for(key, builder)
            if checker is not None:
                sample = self._sample_cols(block.shape[1])
                ref = block[:, sample].copy()  # pre-solve right-hand sides
            with self.telemetry.span("engine.batch_solve"):
                if sharded is not None:
                    self._sharded_solve_or_degrade(
                        sharded, key, batch, block, lease, builder
                    )
                else:
                    if self._faults is not None:
                        self._faults.fire("engine.batch_solve", key=key)
                    builder.solve(block, in_place=True)
            if checker is not None:
                self._verify_sample(checker, block[:, sample], ref)
            batch.scatter(block)
            self.telemetry.incr("engine.requests_completed", len(live))
            for req in live:
                self._tenant_incr(req.tenant, "requests_completed")
            self.breaker.record_success(key)
        except Exception as exc:  # noqa: BLE001 - isolate per request below
            if getattr(exc, "short_circuited", False):
                # Already-counted fast fail; no retry work is owed.  A
                # short-circuit is a rejection at the door, so tenants
                # see it under requests_rejected, not requests_failed.
                self.telemetry.incr("engine.requests_failed", len(live))
                for req in live:
                    self._tenant_incr(req.tenant, "requests_rejected")
                batch.fail(exc)
            elif builder is None:
                # The factorization itself failed: there is nothing to
                # retry against, and the breaker hears about it so the
                # key trips before the next caller pays the same cost.
                self.telemetry.incr("engine.batch_failures")
                self.telemetry.incr("engine.requests_failed", len(live))
                for req in live:
                    self._tenant_incr(req.tenant, "requests_failed")
                self.breaker.record_failure(key, exc)
                batch.fail(exc)
            else:
                self.telemetry.incr("engine.batch_failures")
                failed = self._retry_individually(
                    builder, batch, exc, checker=checker
                )
                if failed:
                    self.breaker.record_failure(key, exc)
                else:
                    self.breaker.record_success(key)
        finally:
            if lease is not None:
                self._sharded.release(lease)
            done = time.perf_counter()
            for req in live:
                self.telemetry.observe(
                    "engine.request_latency_seconds", done - req.enqueued_at
                )
                self._tenant_observe(
                    req.tenant, "request_latency_seconds", done - req.enqueued_at
                )
                self._release(req.cols)

    def _retry_individually(
        self, builder, batch: CoalescedBatch, batch_exc: Exception, checker=None
    ) -> int:
        """A failed batch falls back to per-request solves (retry-once).

        When the batch failed its sampled verification (*checker* given),
        every fallback solve is re-verified over *all* of its columns, so
        a single poisoned right-hand side fails alone while its
        batch-mates complete normally.  Returns how many requests still
        failed; each of those lands in the quarantine ledger
        (``engine.quarantined`` + the ``engine.quarantine`` event ring)
        with a bounded fingerprint of its right-hand side.
        """
        failed = 0
        for req in batch.requests:
            if not req.future.set_running_or_notify_cancel():
                continue
            outcome: Optional[BaseException] = batch_exc
            for _ in range(self.config.retries):
                self.telemetry.incr("engine.request_retries")
                try:
                    work = np.array(
                        req.rhs if req.rhs.ndim == 2 else req.rhs[:, None],
                        dtype=builder.dtype,
                        copy=True,
                        order="C",
                    )
                    builder.solve(work, in_place=True)
                    if checker is not None:
                        self._verify_sample(checker, work, req.rhs)
                    req.future.set_result(
                        work[:, 0] if req.rhs.ndim == 1 else work
                    )
                    self.telemetry.incr("engine.requests_completed")
                    self._tenant_incr(req.tenant, "requests_completed")
                    outcome = None
                    break
                except Exception as exc:  # noqa: BLE001
                    outcome = exc
            if outcome is not None:
                failed += 1
                self.telemetry.incr("engine.requests_failed")
                self._tenant_incr(req.tenant, "requests_failed")
                if req.tenant is not None and hasattr(outcome, "tenant"):
                    # Attribute the failure to its originator so the
                    # error names the tenant wherever it surfaces
                    # (WorkerError carries the slot; see its __reduce__).
                    if getattr(outcome, "tenant", None) is None:
                        try:
                            outcome.tenant = req.tenant
                        except AttributeError:  # pragma: no cover - frozen exc
                            pass
                self._quarantine(req, outcome)
                req.future.set_exception(outcome)
        return failed

    def _quarantine(self, req: SolveRequest, exc: BaseException) -> None:
        """Ledger one permanently failed request: counter + bounded ring.

        The record carries the originating tenant (when the request was
        labelled), so :meth:`telemetry_report` can render a per-tenant
        quarantine column and a campaign log can name whose poisoned
        right-hand side kept recurring.
        """
        self.telemetry.incr("engine.quarantined")
        self._tenant_incr(req.tenant, "requests_quarantined")
        self.telemetry.event(
            "engine.quarantine",
            fingerprint=_fingerprint(req.rhs),
            cols=req.cols,
            error=type(exc).__name__,
            tenant=None if req.tenant is None else str(req.tenant),
        )

    def _flush_loop(self) -> None:
        tick = max(self.config.max_linger / 4.0, 5e-4)
        while not self._stop_flusher.wait(timeout=tick):
            now = time.perf_counter()
            for lane in list(self._lanes.values()):
                batch = lane.coalescer.poll(now)
                if batch is not None:
                    try:
                        self._dispatch(lane.key, batch)
                    except RuntimeError:  # pool shut down under us
                        batch.fail(EngineClosedError("engine shut down"))
                        return

    # -- public API ------------------------------------------------------

    def submit(
        self,
        spec: BSplineSpec,
        rhs: np.ndarray,
        *,
        version: int = 2,
        dtype=np.float64,
        backend: str = "vectorized",
        timeout: Optional[float] = None,
        tenant=None,
        priority: Optional[str] = None,
    ) -> Future:
        """Queue one right-hand side for a coalesced solve.

        *rhs* is 1-D ``(n,)`` or 2-D ``(n, b)``; the returned future
        resolves to the spline coefficients with the same shape.  The
        request coalesces with every other in-flight request for the same
        ``(spec, version, dtype, backend)`` configuration.  A plan key
        whose circuit is open fails fast here, before any factorization
        or queueing work.

        *tenant* labels the request for the multi-tenant machinery: the
        coalescer round-robins batch slots across tenants, telemetry
        attributes submissions / completions / rejections / quarantines
        under ``telemetry_snapshot()["tenants"]``, and failures carry the
        label out (:class:`~repro.runtime.sharded.WorkerError.tenant`).
        ``None`` (the default) opts out of all of it at zero cost.
        *priority* is carried on the request for admission layers
        (:mod:`repro.service.admission`); the engine itself does not
        reorder on it.

        Non-NumPy right-hand sides (or a non-NumPy ``backend_ns``) are
        converted to host NumPy for transport; the future then resolves
        to coefficients staged back into the source namespace.
        """
        if self._closed:
            raise EngineClosedError("submit() after engine shutdown")
        key = self._key(spec, version, dtype, backend)
        try:
            self.breaker.check(key)
        except Exception:
            self._tenant_incr(tenant, "requests_rejected")
            raise
        try:
            builder = self.plan_cache.builder(key)  # factor once, count lookups
        except Exception as exc:
            self.breaker.record_failure(key, exc)
            self._tenant_incr(tenant, "requests_failed")
            raise
        rhs_xp = get_namespace(rhs, default=self.xp)
        if is_numpy_namespace(rhs_xp):
            rhs = np.asarray(rhs)
            rhs_xp = self.xp  # stage into the configured namespace
        else:
            rhs = np.asarray(asnumpy(rhs))
        if rhs.shape[0] != builder.n:
            raise ShapeError(
                f"right-hand side leading extent {rhs.shape[0]} does not "
                f"match the {builder.n} basis functions of {spec}"
            )
        timeout = timeout if timeout is not None else self.config.default_timeout
        deadline = time.perf_counter() + timeout if timeout is not None else None
        request = SolveRequest(
            rhs, deadline=deadline, tenant=tenant, priority=priority
        )
        try:
            self._acquire(request.cols)
        except BackpressureError:
            self._tenant_incr(tenant, "requests_rejected")
            raise
        self.telemetry.incr("engine.requests_submitted")
        self._tenant_incr(tenant, "requests_submitted")
        lane = self._lane(key, builder.n)
        # add() may cut several full batches at once (a wide request can
        # cross multiple max_batch multiples); dispatch every one now so
        # none waits out max_linger behind the flusher.
        for batch in lane.coalescer.add(request):
            self._dispatch(key, batch)
        return self._stage_future(request.future, rhs_xp)

    def _stage(self, out: np.ndarray, xp):
        """Egress: host-NumPy coefficients into the caller's namespace."""
        if is_numpy_namespace(xp):
            return out
        return xp.asarray(out)

    def _stage_future(self, fut: Future, xp) -> Future:
        """Chain *fut* through :meth:`_stage` (identity on NumPy)."""
        if is_numpy_namespace(xp):
            return fut

        staged: Future = Future()
        staged.set_running_or_notify_cancel()

        def _done(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                staged.set_exception(exc)
            else:
                staged.set_result(xp.asarray(f.result()))

        fut.add_done_callback(_done)
        return staged

    def solve(self, spec: BSplineSpec, rhs: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(...).result()``."""
        timeout = kwargs.get("timeout")
        return self.submit(spec, rhs, **kwargs).result(
            timeout=None if timeout is None else timeout + 1.0
        )

    def map_batches(
        self,
        spec: BSplineSpec,
        blocks: Sequence[np.ndarray],
        *,
        version: int = 2,
        dtype=np.float64,
        backend: str = "vectorized",
    ) -> List[np.ndarray]:
        """Solve several already-large ``(n, batch)`` blocks in bulk.

        The bulk path skips the coalescer — each block is already a
        paper-scale batch — but still goes through the plan cache, the
        circuit breaker, the bounded pool and telemetry.  Results come
        back in input order; a block that fails after the retry policy
        re-raises here.
        """
        if self._closed:
            raise EngineClosedError("map_batches() after engine shutdown")
        key = self._key(spec, version, dtype, backend)
        self.breaker.check(key)
        futures = []
        block_xps = []
        for block in blocks:
            block_xp = get_namespace(block, default=self.xp)
            if is_numpy_namespace(block_xp):
                block = np.asarray(block)
                block_xp = self.xp  # stage into the configured namespace
            else:
                block = np.asarray(asnumpy(block))
            block_xps.append(block_xp)
            if block.ndim != 2:
                raise ShapeError(
                    f"map_batches expects 2-D (n, batch) blocks, got {block.shape}"
                )
            self._acquire(block.shape[1])
            self.telemetry.incr("engine.bulk_blocks_submitted")
            if self._serial:
                fut: Future = Future()
                try:
                    fut.set_result(self._run_block(key, block))
                except Exception as exc:  # noqa: BLE001 - deliver in order
                    fut = Future()
                    fut.set_exception(exc)
                futures.append(fut)
                continue
            try:
                futures.append(self._pool.submit(self._run_block, key, block))
            except RuntimeError as exc:
                if self._closed:
                    self._release(block.shape[1])
                    raise
                self._degrade_to_serial(f"thread-pool dispatch failed: {exc}")
                fut = Future()
                try:
                    fut.set_result(self._run_block(key, block))
                except Exception as run_exc:  # noqa: BLE001
                    fut = Future()
                    fut.set_exception(run_exc)
                futures.append(fut)
        return [
            self._stage(f.result(), bxp) for f, bxp in zip(futures, block_xps)
        ]

    def _run_block(self, key: PlanKey, block: np.ndarray) -> np.ndarray:
        builder = None
        try:
            if not self.breaker.allow(key):
                raise self.breaker.open_error(key)
            builder = self.plan_cache.builder(key)
            checker = (
                self._checker_for(key, builder) if self._should_verify() else None
            )
            sample = (
                self._sample_cols(block.shape[1]) if checker is not None else None
            )
            attempts = 1 + self.config.retries
            for attempt in range(attempts):
                try:
                    # First attempt rides the configured executor; retries
                    # fall back to a local solve, mirroring the coalesced
                    # path's per-request fallback.
                    work = self._solve_block_copy(
                        key, builder, block, sharded=attempt == 0
                    )
                    if checker is not None:
                        # *block* is the caller's unmodified right-hand side.
                        self._verify_sample(
                            checker, work[:, sample], block[:, sample]
                        )
                    self.breaker.record_success(key)
                    return work
                except Exception:  # noqa: BLE001
                    if attempt + 1 >= attempts:
                        self.telemetry.incr("engine.requests_failed")
                        raise
                    self.telemetry.incr("engine.request_retries")
            raise AssertionError("unreachable")  # pragma: no cover
        except Exception as exc:  # noqa: BLE001 - breaker accounting
            if not getattr(exc, "short_circuited", False):
                self.breaker.record_failure(key, exc)
            raise
        finally:
            self._release(block.shape[1])

    def _solve_block_copy(
        self, key: PlanKey, builder, block: np.ndarray, sharded: bool = True
    ) -> np.ndarray:
        """Cast-copy *block* and solve it, process-sharded when configured.

        Runs the same transport/degradation ladder as the coalesced path:
        shared memory, then pickled shard transport on
        :class:`~repro.runtime.shm.ShmError`, then a local solve (after a
        degrade to threads) when the worker pool is exhausted.  The
        restore callback recopies from the caller's *block*, which the
        sharded paths never write to.
        """
        from repro.runtime.sharded import WorkerError

        executor = self._use_sharded() if sharded else None
        if executor is not None and block.shape[1] > 0:
            lease = None
            if not getattr(executor, "supports_shm", True):
                # Wire transport (cluster): skip the shared-memory rung
                # entirely — raw-byte shard transport is the native path,
                # not a degradation, so no shm_fallback is counted.
                pass
            else:
                try:
                    lease = executor.lease(block.shape, builder.dtype)
                except ShmError as exc:
                    self.telemetry.incr("engine.shm_fallbacks")
                    self.telemetry.event(
                        "degradation", frm="shm", to="pickled", reason=str(exc)
                    )
                    _LOG.warning(
                        "shared-memory lease failed (%s); using pickled shard "
                        "transport for this block", exc,
                    )
            if lease is not None:
                try:
                    np.copyto(lease.array, block, casting="unsafe")
                    with self.telemetry.span("engine.batch_solve"):
                        try:
                            executor.solve(
                                key,
                                lease,
                                restore=lambda c0, c1: np.copyto(
                                    lease.array[:, c0:c1],
                                    block[:, c0:c1],
                                    casting="unsafe",
                                ),
                            )
                        except WorkerError as exc:
                            if not executor.exhausted:
                                raise
                            self._degrade_to_threads(
                                f"worker pool exhausted: {exc}"
                            )
                            np.copyto(lease.array, block, casting="unsafe")
                            builder.solve(lease.array, in_place=True)
                    return np.array(lease.array, copy=True, order="C")
                finally:
                    executor.release(lease)
            work = np.array(block, dtype=builder.dtype, copy=True, order="C")
            with self.telemetry.span("engine.batch_solve"):
                try:
                    executor.solve_array(key, work)
                except WorkerError as exc:
                    if not executor.exhausted:
                        raise
                    self._degrade_to_threads(f"worker pool exhausted: {exc}")
                    np.copyto(work, block, casting="unsafe")
                    builder.solve(work, in_place=True)
            return work
        work = np.array(block, dtype=builder.dtype, copy=True, order="C")
        if self._faults is not None:
            self._faults.fire("engine.batch_solve", key=key)
        with self.telemetry.span("engine.batch_solve"):
            builder.solve(work, in_place=True)
        return work

    def warm_start(self) -> int:
        """Preload every readable durable plan entry into the plan cache.

        With a configured ``plan_store_dir`` this turns a process restart
        into a zero-factorization boot: each stored builder is adopted
        via :meth:`PlanCache.put`, so the first solve of every known key
        is a cache hit.  Unusable entries are quarantined and skipped by
        the store.  Returns the number of builders loaded (0 when no
        store is configured).
        """
        if self.plan_store is None:
            return 0
        loaded = 0
        for key, builder in self.plan_store.entries():
            self.plan_cache.put(key, builder)
            loaded += 1
            self.telemetry.incr("durable.warm_loaded")
        return loaded

    def solve_stream(
        self,
        spec: BSplineSpec,
        source,
        out_path,
        *,
        version: int = 2,
        dtype=np.float64,
        backend: str = "vectorized",
        chunk_cols: Optional[int] = None,
        memory_budget: Optional[int] = None,
        state_path=None,
        resume: bool = True,
    ) -> np.ndarray:
        """Out-of-core campaign: stream *source* through :meth:`map_batches`.

        See :func:`repro.runtime.durable.run_campaign` — windows of
        ``chunk_cols`` columns (or a width derived from *memory_budget*)
        are solved and appended to the memory-mapped ``.npy`` at
        *out_path*, with a :class:`~repro.runtime.durable.CampaignState`
        checkpoint making the campaign resumable bitwise-identically.
        When *state_path* is omitted the checkpoint lives next to
        *out_path*, or under ``config.checkpoint_dir`` when that is set.
        """
        from repro.runtime.durable import run_campaign

        if state_path is None and self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            state_path = os.path.join(
                self.config.checkpoint_dir,
                os.path.basename(os.fspath(out_path)) + ".campaign.json",
            )
        return run_campaign(
            self,
            spec,
            source,
            out_path,
            version=version,
            dtype=dtype,
            backend=backend,
            chunk_cols=chunk_cols,
            memory_budget=memory_budget,
            state_path=state_path,
            resume=resume,
        )

    def flush(self) -> None:
        """Dispatch every lingering partial batch right now."""
        for lane in list(self._lanes.values()):
            batch = lane.coalescer.drain()
            if batch is not None:
                self._dispatch(lane.key, batch)

    @property
    def inflight_cols(self) -> int:
        """Columns currently buffered or solving (the backpressure gauge)."""
        with self._capacity:
            return self._inflight_cols

    def telemetry_snapshot(self, include_workers: bool = True) -> dict:
        """The engine's telemetry as a dict; under ``executor="processes"``
        the per-worker snapshots are merged in (:func:`merge_snapshots`),
        so plan-cache and shard counters cover the whole fleet.  The
        resilience layer contributes ``circuit`` (per-key breaker states)
        and ``degradation`` (the ladder's current rung) sections."""
        snap = self.telemetry.snapshot()
        if include_workers and self._sharded is not None:
            from repro.runtime.telemetry import merge_snapshots

            snap = merge_snapshots(snap, *self._sharded.worker_snapshots())
        snap["circuit"] = self.breaker.states()
        snap["degradation"] = {
            "level": self._level,
            "pool_exhausted": (
                self._sharded.exhausted if self._sharded is not None else False
            ),
        }
        return snap

    def telemetry_report(self) -> str:
        """The engine's (fleet-merged) telemetry as a paper-style table."""
        from repro.runtime.telemetry import render_snapshot

        return render_snapshot(self.telemetry_snapshot())

    def shutdown(self, wait: bool = True) -> None:
        """Drain lingering batches, then stop the flusher, pool and workers."""
        if self._closed:
            return
        self._closed = True
        self._stop_flusher.set()
        self._flusher.join(timeout=1.0)
        self.flush()
        self._pool.shutdown(wait=wait)
        if self._sharded is not None:
            # After the thread pool drained no batch is mid-shard; the
            # worker shutdown captures final telemetry then frees all shm.
            self._sharded.shutdown()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolveEngine(max_batch={self.config.max_batch}, "
            f"max_linger={self.config.max_linger}, "
            f"workers={self.config.num_workers}, "
            f"executor={self._level!r}, "
            f"inflight={self.inflight_cols}, lanes={len(self._lanes)}, "
            f"closed={self._closed})"
        )
