"""The batched solve engine — plan cache + coalescer + bounded executor.

:class:`SolveEngine` is the execution layer between callers (examples,
:mod:`repro.advection`, :mod:`repro.distributed`, benchmarks) and the
solver stack.  Callers hand it a :class:`~repro.core.spec.BSplineSpec`
and right-hand sides; the engine

1. resolves the factorized builder through its
   :class:`~repro.runtime.plan_cache.PlanCache` (one factorization per
   spline-space configuration, ever);
2. coalesces small ``submit()`` requests against the same configuration
   into paper-scale ``(n, B)`` batches
   (:class:`~repro.runtime.coalescer.RequestCoalescer`), dispatching a
   batch when it fills or when the oldest request has lingered;
3. runs batches on a bounded thread pool with backpressure (``"block"``
   or ``"reject"`` when the in-flight column budget is exhausted),
   per-request deadlines, and one retry that falls back to per-request
   solves so a single poisoned right-hand side cannot fail a whole batch;
4. with ``executor="processes"``, column-shards every batch across a
   persistent :class:`~repro.runtime.sharded.ShardedExecutor` worker-
   process pool through shared memory, putting multiple cores behind a
   *single* batch (bitwise identical to the thread path);
5. counts everything in :class:`~repro.runtime.telemetry.Telemetry`.

Two entry points::

    engine = SolveEngine(max_batch=256, max_linger=2e-3)
    fut = engine.submit(spec, rhs)          # coalesced; fut.result() -> coeffs
    outs = engine.map_batches(spec, blocks) # bulk blocks, plan-cached + pooled

The engine is a context manager; ``shutdown()`` drains lingering partial
batches before stopping the workers, so no accepted request is dropped.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.spec import BSplineSpec
from repro.exceptions import ReproError, ShapeError
from repro.runtime.coalescer import CoalescedBatch, RequestCoalescer, SolveRequest
from repro.runtime.plan_cache import PlanCache, PlanKey
from repro.runtime.telemetry import Telemetry

__all__ = [
    "EngineConfig",
    "SolveEngine",
    "BackpressureError",
    "EngineClosedError",
    "EngineTimeoutError",
]

_BACKPRESSURE_POLICIES = ("block", "reject")
_EXECUTORS = ("threads", "processes")


class BackpressureError(ReproError, RuntimeError):
    """The engine's in-flight budget is exhausted and the policy rejects."""


class EngineClosedError(ReproError, RuntimeError):
    """A request arrived after :meth:`SolveEngine.shutdown`."""


class EngineTimeoutError(ReproError, TimeoutError):
    """A request's deadline passed before its batch was solved."""


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one :class:`SolveEngine`.

    Attributes
    ----------
    max_batch:
        Columns per coalesced batch; the flush trigger.
    max_linger:
        Seconds a lone request may wait for batch-mates before a partial
        batch is cut (the latency/throughput trade-off knob).
    num_workers:
        Workers solving batches concurrently: threads under
        ``executor="threads"``, worker *processes* (plus as many
        orchestrating threads) under ``executor="processes"``.
    executor:
        ``"threads"`` — batches solve on the engine's thread pool, one
        batch per thread (different batches overlap, one batch is one
        core).  ``"processes"`` — each batch is additionally column-split
        across a persistent :class:`~repro.runtime.sharded.ShardedExecutor`
        worker-process pool through shared memory, so a single paper-scale
        batch engages every worker past the GIL; results are bitwise
        identical to the thread path.
    max_queue:
        In-flight column budget (buffered + solving, across all lanes);
        beyond it the *backpressure* policy applies.
    backpressure:
        ``"block"`` — wait (up to *submit_timeout*) for capacity;
        ``"reject"`` — raise :class:`BackpressureError` immediately.
    submit_timeout:
        Seconds a blocked ``submit`` waits before raising
        :class:`BackpressureError`; ``None`` waits forever.
    default_timeout:
        Default per-request deadline in seconds (``None`` — no deadline).
        Expired requests are dropped from their batch with
        :class:`EngineTimeoutError` before any solve work is spent.
    retries:
        After a failed batched solve, how many per-request fallback
        attempts each member gets (the batch itself is never re-run).
    verify_every:
        Sample every Nth solved batch through the backward-error check of
        :class:`~repro.verify.residual.ResidualChecker` (0 — never).  A
        failed check is routed through the poisoned-RHS retry path, where
        each member is re-solved and re-verified individually so only the
        culprit column(s) fail.
    verify_cols:
        Columns checked per sampled batch.  The banded residual product
        costs the same order as the solve itself, so checking a bounded,
        evenly-spaced sample keeps even ``verify_every=1`` cheap on
        paper-scale batches.
    verify_tol_factor:
        Safety factor ``c`` of the condition-aware verification
        tolerance ``c · κ₁ · ε(dtype)``.
    """

    max_batch: int = 256
    max_linger: float = 2e-3
    num_workers: int = 2
    executor: str = "threads"
    max_queue: int = 65536
    backpressure: str = "block"
    submit_timeout: Optional[float] = None
    default_timeout: Optional[float] = None
    retries: int = 1
    verify_every: int = 0
    verify_cols: int = 16
    verify_tol_factor: float = 64.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {self.max_linger}")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {_EXECUTORS}"
            )
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {_BACKPRESSURE_POLICIES}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.verify_every < 0:
            raise ValueError(f"verify_every must be >= 0, got {self.verify_every}")
        if self.verify_cols < 1:
            raise ValueError(f"verify_cols must be >= 1, got {self.verify_cols}")
        if self.verify_tol_factor <= 0:
            raise ValueError(
                f"verify_tol_factor must be > 0, got {self.verify_tol_factor}"
            )


class _Lane:
    """Per-:class:`PlanKey` state: the coalescer feeding one builder."""

    __slots__ = ("key", "coalescer")

    def __init__(self, key: PlanKey, n: int, config: EngineConfig) -> None:
        self.key = key
        self.coalescer = RequestCoalescer(
            n, max_batch=config.max_batch, max_linger=config.max_linger
        )


class SolveEngine:
    """Batched spline-solve engine: cache, coalesce, bound, measure.

    Parameters
    ----------
    config:
        An :class:`EngineConfig`; keyword overrides (``max_batch=...``)
        may be given instead of / on top of it.
    plan_cache, telemetry:
        Optionally share these across engines (e.g. one process-wide
        plan cache under several differently-tuned engines).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        telemetry: Optional[Telemetry] = None,
        **overrides,
    ) -> None:
        if overrides:
            base = config or EngineConfig()
            config = EngineConfig(
                **{
                    field: overrides.pop(field, getattr(base, field))
                    for field in EngineConfig.__dataclass_fields__
                }
            )
            if overrides:
                raise TypeError(f"unknown EngineConfig fields: {sorted(overrides)}")
        self.config = config or EngineConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(telemetry=self.telemetry)
        )
        if self.plan_cache.telemetry is None:
            self.plan_cache.telemetry = self.telemetry
        self._lanes: Dict[PlanKey, _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._verify_lock = threading.Lock()
        self._verify_seq = 0
        self._checkers: Dict[PlanKey, object] = {}  # None = unverifiable builder
        self._capacity = threading.Condition()
        self._inflight_cols = 0
        self._closed = False
        # The sharded worker pool forks/spawns before the engine's own
        # threads exist, keeping the child processes clean of them.
        self._sharded = None
        if self.config.executor == "processes":
            from repro.runtime.sharded import ShardedExecutor

            self._sharded = ShardedExecutor(
                num_workers=self.config.num_workers, telemetry=self.telemetry
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.num_workers,
            thread_name_prefix="repro-solve",
        )
        self._stop_flusher = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-flusher", daemon=True
        )
        self._flusher.start()

    # -- capacity accounting --------------------------------------------

    def _acquire(self, cols: int) -> None:
        deadline = (
            time.perf_counter() + self.config.submit_timeout
            if self.config.submit_timeout is not None
            else None
        )
        with self._capacity:
            while self._inflight_cols + cols > self.config.max_queue:
                self.telemetry.incr("engine.backpressure_events")
                if self.config.backpressure == "reject":
                    raise BackpressureError(
                        f"in-flight budget exhausted: {self._inflight_cols} "
                        f"columns queued, {cols} requested, "
                        f"max_queue={self.config.max_queue}"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise BackpressureError(
                            f"blocked submit timed out after "
                            f"{self.config.submit_timeout}s waiting for capacity"
                        )
                self._capacity.wait(timeout=remaining)
            self._inflight_cols += cols
            self.telemetry.observe("engine.queue_depth_cols", self._inflight_cols)

    def _release(self, cols: int) -> None:
        with self._capacity:
            self._inflight_cols -= cols
            self._capacity.notify_all()

    # -- lanes and dispatch ---------------------------------------------

    def _key(self, spec: BSplineSpec, version: int, dtype, backend: str) -> PlanKey:
        return PlanKey.from_spec(
            spec, version=version, dtype=dtype, backend=backend
        )

    def _lane(self, key: PlanKey, n: int) -> _Lane:
        with self._lanes_lock:
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = _Lane(key, n, self.config)
            return lane

    def _dispatch(self, key: PlanKey, batch: CoalescedBatch) -> None:
        self.telemetry.incr("engine.batches_dispatched")
        self.telemetry.observe("coalescer.batch_cols", batch.cols)
        self._pool.submit(self._run_batch, key, batch)

    # -- verify-on-solve sampling ----------------------------------------

    def _should_verify(self) -> bool:
        """Every ``verify_every``-th dispatched solve is sampled."""
        every = self.config.verify_every
        if every <= 0:
            return False
        with self._verify_lock:
            seq = self._verify_seq
            self._verify_seq += 1
        return seq % every == 0

    def _checker_for(self, key: PlanKey, builder):
        """Cached :class:`ResidualChecker` for *key*; None when the
        builder cannot expose its matrix (e.g. test fakes)."""
        with self._verify_lock:
            if key in self._checkers:
                checker = self._checkers[key]
                if checker is None:
                    self.telemetry.incr("verify.unsupported")
                return checker
        from repro.verify.residual import ResidualChecker

        try:
            checker = ResidualChecker(
                builder, tol_factor=self.config.verify_tol_factor
            )
        except TypeError:
            checker = None
            self.telemetry.incr("verify.unsupported")
        with self._verify_lock:
            self._checkers.setdefault(key, checker)
        return checker

    def _sample_cols(self, cols: int) -> np.ndarray:
        """Evenly spaced column sample, at most ``verify_cols`` wide."""
        take = min(self.config.verify_cols, cols)
        if take == cols:
            return np.arange(cols)
        return np.linspace(0, cols - 1, take).astype(int)

    def _verify_sample(self, checker, x: np.ndarray, b: np.ndarray) -> None:
        """Check solved sample *x* against pre-solve *b*; raise on failure."""
        self.telemetry.incr("verify.checks")
        with self.telemetry.span("engine.verify"):
            report = checker.check(x, b)
        # η is meaningful on [0, 1]; a NaN-poisoned column reports η = ∞,
        # which is recorded as 1.0 to keep the telemetry percentiles finite.
        self.telemetry.observe(
            "verify.backward_error",
            report.worst if np.isfinite(report.worst) else 1.0,
        )
        if report.passed:
            self.telemetry.incr("verify.passes")
        else:
            self.telemetry.incr("verify.failures")
        report.raise_if_failed()

    def _run_batch(self, key: PlanKey, batch: CoalescedBatch) -> None:
        now = time.perf_counter()
        live: List[SolveRequest] = []
        for req in batch.requests:
            if req.expired(now):
                self.telemetry.incr("engine.requests_timed_out")
                if req.future.set_running_or_notify_cancel():
                    req.future.set_exception(
                        EngineTimeoutError(
                            "request deadline passed before its batch was solved"
                        )
                    )
                self._release(req.cols)
            else:
                live.append(req)
        if not live:
            return
        batch = CoalescedBatch(live)
        builder = self.plan_cache.builder(key)
        checker = None
        lease = None
        try:
            if self._sharded is not None and batch.cols > 0:
                # Assemble straight into a pooled shared segment: the
                # workers solve their column shards in place there and
                # the scatter below reads the very same buffer.
                lease = self._sharded.lease((builder.n, batch.cols), builder.dtype)
                block = batch.assemble(builder.dtype, out=lease.array)
            else:
                block = batch.assemble(builder.dtype)
            if self._should_verify():
                checker = self._checker_for(key, builder)
            if checker is not None:
                sample = self._sample_cols(block.shape[1])
                ref = block[:, sample].copy()  # pre-solve right-hand sides
            with self.telemetry.span("engine.batch_solve"):
                if lease is not None:
                    self._sharded.solve(key, lease)
                else:
                    builder.solve(block, in_place=True)
            if checker is not None:
                self._verify_sample(checker, block[:, sample], ref)
            batch.scatter(block)
            self.telemetry.incr("engine.requests_completed", len(live))
        except Exception as exc:  # noqa: BLE001 - isolate per request below
            self.telemetry.incr("engine.batch_failures")
            self._retry_individually(builder, batch, exc, checker=checker)
        finally:
            if lease is not None:
                self._sharded.release(lease)
            done = time.perf_counter()
            for req in live:
                self.telemetry.observe(
                    "engine.request_latency_seconds", done - req.enqueued_at
                )
                self._release(req.cols)

    def _retry_individually(
        self, builder, batch: CoalescedBatch, batch_exc: Exception, checker=None
    ) -> None:
        """A failed batch falls back to per-request solves (retry-once).

        When the batch failed its sampled verification (*checker* given),
        every fallback solve is re-verified over *all* of its columns, so
        a single poisoned right-hand side fails alone while its
        batch-mates complete normally.
        """
        for req in batch.requests:
            if not req.future.set_running_or_notify_cancel():
                continue
            outcome: Optional[BaseException] = batch_exc
            for _ in range(self.config.retries):
                self.telemetry.incr("engine.request_retries")
                try:
                    work = np.array(
                        req.rhs if req.rhs.ndim == 2 else req.rhs[:, None],
                        dtype=builder.dtype,
                        copy=True,
                        order="C",
                    )
                    builder.solve(work, in_place=True)
                    if checker is not None:
                        self._verify_sample(checker, work, req.rhs)
                    req.future.set_result(
                        work[:, 0] if req.rhs.ndim == 1 else work
                    )
                    self.telemetry.incr("engine.requests_completed")
                    outcome = None
                    break
                except Exception as exc:  # noqa: BLE001
                    outcome = exc
            if outcome is not None:
                self.telemetry.incr("engine.requests_failed")
                req.future.set_exception(outcome)

    def _flush_loop(self) -> None:
        tick = max(self.config.max_linger / 4.0, 5e-4)
        while not self._stop_flusher.wait(timeout=tick):
            now = time.perf_counter()
            for lane in list(self._lanes.values()):
                batch = lane.coalescer.poll(now)
                if batch is not None:
                    try:
                        self._dispatch(lane.key, batch)
                    except RuntimeError:  # pool shut down under us
                        batch.fail(EngineClosedError("engine shut down"))
                        return

    # -- public API ------------------------------------------------------

    def submit(
        self,
        spec: BSplineSpec,
        rhs: np.ndarray,
        *,
        version: int = 2,
        dtype=np.float64,
        backend: str = "vectorized",
        timeout: Optional[float] = None,
    ) -> Future:
        """Queue one right-hand side for a coalesced solve.

        *rhs* is 1-D ``(n,)`` or 2-D ``(n, b)``; the returned future
        resolves to the spline coefficients with the same shape.  The
        request coalesces with every other in-flight request for the same
        ``(spec, version, dtype, backend)`` configuration.
        """
        if self._closed:
            raise EngineClosedError("submit() after engine shutdown")
        key = self._key(spec, version, dtype, backend)
        builder = self.plan_cache.builder(key)  # factor once, count every lookup
        rhs = np.asarray(rhs)
        if rhs.shape[0] != builder.n:
            raise ShapeError(
                f"right-hand side leading extent {rhs.shape[0]} does not "
                f"match the {builder.n} basis functions of {spec}"
            )
        timeout = timeout if timeout is not None else self.config.default_timeout
        deadline = time.perf_counter() + timeout if timeout is not None else None
        request = SolveRequest(rhs, deadline=deadline)
        self._acquire(request.cols)
        self.telemetry.incr("engine.requests_submitted")
        lane = self._lane(key, builder.n)
        # add() may cut several full batches at once (a wide request can
        # cross multiple max_batch multiples); dispatch every one now so
        # none waits out max_linger behind the flusher.
        for batch in lane.coalescer.add(request):
            self._dispatch(key, batch)
        return request.future

    def solve(self, spec: BSplineSpec, rhs: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(...).result()``."""
        timeout = kwargs.get("timeout")
        return self.submit(spec, rhs, **kwargs).result(
            timeout=None if timeout is None else timeout + 1.0
        )

    def map_batches(
        self,
        spec: BSplineSpec,
        blocks: Sequence[np.ndarray],
        *,
        version: int = 2,
        dtype=np.float64,
        backend: str = "vectorized",
    ) -> List[np.ndarray]:
        """Solve several already-large ``(n, batch)`` blocks in bulk.

        The bulk path skips the coalescer — each block is already a
        paper-scale batch — but still goes through the plan cache, the
        bounded pool and telemetry.  Results come back in input order;
        a block that fails after the retry policy re-raises here.
        """
        if self._closed:
            raise EngineClosedError("map_batches() after engine shutdown")
        key = self._key(spec, version, dtype, backend)
        futures = []
        for block in blocks:
            block = np.asarray(block)
            if block.ndim != 2:
                raise ShapeError(
                    f"map_batches expects 2-D (n, batch) blocks, got {block.shape}"
                )
            self._acquire(block.shape[1])
            self.telemetry.incr("engine.bulk_blocks_submitted")
            futures.append(self._pool.submit(self._run_block, key, block))
        return [f.result() for f in futures]

    def _run_block(self, key: PlanKey, block: np.ndarray) -> np.ndarray:
        builder = self.plan_cache.builder(key)
        try:
            checker = (
                self._checker_for(key, builder) if self._should_verify() else None
            )
            sample = (
                self._sample_cols(block.shape[1]) if checker is not None else None
            )
            attempts = 1 + self.config.retries
            for attempt in range(attempts):
                try:
                    # First attempt rides the configured executor; retries
                    # fall back to a local solve, mirroring the coalesced
                    # path's per-request fallback.
                    work = self._solve_block_copy(
                        key, builder, block, sharded=attempt == 0
                    )
                    if checker is not None:
                        # *block* is the caller's unmodified right-hand side.
                        self._verify_sample(
                            checker, work[:, sample], block[:, sample]
                        )
                    return work
                except Exception:  # noqa: BLE001
                    if attempt + 1 >= attempts:
                        self.telemetry.incr("engine.requests_failed")
                        raise
                    self.telemetry.incr("engine.request_retries")
            raise AssertionError("unreachable")  # pragma: no cover
        finally:
            self._release(block.shape[1])

    def _solve_block_copy(
        self, key: PlanKey, builder, block: np.ndarray, sharded: bool = True
    ) -> np.ndarray:
        """Cast-copy *block* and solve it, process-sharded when configured."""
        if sharded and self._sharded is not None and block.shape[1] > 0:
            lease = self._sharded.lease(block.shape, builder.dtype)
            try:
                np.copyto(lease.array, block, casting="unsafe")
                with self.telemetry.span("engine.batch_solve"):
                    self._sharded.solve(key, lease)
                return np.array(lease.array, copy=True, order="C")
            finally:
                self._sharded.release(lease)
        work = np.array(block, dtype=builder.dtype, copy=True, order="C")
        with self.telemetry.span("engine.batch_solve"):
            builder.solve(work, in_place=True)
        return work

    def flush(self) -> None:
        """Dispatch every lingering partial batch right now."""
        for lane in list(self._lanes.values()):
            batch = lane.coalescer.drain()
            if batch is not None:
                self._dispatch(lane.key, batch)

    @property
    def inflight_cols(self) -> int:
        """Columns currently buffered or solving (the backpressure gauge)."""
        with self._capacity:
            return self._inflight_cols

    def telemetry_snapshot(self, include_workers: bool = True) -> dict:
        """The engine's telemetry as a dict; under ``executor="processes"``
        the per-worker snapshots are merged in (:func:`merge_snapshots`),
        so plan-cache and shard counters cover the whole fleet."""
        snap = self.telemetry.snapshot()
        if include_workers and self._sharded is not None:
            from repro.runtime.telemetry import merge_snapshots

            return merge_snapshots(snap, *self._sharded.worker_snapshots())
        return snap

    def telemetry_report(self) -> str:
        """The engine's (fleet-merged) telemetry as a paper-style table."""
        from repro.runtime.telemetry import render_snapshot

        return render_snapshot(self.telemetry_snapshot())

    def shutdown(self, wait: bool = True) -> None:
        """Drain lingering batches, then stop the flusher, pool and workers."""
        if self._closed:
            return
        self._closed = True
        self._stop_flusher.set()
        self._flusher.join(timeout=1.0)
        self.flush()
        self._pool.shutdown(wait=wait)
        if self._sharded is not None:
            # After the thread pool drained no batch is mid-shard; the
            # worker shutdown captures final telemetry then frees all shm.
            self._sharded.shutdown()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolveEngine(max_batch={self.config.max_batch}, "
            f"max_linger={self.config.max_linger}, "
            f"workers={self.config.num_workers}, "
            f"inflight={self.inflight_cols}, lanes={len(self._lanes)}, "
            f"closed={self._closed})"
        )
