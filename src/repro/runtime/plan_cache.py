"""LRU cache of factorized spline builders — factor once, *globally*.

PR 1 made each :class:`~repro.core.SplineBuilder` factor its matrix once
and stream arbitrarily many right-hand sides through it.  That amortizes
the setup *per builder* — but every caller that constructs its own builder
for the same spline space still refactorizes.  At the paper's scale
(matrix ~1000, batch 1e5–1e12) the factorization is pure overhead the
moment any other caller has already paid for it.

:class:`PlanCache` closes that gap: builders are cached under a
:class:`PlanKey` — the hashable tuple of everything that determines the
factorization and the solve semantics (the frozen
:class:`~repro.core.spec.BSplineSpec`, the §IV solver version, the working
dtype, the chunk width, the corner drop tolerance, and the dispatch
backend).  Lookups are thread-safe; eviction is least-recently-used.

The cache holds the *whole builder* rather than a bare
:class:`~repro.core.builder.plan.FactorizationPlan` because the builder
owns exactly one solver (``SchurSolver`` or ``DirectBandSolver``) built
from one factorization — caching at this level deduplicates the
factorization *and* the assembled collocation matrix and Greville points.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.builder.builder import SplineBuilder
from repro.core.builder.schur import DEFAULT_CHUNK, DEFAULT_DROP_TOL
from repro.core.spec import BSplineSpec

__all__ = ["PlanKey", "PlanCache", "DEFAULT_MAX_PLANS"]

#: default number of cached builders; a builder for an n-point space holds
#: O(n · bandwidth) factor entries, so dozens are cheap to keep around
DEFAULT_MAX_PLANS = 64


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a factorized builder, as a hashable key.

    ``spec`` (a frozen dataclass) carries degree, size, boundary condition
    and mesh family; ``version``/``dtype``/``chunk``/``drop_tol`` pick the
    §IV solve configuration; ``backend`` the dispatch strategy.  Two
    callers with equal keys can share one factorization bit-for-bit.
    """

    spec: BSplineSpec
    version: int = 2
    dtype: str = "float64"
    chunk: int = DEFAULT_CHUNK
    drop_tol: float = DEFAULT_DROP_TOL
    backend: str = "vectorized"

    @classmethod
    def from_spec(
        cls,
        spec: BSplineSpec,
        version: int = 2,
        dtype=np.float64,
        chunk: int = DEFAULT_CHUNK,
        drop_tol: float = DEFAULT_DROP_TOL,
        backend: str = "vectorized",
    ) -> "PlanKey":
        if not isinstance(spec, BSplineSpec):
            raise TypeError(
                "plan caching needs a hashable BSplineSpec; builders made "
                f"from prebuilt spline spaces cannot be keyed (got {type(spec).__name__})"
            )
        return cls(
            spec=spec,
            version=int(version),
            dtype=np.dtype(dtype).name,
            chunk=int(chunk),
            drop_tol=float(drop_tol),
            backend=backend,
        )

    def make_builder(self) -> SplineBuilder:
        """Factor a fresh :class:`SplineBuilder` for this key."""
        return SplineBuilder(
            self.spec,
            version=self.version,
            backend=self.backend,
            dtype=np.dtype(self.dtype),
            chunk=self.chunk,
            drop_tol=self.drop_tol,
        )


class PlanCache:
    """Thread-safe LRU cache of factorized :class:`SplineBuilder` objects.

    Parameters
    ----------
    max_plans:
        Builders retained; the least recently used is evicted beyond this.
    telemetry:
        Optional :class:`~repro.runtime.telemetry.Telemetry`; when given,
        ``plan_cache.hits`` / ``plan_cache.misses`` / ``plan_cache.evictions``
        counters are kept there as well as locally.
    store:
        Optional :class:`~repro.runtime.durable.PlanStore`.  A cold miss
        consults the store before factorizing (a restarted process
        warm-starts with zero factorizations — ``plan_cache.factorized``
        stays 0), and a fresh factorization is written back best-effort:
        a failed store write or a corrupt entry costs a counter and a
        refactorization, never the solve.
    """

    def __init__(
        self,
        max_plans: int = DEFAULT_MAX_PLANS,
        telemetry=None,
        faults=None,
        store=None,
    ) -> None:
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = int(max_plans)
        self.telemetry = telemetry
        #: optional FaultPlan; fires "plan_cache.factorize" on the leader
        #: path of a cold miss, before the factorization runs
        self.faults = faults
        #: optional durable PlanStore backing cold misses
        self.store = store
        self._lock = threading.RLock()
        self._plans: "OrderedDict[PlanKey, SplineBuilder]" = OrderedDict()
        #: in-flight cold factorizations, one Future per key; concurrent
        #: misses on the *same* key wait here, misses on *different* keys
        #: factor concurrently because the factorization itself runs
        #: outside the cache lock
        self._building: Dict[PlanKey, Future] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(f"plan_cache.{name}")

    def _load_from_store(self, key: PlanKey):
        """The durable entry for *key*, or ``None`` (miss *or* corrupt).

        Corruption is already quarantined and counted by the store
        (``durable.corrupt_evicted``); here it degrades to a plain miss
        so the leader path refactorizes — never a wrong answer, never a
        crash.
        """
        if self.store is None:
            return None
        from repro.runtime.durable import DurableStoreError

        try:
            return self.store.load(key)
        except DurableStoreError:
            return None

    def _save_to_store(self, key: PlanKey, builder: SplineBuilder) -> None:
        """Best-effort write-back; a failed write never fails the solve."""
        if self.store is None:
            return
        from repro.runtime.durable import DurableStoreError

        try:
            self.store.save(key, builder)
        except DurableStoreError:
            pass

    def builder(
        self,
        key: PlanKey,
        factory: Optional[Callable[[], SplineBuilder]] = None,
    ) -> SplineBuilder:
        """The cached builder for *key*, factoring it on first use.

        A cold miss factors *outside* the cache lock behind a per-key
        once-:class:`Future`: hits on other keys (and cold misses on
        *different* keys) proceed concurrently instead of convoying
        behind a factorization that can take longer than thousands of
        lookups, while duplicate misses on the same key wait on the one
        in-flight factorization rather than repeating it.  A factory that
        raises unblocks the waiters with the same exception and clears
        the slot, so the next lookup retries.
        """
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                self._count("hits")
                return cached
            pending = self._building.get(key)
            if pending is None:
                # This caller leads the factorization for *key*.
                pending = self._building[key] = Future()
                leader = True
                self.misses += 1
                self._count("misses")
            else:
                # A duplicate miss: the factorization is already paid
                # for, so it counts as a (delayed) hit.
                leader = False
                self.hits += 1
                self._count("hits")
        if not leader:
            return pending.result()
        try:
            if self.faults is not None:
                self.faults.fire("plan_cache.factorize", key=key)
            built = self._load_from_store(key) if factory is None else None
            if built is None:
                built = (factory or key.make_builder)()
                self._count("factorized")
                if factory is None:
                    self._save_to_store(key, built)
        except BaseException as exc:
            with self._lock:
                self._building.pop(key, None)
            pending.set_exception(exc)
            raise
        with self._lock:
            # A put() may have landed while we factored; the freshly
            # factored builder wins so leader and waiters agree.
            self._plans[key] = built
            self._plans.move_to_end(key)
            self._building.pop(key, None)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
        pending.set_result(built)
        return built

    def put(self, key: PlanKey, builder: SplineBuilder) -> None:
        """Adopt an externally factored builder (no-op if *key* is cached).

        Lets a caller that already paid for a factorization donate it, so
        the engine never refactorizes what the caller holds.
        """
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
                return
            self._plans[key] = builder
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
                self._count("evictions")

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (NaN before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else float("nan")

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"PlanCache(size={len(self._plans)}/{self.max_plans}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})"
            )
