"""Runtime engine: batched solve scheduling between callers and solvers.

The paper's result is that the spline solve only reaches the memory-
bandwidth roofline when amortized over huge batches (matrix ~1000, batch
1e5–1e12).  :mod:`repro.core` delivers that *per call*; this package
delivers it *across calls* — the service layer a production deployment
puts in front of the solver stack:

* :class:`~repro.runtime.plan_cache.PlanCache` /
  :class:`~repro.runtime.plan_cache.PlanKey` — an LRU of factorized
  builders keyed by spline-space configuration, so no configuration is
  ever factorized twice;
* :class:`~repro.runtime.coalescer.RequestCoalescer` — aggregates many
  small solve requests into one contiguous ``(n, B)`` batch (flush on
  full batch or linger expiry), scattering results back per request;
* :class:`~repro.runtime.engine.SolveEngine` — the bounded thread-pool
  executor tying the two together, with backpressure (block / reject),
  per-request deadlines, retry-once fallback, a synchronous
  ``submit().result()`` API and a bulk ``map_batches`` API;
* :class:`~repro.runtime.sharded.ShardedExecutor` /
  :mod:`repro.runtime.shm` — the ``executor="processes"`` backend: a
  persistent worker-process pool that column-shards each batch through
  pooled shared-memory segments, scaling a *single* batch past the GIL
  with bitwise-identical results;
* :class:`~repro.runtime.telemetry.Telemetry` — plan hits/misses,
  coalesced batch widths, queue depth and p50/p99 latency, exportable as
  a dict or a paper-style ASCII table, mergeable across worker processes;
* :mod:`repro.runtime.durable` — restart- and RAM-proofing: a
  versioned, checksummed on-disk :class:`~repro.runtime.durable.PlanStore`
  backing the plan cache (warm boots refactorize nothing), plus
  out-of-core campaigns (:func:`~repro.runtime.durable.run_campaign`)
  streaming memory-mapped / spooled right-hand sides in bounded-memory
  windows with a resumable, bitwise-exact
  :class:`~repro.runtime.durable.CampaignState` checkpoint;
* :mod:`repro.runtime.resilience` — the self-healing layer: seeded
  :class:`~repro.runtime.resilience.faults.FaultPlan` fault injection,
  a :class:`~repro.runtime.resilience.supervisor.WorkerSupervisor`
  respawning dead workers and requeueing their shards, a per-plan-key
  :class:`~repro.runtime.resilience.circuit.PlanBreaker`, and the
  engine's processes → threads → serial degradation ladder.

Quickstart::

    from repro import BSplineSpec
    from repro.runtime import SolveEngine

    spec = BSplineSpec(degree=3, n_points=1000)
    with SolveEngine(max_batch=256, max_linger=2e-3) as engine:
        futures = [engine.submit(spec, rhs) for rhs in many_small_rhs]
        coeffs = [f.result() for f in futures]   # solved as ~4 big batches
        print(engine.telemetry_report())
"""

from repro.runtime.coalescer import CoalescedBatch, RequestCoalescer, SolveRequest
from repro.runtime.durable import (
    ArrayRHS,
    CampaignState,
    ChunkSpoolRHS,
    DurableStoreError,
    MemmapRHS,
    PlanStore,
    StreamingRHS,
    run_campaign,
)
from repro.runtime.engine import (
    BackpressureError,
    EngineClosedError,
    EngineConfig,
    EngineTimeoutError,
    SolveEngine,
)
from repro.runtime.plan_cache import DEFAULT_MAX_PLANS, PlanCache, PlanKey
from repro.runtime.resilience import (
    CircuitOpenError,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    PlanBreaker,
    SupervisorPolicy,
    WorkerSupervisor,
)
from repro.runtime.sharded import ShardedExecutor, WorkerError
from repro.runtime.shm import SharedBlock, SharedBlockPool, ShmError
from repro.runtime.telemetry import (
    DEFAULT_MAX_SAMPLES,
    Telemetry,
    merge_snapshots,
    merged_counter,
    render_snapshot,
)

__all__ = [
    "SolveEngine",
    "EngineConfig",
    "BackpressureError",
    "EngineClosedError",
    "EngineTimeoutError",
    "PlanCache",
    "PlanKey",
    "DEFAULT_MAX_PLANS",
    "RequestCoalescer",
    "CoalescedBatch",
    "SolveRequest",
    "ShardedExecutor",
    "WorkerError",
    "SharedBlock",
    "SharedBlockPool",
    "ShmError",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "PlanBreaker",
    "CircuitOpenError",
    "SupervisorPolicy",
    "WorkerSupervisor",
    "Telemetry",
    "merged_counter",
    "merge_snapshots",
    "render_snapshot",
    "DEFAULT_MAX_SAMPLES",
    "PlanStore",
    "DurableStoreError",
    "StreamingRHS",
    "ArrayRHS",
    "MemmapRHS",
    "ChunkSpoolRHS",
    "CampaignState",
    "run_campaign",
]
