"""Durable runtime state: the on-disk plan store and out-of-core campaigns.

Two walls stand between the in-memory runtime and the paper's production
shape (batch axis ~1e12 columns, multi-hour campaigns):

* **Restarts refactorize.**  :class:`~repro.runtime.plan_cache.PlanCache`
  deduplicates factorizations *within* one process lifetime; a restarted
  :class:`~repro.runtime.engine.SolveEngine` (or a freshly spawned
  sharded worker) pays every setup phase again.  :class:`PlanStore`
  serializes factorized builders to per-key files — the stored factor
  arrays are the *exact bytes* of the original factorization, so a
  builder loaded from disk solves bitwise identically to the one that
  was saved — and ``PlanCache(store=...)`` consults it on every cold
  miss before factorizing, writing back after.  A warm boot performs
  zero factorizations (``plan_cache.factorized`` stays 0 in telemetry).

* **Batches outgrow RAM.**  :func:`run_campaign` streams a
  :class:`StreamingRHS` source (memory-mapped ``.npy`` or a spool of
  chunk files) through the engine in bounded-memory windows, writing
  coefficients to a memory-mapped output and recording completed chunk
  ranges in a :class:`CampaignState` JSON checkpoint after every window.
  A killed campaign resumes where it stopped; because the chunk
  boundaries are pinned in the checkpoint and chunks are independent,
  the stitched result is bitwise identical to an uninterrupted run.

Durability discipline (both the store and the checkpoint):

* writes are atomic — unique temp file in the destination directory,
  flush + fsync, then ``os.replace``; a kill mid-write leaves the old
  entry (or no entry), never a torn one;
* every store payload carries a blake2b checksum and a format version;
  *any* defect on load (truncation, bit flips, stale format, a
  half-written file from a non-atomic writer) quarantines the entry,
  bumps the ``durable.corrupt_evicted`` counter and surfaces as a clean
  :class:`DurableStoreError` — the cache falls back to refactorizing, so
  corruption can cost time but never correctness.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from dataclasses import asdict
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.spec import BSplineSpec
from repro.exceptions import ReproError, ShapeError

__all__ = [
    "DurableStoreError",
    "atomic_write_bytes",
    "PlanStore",
    "StreamingRHS",
    "ArrayRHS",
    "MemmapRHS",
    "ChunkSpoolRHS",
    "CampaignState",
    "run_campaign",
    "FORMAT_VERSION",
    "PLAN_STORE_ENV",
]

#: store/checkpoint container format; entries written by a different
#: version are treated as stale and evicted rather than reinterpreted
FORMAT_VERSION = 1

#: environment variable naming a default plan-store directory; consulted
#: by :class:`~repro.runtime.engine.EngineConfig` when no directory is
#: configured explicitly, so a fleet can be pointed at a shared store
#: without touching code
PLAN_STORE_ENV = "REPRO_PLAN_STORE"

_MAGIC = b"RPLN"

#: memory-budget oversubscription guard: one streamed window costs about
#: this many copies of itself (source read copy, the engine's cast work
#: copy, the shm lease under executor="processes", the result block)
_WINDOW_COPIES = 4

#: default streamed window width when neither chunk_cols nor a memory
#: budget is given
_DEFAULT_CHUNK_COLS = 16384


class DurableStoreError(ReproError, RuntimeError):
    """A durable entry (plan file or checkpoint) is unusable.

    Raised on corruption, truncation, checksum mismatch, a stale format
    version, or an I/O failure while writing.  Callers that can
    recompute (the plan cache, a resumed campaign) treat it as "entry
    absent" and fall back; it is never allowed to become a wrong answer.
    """


# ---------------------------------------------------------------------------
# PlanKey <-> JSON
# ---------------------------------------------------------------------------


def _key_to_dict(key) -> dict:
    return {
        "spec": asdict(key.spec),
        "version": key.version,
        "dtype": key.dtype,
        "chunk": key.chunk,
        "drop_tol": key.drop_tol,
        "backend": key.backend,
    }


def _key_from_dict(data: dict):
    from repro.runtime.plan_cache import PlanKey

    return PlanKey(
        spec=BSplineSpec(**data["spec"]),
        version=int(data["version"]),
        dtype=str(data["dtype"]),
        chunk=int(data["chunk"]),
        drop_tol=float(data["drop_tol"]),
        backend=str(data["backend"]),
    )


def _canonical_json(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _key_digest(key) -> str:
    """Stable filename stem for *key* (blake2b of its canonical JSON)."""
    payload = _canonical_json(_key_to_dict(key)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# Builder (de)serialization
# ---------------------------------------------------------------------------

#: per-plan-class extra integer attributes beyond (n, dtype, norm1)
_PLAN_INTS = {
    "PttrsPlan": (),
    "PbtrsPlan": ("kd",),
    "GbtrsPlan": ("kl", "ku"),
    "GetrsPlan": (),
}

#: per-plan-class stored arrays (factor arrays plus pivot vectors)
_PLAN_ARRAYS = {
    "PttrsPlan": ("d", "e"),
    "PbtrsPlan": ("ab",),
    "GbtrsPlan": ("ab", "ipiv"),
    "GetrsPlan": ("lu", "ipiv"),
}


def _pack_plan(plan, prefix: str, arrays: dict) -> dict:
    """Record one :class:`FactorizationPlan` into (meta dict, arrays)."""
    cls = type(plan).__name__
    if cls not in _PLAN_ARRAYS:
        raise DurableStoreError(f"cannot serialize plan class {cls!r}")
    meta = {
        "class": cls,
        "n": int(plan.n),
        "dtype": plan.dtype.name,
        "norm1": float(plan.norm1),
    }
    for name in _PLAN_INTS[cls]:
        meta[name] = int(getattr(plan, name))
    for name in _PLAN_ARRAYS[cls]:
        arrays[f"{prefix}__{name}"] = np.ascontiguousarray(getattr(plan, name))
    return meta


def _unpack_plan(meta: dict, prefix: str, arrays: dict):
    """Rebuild a :class:`FactorizationPlan` without refactorizing."""
    from repro.core.builder import plan as plan_module

    cls_name = meta.get("class")
    if cls_name not in _PLAN_ARRAYS:
        raise DurableStoreError(f"unknown plan class {cls_name!r} in store entry")
    cls = getattr(plan_module, cls_name)
    plan = cls.__new__(cls)
    plan_module.FactorizationPlan.__init__(
        plan, int(meta["n"]), np.dtype(meta["dtype"]), float(meta["norm1"])
    )
    for name in _PLAN_INTS[cls_name]:
        setattr(plan, name, int(meta[name]))
    for name in _PLAN_ARRAYS[cls_name]:
        stored = arrays.get(f"{prefix}__{name}")
        if stored is None:
            raise DurableStoreError(
                f"store entry is missing factor array {prefix}__{name}"
            )
        setattr(plan, name, np.ascontiguousarray(stored))
    return plan


def _pack_builder(builder) -> Tuple[dict, dict]:
    """``(meta, arrays)`` capturing *builder*'s factorization exactly.

    Only what cannot be reassembled cheaply and deterministically is
    stored: the factor arrays, pivots and corner operators.  The spline
    space, collocation matrix and Greville points are rebuilt from the
    spec on load — assembly is cheap; it is the factorization (serial
    Listing-2 style kernels, O(n) Python-level iterations) that the
    store exists to skip.
    """
    from repro.core.builder.schur import SchurSolver

    solver = builder.solver
    arrays: dict = {}
    if isinstance(solver, SchurSolver):
        meta = {
            "solver": "schur",
            "n": int(solver.n),
            "m": int(solver.m),
            "corner_width": int(solver.corner_width),
            "chunk": int(solver.chunk),
            "drop_tol": float(solver.drop_tol),
            "dtype": solver.dtype.name,
            "norm1": float(solver.norm1),
            "norm_inf": float(solver.norm_inf),
            "q": _pack_plan(solver.q_plan, "q", arrays),
            "delta": _pack_plan(solver.delta_plan, "delta", arrays),
        }
        arrays["beta"] = np.ascontiguousarray(solver.beta)
        arrays["lam"] = np.ascontiguousarray(solver.lam)
    else:
        meta = {
            "solver": "direct",
            "n": int(solver.n),
            "chunk": int(solver.chunk),
            "drop_tol": float(solver.drop_tol),
            "dtype": solver.dtype.name,
            "norm1": float(solver.norm1),
            "norm_inf": float(solver.norm_inf),
            "p": _pack_plan(solver.plan, "p", arrays),
        }
    return meta, arrays


def _unpack_builder(key, meta: dict, arrays: dict):
    """Rebuild the :class:`SplineBuilder` for *key* from a store entry.

    The spline space and collocation matrix are reassembled from the
    spec (deterministic, no factorization); the solver is reconstructed
    around the stored factor bytes, so its solves are bitwise identical
    to the builder that was saved.
    """
    from repro.core.builder.builder import SplineBuilder
    from repro.core.builder.direct import DirectBandSolver
    from repro.core.builder.schur import SchurSolver
    from repro.kbatched import Coo
    from repro.xspace import DefaultExecutionSpace

    kind = meta.get("solver")
    if kind == "schur":
        solver = SchurSolver.__new__(SchurSolver)
        solver.n = int(meta["n"])
        solver.m = int(meta["m"])
        solver.corner_width = int(meta["corner_width"])
        solver.chunk = int(meta["chunk"])
        solver.drop_tol = float(meta["drop_tol"])
        solver.dtype = np.dtype(meta["dtype"])
        solver.norm1 = float(meta["norm1"])
        solver.norm_inf = float(meta["norm_inf"])
        solver.q_plan = _unpack_plan(meta["q"], "q", arrays)
        solver.delta_plan = _unpack_plan(meta["delta"], "delta", arrays)
        beta = arrays.get("beta")
        lam = arrays.get("lam")
        if beta is None or lam is None:
            raise DurableStoreError("store entry is missing corner operators")
        solver.beta = np.ascontiguousarray(beta)
        solver.lam = np.ascontiguousarray(lam)
        # The COO corners are a deterministic function of the dense
        # corners and drop_tol, so rebuilding them preserves bitwise
        # solve identity while keeping the payload small.
        solver.beta_coo = Coo.from_dense(solver.beta, drop_tol=solver.drop_tol)
        solver.lam_coo = Coo.from_dense(solver.lam, drop_tol=solver.drop_tol)
    elif kind == "direct":
        solver = DirectBandSolver.__new__(DirectBandSolver)
        solver.n = int(meta["n"])
        solver.chunk = int(meta["chunk"])
        solver.drop_tol = float(meta["drop_tol"])
        solver.corner_width = 0
        solver.dtype = np.dtype(meta["dtype"])
        solver.norm1 = float(meta["norm1"])
        solver.norm_inf = float(meta["norm_inf"])
        solver.plan = _unpack_plan(meta["p"], "p", arrays)
    else:
        raise DurableStoreError(f"unknown solver kind {kind!r} in store entry")

    builder = SplineBuilder.__new__(SplineBuilder)
    builder.spec = key.spec
    builder.space_1d = key.spec.make_space()
    builder.version = key.version
    builder.backend = key.backend
    builder.exec_space = DefaultExecutionSpace
    builder.dtype = np.dtype(key.dtype)
    builder.chunk = key.chunk
    builder.drop_tol = key.drop_tol
    builder.matrix = builder.space_1d.collocation_matrix()
    builder.solver = solver
    builder.n = builder.space_1d.nbasis
    builder.engine = None
    if builder.n != solver.n:
        raise DurableStoreError(
            f"stored factorization is for n={solver.n} but the key's spec "
            f"assembles n={builder.n}"
        )
    return builder


# ---------------------------------------------------------------------------
# Atomic file helpers
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write *payload* to *path* atomically (tmp + fsync + rename).

    A reader concurrent with the write sees either the old file or the
    new one, never a mixture; a kill mid-write leaves only a temp file
    that the next :meth:`PlanStore.save` sweep removes.  Shared by the
    plan store, campaign checkpoints, and the cluster shard journal's
    result spool — one durability discipline for every on-disk artifact.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Durability of the rename itself: fsync the directory (best-effort;
    # some filesystems refuse O_RDONLY directory fds).
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


# ---------------------------------------------------------------------------
# PlanStore
# ---------------------------------------------------------------------------


class PlanStore:
    """Versioned, checksummed, per-key on-disk store of factorized builders.

    One entry per :class:`~repro.runtime.plan_cache.PlanKey`, named by
    the blake2b digest of the key's canonical JSON.  The container is::

        b"RPLN" | format byte | uint32 header length | JSON header | payload

    where the header records the format version, the full key, dtype and
    library metadata and the blake2b checksum of the payload, and the
    payload is an ``.npz`` archive of the factor arrays.  Writes are
    atomic (tmp + fsync + rename), so concurrent processes — sharded
    workers, several engines sharing one store directory — can read and
    write the same store safely: the worst race is two processes
    factorizing the same key once each and one of the identical entries
    winning the rename.

    Parameters
    ----------
    root:
        Store directory; created on first use.
    telemetry:
        Optional :class:`~repro.runtime.telemetry.Telemetry` for the
        ``durable.*`` counters (hits, misses, writes, write failures,
        corrupt evictions).
    faults:
        Optional :class:`~repro.runtime.resilience.faults.FaultPlan`;
        fires ``durable.store_write`` before an entry is committed and
        ``durable.store_read`` before one is parsed.
    """

    def __init__(self, root, telemetry=None, faults=None) -> None:
        self.root = os.fspath(root)
        self.telemetry = telemetry
        self.faults = faults
        os.makedirs(self.root, exist_ok=True)

    # -- small internals --------------------------------------------------

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(f"durable.{name}")

    def path_for(self, key) -> str:
        """The entry filename this *key* maps to (existing or not)."""
        return os.path.join(self.root, _key_digest(key) + ".plan")

    def _entry_paths(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [
            os.path.join(self.root, name)
            for name in names
            if name.endswith(".plan")
        ]

    def __len__(self) -> int:
        return len(self._entry_paths())

    def __contains__(self, key) -> bool:
        return os.path.exists(self.path_for(key))

    # -- write -------------------------------------------------------------

    def save(self, key, builder) -> str:
        """Serialize *builder* under *key* atomically; returns the path.

        Any failure (serialization, injected fault, I/O) is converted to
        :class:`DurableStoreError` after counting
        ``durable.store_write_failures`` — a failed write must never
        take down the solve that produced the factorization.
        """
        path = self.path_for(key)
        try:
            meta, arrays = _pack_builder(builder)
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            payload = buf.getvalue()
            header = {
                "format_version": FORMAT_VERSION,
                "key": _key_to_dict(key),
                "solver": meta,
                "payload_checksum": hashlib.blake2b(
                    payload, digest_size=16
                ).hexdigest(),
                "payload_nbytes": len(payload),
                "library": {"numpy": np.__version__},
            }
            header_bytes = _canonical_json(header).encode("utf-8")
            container = b"".join(
                (
                    _MAGIC,
                    bytes([FORMAT_VERSION]),
                    len(header_bytes).to_bytes(4, "little"),
                    header_bytes,
                    payload,
                )
            )
            if self.faults is not None:
                self.faults.fire("durable.store_write", key=key, path=path)
            atomic_write_bytes(path, container)
        except BaseException as exc:
            self._count("store_write_failures")
            if self.telemetry is not None:
                self.telemetry.event(
                    "durable", action="write_failed", reason=str(exc)
                )
            raise DurableStoreError(
                f"could not persist plan entry {os.path.basename(path)}: {exc}"
            ) from exc
        self._count("store_writes")
        return path

    # -- read --------------------------------------------------------------

    def _parse(self, raw: bytes, expect_key=None):
        """``(key, builder)`` from container bytes; raises on any defect."""
        if len(raw) < len(_MAGIC) + 5:
            raise DurableStoreError("entry is truncated (no container header)")
        if raw[: len(_MAGIC)] != _MAGIC:
            raise DurableStoreError("entry does not start with the store magic")
        if raw[len(_MAGIC)] != FORMAT_VERSION:
            raise DurableStoreError(
                f"stale store format {raw[len(_MAGIC)]} (expected "
                f"{FORMAT_VERSION})"
            )
        offset = len(_MAGIC) + 1
        header_len = int.from_bytes(raw[offset : offset + 4], "little")
        offset += 4
        header_bytes = raw[offset : offset + header_len]
        if len(header_bytes) != header_len:
            raise DurableStoreError("entry is truncated inside the header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DurableStoreError(f"unreadable entry header: {exc}") from exc
        if header.get("format_version") != FORMAT_VERSION:
            raise DurableStoreError(
                f"stale entry format_version {header.get('format_version')} "
                f"(expected {FORMAT_VERSION})"
            )
        payload = raw[offset + header_len :]
        if len(payload) != header.get("payload_nbytes"):
            raise DurableStoreError(
                f"payload is {len(payload)} bytes, header promised "
                f"{header.get('payload_nbytes')}"
            )
        checksum = hashlib.blake2b(payload, digest_size=16).hexdigest()
        if checksum != header.get("payload_checksum"):
            raise DurableStoreError("payload checksum mismatch (bit rot?)")
        try:
            key = _key_from_dict(header["key"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DurableStoreError(f"unreadable entry key: {exc}") from exc
        if expect_key is not None and key != expect_key:
            raise DurableStoreError(
                "entry key does not match its filename digest "
                "(hash collision or tampering)"
            )
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except Exception as exc:  # noqa: BLE001 - any defect is corruption
            raise DurableStoreError(f"unreadable entry payload: {exc}") from exc
        return key, _unpack_builder(key, header["solver"], arrays)

    def load(self, key):
        """The stored builder for *key*, or ``None`` on a clean miss.

        A present-but-unusable entry (truncated, corrupted, stale
        format) is quarantined — the file is removed, the
        ``durable.corrupt_evicted`` counter bumped — and
        :class:`DurableStoreError` raised; the plan cache treats that
        exactly like a miss and refactorizes.
        """
        path = self.path_for(key)
        if self.faults is not None:
            self.faults.fire("durable.store_read", key=key, path=path)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            self._count("store_misses")
            return None
        except OSError as exc:
            self._count("store_misses")
            raise DurableStoreError(
                f"could not read plan entry {os.path.basename(path)}: {exc}"
            ) from exc
        try:
            _, builder = self._parse(raw, expect_key=key)
        except DurableStoreError:
            self.evict_path(path)
            raise
        except Exception as exc:  # noqa: BLE001 - treat as corruption
            self.evict_path(path)
            raise DurableStoreError(
                f"unusable plan entry {os.path.basename(path)}: {exc}"
            ) from exc
        self._count("store_hits")
        return builder

    def evict_path(self, path: str) -> None:
        """Quarantine one unusable entry file (idempotent)."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        except OSError:
            pass
        self._count("corrupt_evicted")
        if self.telemetry is not None:
            self.telemetry.event(
                "durable", action="corrupt_evicted", path=os.path.basename(path)
            )

    def evict(self, key) -> None:
        """Drop the entry for *key* if present (no corruption counting)."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def entries(self) -> Iterator[Tuple[object, object]]:
        """Yield ``(key, builder)`` for every readable entry.

        Unusable entries are quarantined and skipped — a warm boot never
        fails because one file rotted.
        """
        for path in self._entry_paths():
            try:
                with open(path, "rb") as fh:
                    raw = fh.read()
                yield self._parse(raw)
            except DurableStoreError:
                self.evict_path(path)
            except OSError:
                continue

    def clear(self) -> None:
        """Remove every entry (the store directory itself survives)."""
        for path in self._entry_paths():
            try:
                os.unlink(path)
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanStore(root={self.root!r}, entries={len(self)})"


# ---------------------------------------------------------------------------
# Streaming right-hand-side sources
# ---------------------------------------------------------------------------


class StreamingRHS:
    """A column-streamable right-hand side of shape ``(n, total_cols)``.

    Sources promise only :meth:`read` over ``[col0, col1)`` windows — the
    full array never needs to exist in memory.  ``fingerprint()``
    identifies the data for campaign-resume validation.
    """

    @property
    def shape(self) -> Tuple[int, int]:
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        raise NotImplementedError

    def read(self, col0: int, col1: int) -> np.ndarray:
        """The ``(n, col1 - col0)`` window; may be a read-only view."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """A stable identity digest (shape, dtype, leading bytes)."""
        n, total = self.shape
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr((n, total)).encode())
        digest.update(np.dtype(self.dtype).str.encode())
        head = np.ascontiguousarray(self.read(0, min(total, max(1, 8))))
        digest.update(memoryview(head).cast("B")[:65536])
        return digest.hexdigest()


class ArrayRHS(StreamingRHS):
    """An in-memory array presented through the streaming interface."""

    def __init__(self, array: np.ndarray) -> None:
        array = np.asarray(array)
        if array.ndim != 2:
            raise ShapeError(
                f"streaming sources are 2-D (n, cols), got {array.shape}"
            )
        self._array = array

    @property
    def shape(self) -> Tuple[int, int]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def read(self, col0: int, col1: int) -> np.ndarray:
        return self._array[:, col0:col1]


class MemmapRHS(StreamingRHS):
    """A memory-mapped ``.npy`` file: windows are paged in on demand.

    The OS page cache, not the process heap, holds the working set, so
    the campaign's resident footprint is bounded by the window width
    regardless of the file size.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._mm = np.load(self.path, mmap_mode="r")
        if self._mm.ndim != 2:
            raise ShapeError(
                f"streaming sources are 2-D (n, cols), got {self._mm.shape}"
            )

    @property
    def shape(self) -> Tuple[int, int]:
        return self._mm.shape

    @property
    def dtype(self) -> np.dtype:
        return self._mm.dtype

    def read(self, col0: int, col1: int) -> np.ndarray:
        return self._mm[:, col0:col1]


class ChunkSpoolRHS(StreamingRHS):
    """A directory of sequential ``part-NNNNN.npy`` column chunks.

    For right-hand sides *generated* incrementally (a producer that
    cannot hold the whole batch either), :meth:`spool` writes each
    produced block to its own file plus a JSON manifest; reads memory-map
    the parts and stitch windows across part boundaries.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root) -> None:
        self.root = os.fspath(root)
        manifest_path = os.path.join(self.root, self.MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise DurableStoreError(
                f"unreadable spool manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format_version") != FORMAT_VERSION:
            raise DurableStoreError(
                f"stale spool manifest format "
                f"{manifest.get('format_version')} (expected {FORMAT_VERSION})"
            )
        self._n = int(manifest["n"])
        self._dtype = np.dtype(str(manifest["dtype"]))
        self._part_cols: List[int] = [int(c) for c in manifest["part_cols"]]
        self._offsets = np.concatenate(
            ([0], np.cumsum(self._part_cols))
        ).astype(np.int64)

    @classmethod
    def spool(cls, root, blocks) -> "ChunkSpoolRHS":
        """Write an iterable of ``(n, c_i)`` blocks into a new spool."""
        root = os.fspath(root)
        os.makedirs(root, exist_ok=True)
        part_cols: List[int] = []
        n: Optional[int] = None
        dtype: Optional[np.dtype] = None
        for index, block in enumerate(blocks):
            block = np.ascontiguousarray(block)
            if block.ndim != 2:
                raise ShapeError(
                    f"spooled blocks are 2-D (n, cols), got {block.shape}"
                )
            if n is None:
                n, dtype = block.shape[0], block.dtype
            elif block.shape[0] != n or block.dtype != dtype:
                raise ShapeError(
                    "spooled blocks must agree on n and dtype; got "
                    f"{block.shape[0]}/{block.dtype} after {n}/{dtype}"
                )
            np.save(os.path.join(root, f"part-{index:05d}.npy"), block)
            part_cols.append(block.shape[1])
        if n is None:
            raise ValueError("cannot spool an empty block iterable")
        manifest = {
            "format_version": FORMAT_VERSION,
            "n": int(n),
            "dtype": np.dtype(dtype).name,
            "part_cols": part_cols,
        }
        atomic_write_bytes(
            os.path.join(root, cls.MANIFEST),
            _canonical_json(manifest).encode("utf-8"),
        )
        return cls(root)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, int(self._offsets[-1]))

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def read(self, col0: int, col1: int) -> np.ndarray:
        out = np.empty((self._n, col1 - col0), dtype=self._dtype)
        cursor = col0
        while cursor < col1:
            part = int(np.searchsorted(self._offsets, cursor, side="right")) - 1
            start = int(self._offsets[part])
            stop = int(self._offsets[part + 1])
            take = min(col1, stop) - cursor
            mm = np.load(
                os.path.join(self.root, f"part-{part:05d}.npy"), mmap_mode="r"
            )
            out[:, cursor - col0 : cursor - col0 + take] = mm[
                :, cursor - start : cursor - start + take
            ]
            cursor += take
        return out


# ---------------------------------------------------------------------------
# Campaign checkpointing
# ---------------------------------------------------------------------------


def _merge_ranges(ranges: Sequence[Sequence[int]]) -> List[List[int]]:
    """Sorted, coalesced ``[c0, c1)`` ranges."""
    merged: List[List[int]] = []
    for c0, c1 in sorted((int(a), int(b)) for a, b in ranges):
        if merged and c0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], c1)
        else:
            merged.append([c0, c1])
    return merged


class CampaignState:
    """The JSON checkpoint of one out-of-core campaign.

    Records the campaign identity (key + source fingerprint + pinned
    chunk geometry) and the completed column ranges; every update is an
    atomic file replace, so the checkpoint on disk is always a
    consistent prefix of the campaign's true progress.  A chunk whose
    data write landed but whose checkpoint update did not is simply
    re-solved on resume — chunks are independent and deterministic, so
    the rewrite is byte-identical and resume stays bitwise exact.
    """

    def __init__(
        self,
        path,
        campaign_id: str,
        n: int,
        total_cols: int,
        chunk_cols: int,
        dtype: str,
        completed: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.campaign_id = str(campaign_id)
        self.n = int(n)
        self.total_cols = int(total_cols)
        self.chunk_cols = int(chunk_cols)
        self.dtype = str(dtype)
        self.completed: List[List[int]] = _merge_ranges(completed or [])

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "campaign_id": self.campaign_id,
            "n": self.n,
            "total_cols": self.total_cols,
            "chunk_cols": self.chunk_cols,
            "dtype": self.dtype,
            "completed": self.completed,
        }

    def save(self) -> None:
        atomic_write_bytes(
            self.path, _canonical_json(self.to_dict()).encode("utf-8")
        )

    @classmethod
    def load(cls, path) -> "CampaignState":
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DurableStoreError(
                f"unreadable campaign checkpoint {path}: {exc}"
            ) from exc
        if data.get("format_version") != FORMAT_VERSION:
            raise DurableStoreError(
                f"stale campaign checkpoint format "
                f"{data.get('format_version')} (expected {FORMAT_VERSION})"
            )
        try:
            return cls(
                path,
                campaign_id=data["campaign_id"],
                n=data["n"],
                total_cols=data["total_cols"],
                chunk_cols=data["chunk_cols"],
                dtype=data["dtype"],
                completed=data.get("completed", []),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DurableStoreError(
                f"malformed campaign checkpoint {path}: {exc}"
            ) from exc

    # -- progress ----------------------------------------------------------

    def chunks(self) -> Iterator[Tuple[int, int]]:
        """Every ``[c0, c1)`` chunk of the pinned geometry, in order."""
        for c0 in range(0, self.total_cols, self.chunk_cols):
            yield c0, min(c0 + self.chunk_cols, self.total_cols)

    def is_done(self, c0: int, c1: int) -> bool:
        return any(a <= c0 and c1 <= b for a, b in self.completed)

    def mark_done(self, c0: int, c1: int) -> None:
        self.completed = _merge_ranges(self.completed + [[c0, c1]])

    @property
    def done_cols(self) -> int:
        return sum(c1 - c0 for c0, c1 in self.completed)

    @property
    def finished(self) -> bool:
        return self.done_cols >= self.total_cols

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignState(id={self.campaign_id[:8]}, "
            f"{self.done_cols}/{self.total_cols} cols, "
            f"chunk={self.chunk_cols})"
        )


def _campaign_id(key, source: StreamingRHS, chunk_cols: int) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_canonical_json(_key_to_dict(key)).encode())
    digest.update(source.fingerprint().encode())
    digest.update(str(int(chunk_cols)).encode())
    return digest.hexdigest()


def derive_chunk_cols(
    n: int, itemsize: int, memory_budget: int, copies: int = _WINDOW_COPIES
) -> int:
    """Window width (columns) that keeps *copies* windows under *budget*."""
    if memory_budget < 1:
        raise ValueError(f"memory_budget must be >= 1 byte, got {memory_budget}")
    per_col = max(1, int(n) * int(itemsize) * int(copies))
    return max(1, int(memory_budget) // per_col)


def run_campaign(
    engine,
    spec,
    source: StreamingRHS,
    out_path,
    *,
    version: int = 2,
    dtype=np.float64,
    backend: str = "vectorized",
    chunk_cols: Optional[int] = None,
    memory_budget: Optional[int] = None,
    state_path=None,
    resume: bool = True,
) -> np.ndarray:
    """Stream *source* through *engine* into a memory-mapped ``.npy`` result.

    The source is solved in ``chunk_cols``-column windows (derived from
    *memory_budget* when given: :func:`derive_chunk_cols` budgets for the
    read copy, the engine's work copy, the shm lease and the result);
    each solved window is written to *out_path* and its range recorded in
    the :class:`CampaignState` at *state_path*.  Killed mid-campaign, a
    re-invocation with the same arguments resumes after the last
    checkpointed chunk and produces a result bitwise identical to an
    uninterrupted run — the chunk geometry is pinned in the checkpoint
    and every chunk is solved independently.

    Returns the ``(n, total_cols)`` result as a read-write memmap.
    """
    n, total = source.shape
    if total < 1:
        raise ValueError("cannot run a campaign over an empty source")
    work_dtype = np.dtype(dtype)
    if chunk_cols is None:
        if memory_budget is not None:
            chunk_cols = derive_chunk_cols(n, work_dtype.itemsize, memory_budget)
        else:
            chunk_cols = _DEFAULT_CHUNK_COLS
    chunk_cols = max(1, min(int(chunk_cols), total))

    from repro.runtime.plan_cache import PlanKey

    key = PlanKey.from_spec(
        spec, version=version, dtype=work_dtype, backend=backend
    )
    campaign_id = _campaign_id(key, source, chunk_cols)

    out_path = os.fspath(out_path)
    state_path = (
        os.fspath(state_path)
        if state_path is not None
        else out_path + ".campaign.json"
    )

    telemetry = getattr(engine, "telemetry", None)
    faults = getattr(engine, "_faults", None)

    state: Optional[CampaignState] = None
    if resume and os.path.exists(state_path):
        state = CampaignState.load(state_path)
        if state.campaign_id != campaign_id:
            raise DurableStoreError(
                "campaign checkpoint belongs to a different campaign "
                f"(id {state.campaign_id[:8]}, expected {campaign_id[:8]}); "
                "pass resume=False or remove the checkpoint to start over"
            )
        if not os.path.exists(out_path):
            # The data a checkpoint vouches for is gone; restart cleanly.
            state = None
            if telemetry is not None:
                telemetry.event("campaign", action="restart_missing_output")
    if state is not None:
        chunk_cols = state.chunk_cols  # the pinned geometry wins
        if telemetry is not None:
            telemetry.incr("campaign.resumes")
    else:
        state = CampaignState(
            state_path,
            campaign_id=campaign_id,
            n=n,
            total_cols=total,
            chunk_cols=chunk_cols,
            dtype=work_dtype.name,
        )
        state.save()

    if os.path.exists(out_path) and state.done_cols:
        out = np.lib.format.open_memmap(out_path, mode="r+")
        if out.shape != (n, total) or out.dtype != work_dtype:
            raise DurableStoreError(
                f"existing campaign output {out_path} has shape {out.shape} "
                f"dtype {out.dtype}; the campaign needs ({n}, {total}) "
                f"{work_dtype}"
            )
    else:
        out = np.lib.format.open_memmap(
            out_path, mode="w+", dtype=work_dtype, shape=(n, total)
        )

    for c0, c1 in state.chunks():
        if state.is_done(c0, c1):
            if telemetry is not None:
                telemetry.incr("campaign.chunks_skipped")
            continue
        if faults is not None:
            faults.fire("campaign.chunk", cols=(c0, c1))
        window = np.array(
            source.read(c0, c1), dtype=work_dtype, copy=True, order="C"
        )
        if telemetry is not None:
            telemetry.observe("campaign.window_bytes", window.nbytes)
        solved = engine.map_batches(
            spec, [window], version=version, dtype=work_dtype, backend=backend
        )[0]
        out[:, c0:c1] = solved
        out.flush()
        state.mark_done(c0, c1)
        state.save()
        if telemetry is not None:
            telemetry.incr("campaign.chunks_completed")
            telemetry.observe("campaign.completed_cols", c1 - c0)
    return out
