"""Request coalescing — many small solves become one paper-scale batch.

The paper's central measurement is that the batched spline solve is
bandwidth-bound and only reaches the roofline when the batch is large
(§V: matrix ~1000, batch 1e5).  A caller holding a single right-hand side
gets none of that; a thousand callers each holding one right-hand side
*could*, if something stacked their columns.  :class:`RequestCoalescer`
is that something: it buffers :class:`SolveRequest` objects against one
spline-space key and cuts them into :class:`CoalescedBatch` units when

* the buffered column count reaches ``max_batch`` (a full batch), or
* the oldest buffered request has waited ``max_linger`` seconds (latency
  bound — a lone request is never stranded).

Batches are cut **round-robin across submitter keys** (one key per
tenant; anonymous requests share one key): each cut takes one buffered
request from each active tenant in turn, so a hot tenant's burst can no
longer fill whole batches end to end while another tenant's lone request
waits out ``max_linger`` behind it.  With a single submitter key the cut
order reduces exactly to the old FIFO behavior.

Assembly gathers the request columns into one contiguous ``(n, B)`` block
(the exact layout the §II-C vectorized kernels want); scatter slices the
solved block back per request and resolves each request's future.  Because
every batched kernel in :mod:`repro.kbatched` treats columns
independently, a coalesced solve is bitwise identical to solving each
request alone.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Deque, List, Optional

import numpy as np

from concurrent.futures import Future

from repro.exceptions import ShapeError

__all__ = ["SolveRequest", "CoalescedBatch", "RequestCoalescer"]


class SolveRequest:
    """One caller's right-hand side awaiting a coalesced solve.

    ``rhs`` is 1-D ``(n,)`` (one column) or 2-D ``(n, b)`` (a small block
    that stays contiguous inside the coalesced batch).  ``future``
    resolves to the coefficients with the same shape as ``rhs``.
    ``tenant`` (any hashable; ``None`` — anonymous) is the submitter key
    the coalescer round-robins across and the label per-tenant telemetry
    attributes to; ``priority`` is carried for the admission layer
    (:mod:`repro.service.admission`) — the coalescer itself is
    priority-blind, ordering is decided before requests reach it.
    """

    __slots__ = (
        "rhs",
        "cols",
        "future",
        "enqueued_at",
        "deadline",
        "tenant",
        "priority",
        "seq",
    )

    _seq_counter = itertools.count()

    def __init__(
        self,
        rhs: np.ndarray,
        deadline: Optional[float] = None,
        tenant=None,
        priority: Optional[str] = None,
    ) -> None:
        rhs = np.asarray(rhs)
        if rhs.ndim not in (1, 2):
            raise ShapeError(
                f"expected a 1-D or 2-D right-hand side, got shape {rhs.shape}"
            )
        self.rhs = rhs
        self.cols = 1 if rhs.ndim == 1 else int(rhs.shape[1])
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        self.deadline = deadline
        self.tenant = tenant
        self.priority = priority
        self.seq = next(SolveRequest._seq_counter)

    @property
    def n(self) -> int:
        return int(self.rhs.shape[0])

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.perf_counter()) >= self.deadline


class CoalescedBatch:
    """A group of requests solved as one ``(n, B)`` block."""

    __slots__ = ("requests",)

    def __init__(self, requests: List[SolveRequest]) -> None:
        if not requests:
            raise ValueError("a coalesced batch needs at least one request")
        self.requests = requests

    @property
    def cols(self) -> int:
        return sum(r.cols for r in self.requests)

    @property
    def n(self) -> int:
        return self.requests[0].n

    def assemble(self, dtype, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather all request columns into one contiguous ``(n, B)`` block.

        With *out* (e.g. a shared-memory view) the gather writes there
        instead of allocating; its shape and dtype must match exactly.
        """
        if out is not None:
            if out.shape != (self.n, self.cols) or out.dtype != np.dtype(dtype):
                raise ShapeError(
                    f"assemble target {out.shape}/{out.dtype} does not match "
                    f"({self.n}, {self.cols})/{np.dtype(dtype)}"
                )
            block = out
        else:
            block = np.empty((self.n, self.cols), dtype=dtype, order="C")
        offset = 0
        for req in self.requests:
            cols = req.rhs if req.rhs.ndim == 2 else req.rhs[:, None]
            block[:, offset : offset + req.cols] = cols
            offset += req.cols
        return block

    def fill(self, block: np.ndarray, col0: int, col1: int) -> None:
        """Re-gather columns ``[col0, col1)`` of *block* from the requests.

        The recovery path's restore primitive: a worker that died mid
        solve leaves its shard of the (shared-memory) block partially
        overwritten, so before the shard is requeued its column range is
        refilled from the original, untouched request data — the exact
        values :meth:`assemble` wrote there, giving the requeued solve
        bitwise-identical inputs.
        """
        offset = 0
        for req in self.requests:
            lo, hi = offset, offset + req.cols
            offset = hi
            if hi <= col0 or lo >= col1:
                continue
            cols = req.rhs if req.rhs.ndim == 2 else req.rhs[:, None]
            s0, s1 = max(lo, col0), min(hi, col1)
            block[:, s0:s1] = cols[:, s0 - lo : s1 - lo]

    def scatter(self, block: np.ndarray) -> None:
        """Slice the solved block back per request and resolve the futures.

        Always copies: *block* may be a recycled buffer (a pooled
        shared-memory segment under the process-sharded executor), so a
        request must never receive a view into it.
        """
        offset = 0
        for req in self.requests:
            out = np.array(block[:, offset : offset + req.cols], order="C", copy=True)
            offset += req.cols
            if not req.future.set_running_or_notify_cancel():
                continue  # caller cancelled while we were solving
            req.future.set_result(out[:, 0] if req.rhs.ndim == 1 else out)

    def fail(self, exc: BaseException) -> None:
        """Propagate *exc* to every request still waiting."""
        for req in self.requests:
            if req.future.set_running_or_notify_cancel():
                req.future.set_exception(exc)


class RequestCoalescer:
    """Thread-safe buffer turning small requests into full batches.

    Parameters
    ----------
    n:
        Right-hand-side length every request must match.
    max_batch:
        Column count that triggers a flush.  A single request wider than
        this is passed through as its own (oversized) batch rather than
        split — the batched kernels handle any width.
    max_linger:
        Seconds the oldest request may wait before :meth:`poll` cuts a
        partial batch.

    Buffered requests are keyed by ``request.tenant``; cuts round-robin
    across the active keys (one request per key per turn) so a batch is
    shared fairly among concurrent tenants.  Within one key the order is
    FIFO, and with a single key (the anonymous default) the whole
    coalescer behaves exactly like a FIFO.
    """

    def __init__(self, n: int, max_batch: int, max_linger: float) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        self.n = int(n)
        self.max_batch = int(max_batch)
        self.max_linger = float(max_linger)
        self._lock = threading.Lock()
        # One FIFO deque per submitter key plus a round-robin ring of the
        # active keys.  add() appends right, _cut_locked pops left from
        # each key in turn: a burst drain stays O(B), and no key's
        # backlog can monopolize a batch.
        self._queues: "OrderedDict[object, Deque[SolveRequest]]" = OrderedDict()
        self._ring: Deque[object] = deque()
        self._pending_cols = 0

    @property
    def pending_cols(self) -> int:
        with self._lock:
            return self._pending_cols

    def _cut_locked(self) -> CoalescedBatch:
        """Pop up to ``max_batch`` columns, one request per key per turn."""
        taken: List[SolveRequest] = []
        cols = 0
        while self._ring:
            key = self._ring[0]
            queue = self._queues[key]
            req = queue[0]
            if taken and cols + req.cols > self.max_batch:
                break
            taken.append(queue.popleft())
            cols += req.cols
            if queue:
                self._ring.rotate(-1)  # this key goes to the back of the ring
            else:
                self._ring.popleft()
                del self._queues[key]
            if cols >= self.max_batch:
                break
        self._pending_cols -= cols
        return CoalescedBatch(taken)

    def add(self, request: SolveRequest) -> List[CoalescedBatch]:
        """Buffer *request*; return every full batch this made cuttable.

        A single wide request can push ``pending_cols`` past several
        multiples of ``max_batch`` at once, so the cut loops until the
        buffer is below threshold again — cutting just one batch would
        leave *full* batches stranded behind the linger timer.
        """
        if request.n != self.n:
            raise ShapeError(
                f"right-hand side leading extent {request.n} does not match "
                f"the coalescer's {self.n}"
            )
        batches: List[CoalescedBatch] = []
        with self._lock:
            queue = self._queues.get(request.tenant)
            if queue is None:
                queue = self._queues[request.tenant] = deque()
                self._ring.append(request.tenant)
            queue.append(request)
            self._pending_cols += request.cols
            while self._pending_cols >= self.max_batch:
                batches.append(self._cut_locked())
        return batches

    def _oldest_locked(self) -> Optional[float]:
        """Enqueue time of the oldest buffered request (heads only)."""
        if not self._queues:
            return None
        return min(q[0].enqueued_at for q in self._queues.values())

    def poll(self, now: Optional[float] = None) -> Optional[CoalescedBatch]:
        """Cut a partial batch when the oldest request has lingered too long."""
        now = now if now is not None else time.perf_counter()
        with self._lock:
            oldest = self._oldest_locked()
            if oldest is None:
                return None
            if now - oldest < self.max_linger:
                return None
            return self._cut_locked()

    def drain(self) -> Optional[CoalescedBatch]:
        """Flush everything buffered, regardless of age or width."""
        with self._lock:
            if not self._queues:
                return None
            requests = [req for q in self._queues.values() for req in q]
            requests.sort(key=lambda r: r.seq)  # arrival order across keys
            self._queues.clear()
            self._ring.clear()
            self._pending_cols = 0
            return CoalescedBatch(requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestCoalescer(n={self.n}, pending_cols={self.pending_cols}, "
            f"max_batch={self.max_batch}, max_linger={self.max_linger})"
        )
