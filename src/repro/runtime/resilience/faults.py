"""Deterministic fault injection at named hook points in the runtime.

Every recovery path in the engine exists because some failure happens in
production; none of them is trustworthy unless that failure can be made
to happen *on demand, reproducibly, in CI*.  A :class:`FaultPlan` is a
seeded list of :class:`FaultSpec` triggers bound to named hook points
(:data:`HOOK_SITES`) that the runtime calls at its decision points:

====================== ==================================================
 site                   where it fires
====================== ==================================================
 plan_cache.factorize   leader path of a cold :class:`PlanCache` miss,
                        before the factorization runs
 shm.acquire            :meth:`SharedBlockPool.acquire`, before a pooled
                        segment is handed out
 engine.dispatch        :meth:`SolveEngine._dispatch`, before a batch is
                        submitted to the thread pool
 engine.rhs             after a coalesced batch is assembled (the hook
                        receives the block — ``corrupt`` poisons it)
 engine.batch_solve     before a local (thread-path) batched solve
 engine.verify          inside the verify-on-solve sample, before the
                        backward-error check
 sharded.dispatch       parent side, before a shard is issued to a
                        worker process
 sharded.worker_solve   worker side, before the shard solve (``crash``
                        and ``hang`` act on the worker process itself)
 durable.store_write    :meth:`PlanStore.save`, before a plan entry is
                        committed to disk
 durable.store_read     :meth:`PlanStore.load`, before a plan entry is
                        read and parsed
 campaign.chunk         :func:`~repro.runtime.durable.run_campaign`,
                        before each streamed chunk is solved (``crash``
                        kills the campaign mid-flight)
 cluster.partition      cluster worker heartbeat thread, before each
                        heartbeat send (``hang`` simulates a network
                        partition: the lease lapses while data acks
                        still flow)
 cluster.node_kill      cluster worker, before each shard solve
                        (``crash`` kills the whole node mid-flight,
                        ``slow`` delays the ack past a lease)
 cluster.shard_slow     cluster worker, after the node-kill hook and
                        before the shard solve — a straggler dial for
                        the speculative-execution path (``slow`` holds
                        one copy while a speculative duplicate wins)
 cluster.coordinator_kill  HA coordinator host, before each SUBMIT is
                        accepted (``crash`` SIGKILL-equivalently downs
                        the primary mid-campaign; gate by
                        ``worker=ROLE_INDEX`` — primary 0, standby 1)
====================== ==================================================

Fault kinds: ``raise`` (a chosen exception flavor), ``crash``
(``os._exit`` — meaningful at ``sharded.worker_solve`` and
``campaign.chunk``), ``hang``
and ``slow`` (sleep for ``delay`` seconds), ``corrupt`` (write NaN/Inf
into the hook's array).  Triggering is deterministic: each spec counts
its own matching visits, skips the first ``after``, fires at most
``times`` times, and draws ``probability`` from a stream seeded by
``(seed, spec index)``.

A plan is off-by-default and free when absent: every hook is guarded by
``if faults is not None``, so the fault-free hot path pays one pointer
comparison.  Activate a plan with ``EngineConfig(faults=...)`` or by
setting the ``REPRO_FAULT_PLAN`` environment variable to the plan's JSON
(see :meth:`FaultPlan.to_json`).  Worker processes receive a private
copy of the plan, so worker-side sites count visits per process — a
respawned worker starts a fresh count, which the chaos tests account
for when choosing ``after``.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = ["FaultSpec", "FaultPlan", "FaultInjected", "HOOK_SITES", "ENV_VAR"]

#: environment variable holding a JSON fault plan (see FaultPlan.to_json)
ENV_VAR = "REPRO_FAULT_PLAN"

#: every hook point the runtime calls, with what firing there exercises
HOOK_SITES = {
    "plan_cache.factorize": "factorization failure on a cold plan miss",
    "shm.acquire": "shared-memory segment allocation failure",
    "engine.dispatch": "thread-pool dispatch failure (serial-ladder rung)",
    "engine.rhs": "assembled right-hand-side block corruption (NaN/Inf)",
    "engine.batch_solve": "local batched solve failure or slowdown",
    "engine.verify": "forced verification failure",
    "sharded.dispatch": "parent-side shard issue failure",
    "sharded.worker_solve": "worker crash / hang / slow / raise mid-shard",
    "durable.store_write": "plan-store entry commit failure",
    "durable.store_read": "plan-store entry read/parse failure",
    "campaign.chunk": "out-of-core campaign chunk failure or kill",
    "cluster.partition": "cluster worker heartbeat send (hang mutes the "
    "heartbeats so the lease lapses while data acks still flow)",
    "cluster.node_kill": "cluster worker shard solve (crash kills the "
    "node, slow delays the ack past a lease, raise fails the shard)",
    "cluster.shard_slow": "cluster worker straggler dial (slow holds one "
    "shard copy so a speculative duplicate can win the race)",
    "cluster.coordinator_kill": "HA coordinator host on shard submit "
    "(crash downs the primary mid-campaign; worker= selects the role: "
    "primary 0, standby 1)",
}

_KINDS = ("raise", "crash", "hang", "slow", "corrupt")

#: exception flavors a kind="raise" spec can pick; resolved lazily so this
#: module never imports the modules it injects faults into
_ERROR_FLAVORS = (
    "fault",
    "runtime",
    "memory",
    "worker",
    "shm",
    "verification",
    "factorization",
    "durable",
)


class FaultInjected(ReproError, RuntimeError):
    """The default exception raised by a ``kind="raise"`` fault."""


def _exception_for(flavor: str, message: str) -> BaseException:
    """Instantiate the exception class a ``raise`` spec asked for."""
    if flavor == "runtime":
        return RuntimeError(message)
    if flavor == "memory":
        return MemoryError(message)
    if flavor == "worker":
        from repro.runtime.sharded import WorkerError

        return WorkerError(message)
    if flavor == "shm":
        from repro.runtime.shm import ShmError

        return ShmError(message)
    if flavor == "verification":
        from repro.exceptions import VerificationError

        return VerificationError(message)
    if flavor == "factorization":
        from repro.exceptions import SingularMatrixError

        return SingularMatrixError(message)
    if flavor == "durable":
        from repro.runtime.durable import DurableStoreError

        return DurableStoreError(message)
    return FaultInjected(message)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger: *where*, *what*, and *when* to fire.

    Attributes
    ----------
    site:
        Hook point name; must be one of :data:`HOOK_SITES`.
    kind:
        ``raise`` | ``crash`` | ``hang`` | ``slow`` | ``corrupt``.
    worker:
        Only match hook visits from this worker id (``sharded.*`` sites
        pass one); ``None`` matches every visitor.
    after:
        Matching visits skipped before the spec becomes eligible.
    times:
        Maximum firings (``None`` — unlimited).
    probability:
        Chance an eligible visit actually fires, drawn from the plan's
        seeded per-spec stream (1.0 — always).
    delay:
        Seconds slept by ``hang``/``slow`` faults.
    error:
        Exception flavor for ``raise``: ``fault`` | ``runtime`` |
        ``memory`` | ``worker`` | ``shm`` | ``verification`` |
        ``factorization``.
    message:
        Text carried by the raised exception.
    """

    site: str
    kind: str = "raise"
    worker: Optional[int] = None
    after: int = 0
    times: Optional[int] = 1
    probability: float = 1.0
    delay: float = 0.05
    error: str = "fault"
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in HOOK_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(HOOK_SITES)}"
            )
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.error not in _ERROR_FLAVORS:
            raise ValueError(
                f"unknown error flavor {self.error!r}; expected one of "
                f"{_ERROR_FLAVORS}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


class FaultPlan:
    """A seeded set of :class:`FaultSpec` triggers, serializable to JSON.

    The plan is thread-safe (engine pool threads share it) and cheap to
    consult: a hook visit touches only the specs bound to its site.
    Serialization (:meth:`to_json` / :meth:`from_json`) ships the plan
    into worker processes and through the :data:`ENV_VAR` environment
    variable; a deserialized copy starts with fresh visit counters.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        )
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._by_site: Dict[str, list] = {}
        for index, spec in enumerate(self.specs):
            self._by_site.setdefault(spec.site, []).append(index)
        self._visits: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._site_visits: Dict[str, int] = {}
        self._streams: Dict[int, random.Random] = {
            index: random.Random(self.seed * 1_000_003 + index)
            for index, spec in enumerate(self.specs)
            if spec.probability < 1.0
        }

    # -- construction and serialization ----------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            specs=[FaultSpec(**spec) for spec in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan in :data:`ENV_VAR`, or ``None`` when unset/empty."""
        text = os.environ.get(ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    # -- introspection ----------------------------------------------------

    def visits(self, site: str) -> int:
        """How many times the hook *site* has been visited."""
        with self._lock:
            return self._site_visits.get(site, 0)

    def fired(self, site: Optional[str] = None) -> int:
        """Total firings, optionally restricted to one *site*."""
        with self._lock:
            return sum(
                count
                for index, count in self._fired.items()
                if site is None or self.specs[index].site == site
            )

    # -- the hook ---------------------------------------------------------

    def fire(self, site: str, array=None, **ctx) -> None:
        """Visit hook *site*; execute every spec due to fire there.

        Called by the runtime at each hook point.  ``array`` is the
        mutable ndarray a ``corrupt`` spec poisons; other context (e.g.
        ``worker=``) feeds spec matching.  Raising specs raise from
        here; ``crash`` never returns.
        """
        indices = self._by_site.get(site)
        if not indices:
            with self._lock:
                self._site_visits[site] = self._site_visits.get(site, 0) + 1
            return
        due = []
        with self._lock:
            self._site_visits[site] = self._site_visits.get(site, 0) + 1
            for index in indices:
                spec = self.specs[index]
                if spec.worker is not None and ctx.get("worker") != spec.worker:
                    continue
                visit = self._visits.get(index, 0)
                self._visits[index] = visit + 1
                if visit < spec.after:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                if spec.probability < 1.0:
                    if self._streams[index].random() >= spec.probability:
                        continue
                self._fired[index] = fired + 1
                due.append(spec)
        for spec in due:
            self._execute(spec, site, array)

    def _execute(self, spec: FaultSpec, site: str, array) -> None:
        if spec.kind == "corrupt":
            if array is not None and array.size:
                # Deterministic poison: NaN in the first entry, Inf in
                # the last — enough to trip both the NaN quarantine and
                # the backward-error check on any sampled column set.
                flat = array.reshape(-1)
                flat[0] = float("nan")
                flat[-1] = float("inf")
            return
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.delay)
            return
        if spec.kind == "crash":
            os._exit(23)
        message = spec.message or (
            f"injected {spec.kind} fault at {site}"
            + (f" (worker {spec.worker})" if spec.worker is not None else "")
        )
        raise _exception_for(spec.error, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(specs={len(self.specs)}, seed={self.seed})"
