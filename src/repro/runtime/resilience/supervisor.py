"""Worker-pool supervision: health checks, backoff respawn, shard requeue.

PR 4's :class:`~repro.runtime.sharded.ShardedExecutor` could *detect* a
dead worker; this module makes the pool heal.  A :class:`WorkerSupervisor`
runs one daemon thread next to the executor and closes the loop:

* **health checks** — every ``poll_interval`` seconds each worker's
  liveness is checked; with ``hang_timeout`` set, a worker whose oldest
  in-flight shard exceeds the timeout is declared hung and terminated
  first (so a requeued shard can never race a still-writing worker).
* **requeue** — a dead worker's in-flight shards are *restored* (the
  parent re-fills their column range from the original request data —
  an interrupted in-place solve leaves partial garbage in shared
  memory) and reissued to surviving workers.  Shard boundaries and the
  batched kernels are deterministic and batch-width invariant, so the
  requeued result is bitwise identical to the undisturbed run.
* **respawn** — the dead rank is relaunched under exponential backoff
  with deterministic seeded jitter, bounded by a pool-wide restart
  budget.  When the budget is spent the supervisor marks the executor
  *exhausted*; the engine reads that flag and steps down its
  degradation ladder (processes → threads).

Everything is counted (``supervisor.worker_deaths`` / ``.respawns`` /
``.hangs`` / ``.requeued_shards`` / ``.budget_exhausted``) and every
death/respawn lands in the telemetry ``supervisor`` event ring.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["SupervisorPolicy", "WorkerSupervisor"]

_LOG = logging.getLogger("repro.runtime.resilience")


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables of one :class:`WorkerSupervisor`.

    Attributes
    ----------
    poll_interval:
        Seconds between health sweeps.
    restart_budget:
        Pool-wide respawns allowed before the supervisor declares the
        executor exhausted (0 — never respawn).
    backoff_base, backoff_factor, backoff_max:
        Respawn delay for a rank's *k*-th restart is
        ``min(backoff_base * backoff_factor**k, backoff_max)`` seconds,
        before jitter.
    jitter:
        Fraction of the backoff delay randomized (0.25 — up to ±25%),
        drawn from a stream seeded by ``seed`` so chaos runs replay.
    hang_timeout:
        Seconds an in-flight shard may age before its worker is declared
        hung and terminated; ``None`` disables hang detection.  Must
        exceed the worst honest shard solve time.
    max_task_retries:
        Requeues one shard may consume before it fails permanently.
    seed:
        Seed of the jitter stream.
    """

    poll_interval: float = 0.05
    restart_budget: int = 8
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    hang_timeout: Optional[float] = None
    max_task_retries: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                "backoff_base must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base}/{self.backoff_factor}"
            )
        if self.backoff_max < self.backoff_base:
            raise ValueError(
                f"backoff_max must be >= backoff_base, got {self.backoff_max}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ValueError(
                f"hang_timeout must be > 0 or None, got {self.hang_timeout}"
            )
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """The (jittered) delay before a rank's *attempt*-th respawn."""
        delay = min(
            self.backoff_base * self.backoff_factor ** max(0, attempt),
            self.backoff_max,
        )
        if self.jitter > 0 and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class WorkerSupervisor:
    """Health-check / requeue / respawn loop over a sharded executor.

    The executor exposes a small supervision API (``is_marked_live``,
    ``proc_alive``, ``mark_down``, ``terminate_worker``,
    ``oldest_pending_age``, ``requeue_rank``, ``respawn``); the
    supervisor owns the policy decisions and the restart budget.
    """

    def __init__(self, executor, policy: SupervisorPolicy, telemetry) -> None:
        self.executor = executor
        self.policy = policy
        self.telemetry = telemetry
        self._rng = random.Random(policy.seed)
        self._restarts_left = policy.restart_budget
        self._respawn_attempts = {}
        self._exhausted = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-supervisor", daemon=True
        )

    @property
    def exhausted(self) -> bool:
        """True once the restart budget is spent on an unrecoverable death."""
        return self._exhausted

    @property
    def restarts_left(self) -> int:
        return self._restarts_left

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    # -- the health loop --------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.policy.poll_interval):
            try:
                self._sweep()
            except Exception:  # pragma: no cover - never kill the monitor
                _LOG.exception("supervisor sweep failed")

    def _sweep(self) -> None:
        executor = self.executor
        if executor.closed:
            return
        if self.policy.hang_timeout is not None:
            now = time.monotonic()
            for rank in range(executor.num_workers):
                if not executor.is_marked_live(rank):
                    continue
                age = executor.oldest_pending_age(rank, now)
                if age is not None and age > self.policy.hang_timeout:
                    self.telemetry.incr("supervisor.hangs")
                    self.telemetry.event(
                        "supervisor", action="hang_kill", rank=rank, age=age
                    )
                    _LOG.warning(
                        "worker %d hung for %.2fs (> %.2fs); terminating",
                        rank, age, self.policy.hang_timeout,
                    )
                    # Kill first: the requeue below must never race a
                    # worker that is still writing into shared memory.
                    executor.terminate_worker(rank)
        for rank in range(executor.num_workers):
            if executor.is_marked_live(rank) and not executor.proc_alive(rank):
                self._handle_death(rank)

    def _handle_death(self, rank: int) -> None:
        executor = self.executor
        self.telemetry.incr("supervisor.worker_deaths")
        executor.mark_down(rank)
        will_respawn = self._restarts_left > 0 and not executor.closed
        self.telemetry.event(
            "supervisor",
            action="worker_death",
            rank=rank,
            respawn=will_respawn,
            restarts_left=self._restarts_left,
        )
        _LOG.warning(
            "worker %d died (%s); requeueing its in-flight shards",
            rank, "respawning" if will_respawn else "restart budget spent",
        )
        # Move what can move to survivors right now; shards that cannot
        # (no survivors) stay parked on the rank only if a respawn is
        # coming to pick them up, otherwise they fail fast.
        executor.requeue_rank(
            rank, self.policy.max_task_retries, allow_park=will_respawn
        )
        if not will_respawn:
            if self._restarts_left == 0 and not self._exhausted:
                self._exhausted = True
                self.telemetry.incr("supervisor.budget_exhausted")
                self.telemetry.event(
                    "supervisor", action="budget_exhausted", rank=rank
                )
                _LOG.error(
                    "worker restart budget spent; executor marked exhausted"
                )
            return
        self._restarts_left -= 1
        attempt = self._respawn_attempts.get(rank, 0)
        self._respawn_attempts[rank] = attempt + 1
        delay = self.policy.backoff_delay(attempt, self._rng)
        # Wait on the stop event so shutdown interrupts the backoff.
        if delay > 0 and self._stop.wait(timeout=delay):
            return
        if executor.closed:
            return
        if executor.respawn(rank):
            self.telemetry.incr("supervisor.respawns")
            self.telemetry.event(
                "supervisor",
                action="respawn",
                rank=rank,
                attempt=attempt + 1,
                backoff=delay,
            )
            _LOG.warning(
                "worker %d respawned (attempt %d, backoff %.3fs)",
                rank, attempt + 1, delay,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerSupervisor(restarts_left={self._restarts_left}, "
            f"exhausted={self._exhausted})"
        )
