"""Per-plan-key circuit breaker: fail known-failing plans fast.

A plan key that keeps failing — a spline space whose factorization
raises, a configuration whose solves never pass verification, a worker
fleet that cannot hold it — costs the engine a full solve-plus-retries
cycle on *every* request routed at it.  At campaign scale that turns one
bad configuration into a throughput collapse for everyone sharing the
pool.  :class:`PlanBreaker` is the standard three-state remedy:

* **closed** — requests flow; consecutive failures are counted and a
  success resets the count.
* **open** — after ``failures`` consecutive failures the key trips: for
  ``reset_timeout`` seconds every request short-circuits *before* any
  factorization or solve work, failing fast with a replica of the last
  recorded failure (so callers still see the ``VerificationError`` /
  ``WorkerError`` type they would have gotten the slow way, marked with
  ``short_circuited = True``).
* **half-open** — once the timeout expires, up to ``probes`` trial
  requests are let through; a success re-closes the key, a failure
  re-opens it and restarts the timer.

Transitions are counted (``circuit.opened`` / ``circuit.reopened`` /
``circuit.half_open`` / ``circuit.closed`` / ``circuit.short_circuits``)
and recorded in the telemetry ``circuit`` event ring, so a campaign
snapshot shows the full breaker history.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import ReproError

__all__ = ["PlanBreaker", "CircuitOpenError", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(ReproError, RuntimeError):
    """A request was short-circuited by an open per-plan circuit.

    Raised when the breaker has no recorded failure to replicate (or the
    recorded exception type cannot be rebuilt from a message alone).
    Replicated failures of other types carry ``short_circuited = True``
    instead.
    """

    short_circuited = True


class _KeyState:
    __slots__ = ("state", "failures", "opened_at", "probes", "last_error")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probes = 0
        self.last_error: Optional[BaseException] = None


class PlanBreaker:
    """Thread-safe circuit breaker keyed by plan key.

    Parameters
    ----------
    failures:
        Consecutive failures that trip a key from closed to open.
    reset_timeout:
        Seconds an open key rejects before allowing half-open probes.
    probes:
        Concurrent trial requests allowed in half-open.
    telemetry:
        Optional :class:`~repro.runtime.telemetry.Telemetry` receiving
        transition counters and the ``circuit`` event ring.
    clock:
        Injectable monotonic time source (tests drive state expiry
        without sleeping).
    """

    def __init__(
        self,
        failures: int = 5,
        reset_timeout: float = 30.0,
        probes: int = 1,
        telemetry=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.failures = int(failures)
        self.reset_timeout = float(reset_timeout)
        self.probes = int(probes)
        self.telemetry = telemetry
        self.clock = clock
        self._lock = threading.Lock()
        self._keys: Dict[object, _KeyState] = {}

    # -- telemetry plumbing ----------------------------------------------

    def _note(self, counter: str, key, frm: str, to: str) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(f"circuit.{counter}")
            self.telemetry.event("circuit", key=str(key), frm=frm, to=to)

    # -- state machine ----------------------------------------------------

    def _state_locked(self, key) -> _KeyState:
        st = self._keys.get(key)
        if st is None:
            st = self._keys[key] = _KeyState()
        return st

    def allow(self, key) -> bool:
        """May a request for *key* proceed?  Consumes a half-open probe.

        Open keys whose timeout expired transition to half-open here.
        ``False`` means the caller must short-circuit (see
        :meth:`open_error`).
        """
        with self._lock:
            st = self._keys.get(key)
            if st is None or st.state == CLOSED:
                return True
            if st.state == OPEN:
                if self.clock() - st.opened_at < self.reset_timeout:
                    if self.telemetry is not None:
                        self.telemetry.incr("circuit.short_circuits")
                    return False
                st.state = HALF_OPEN
                st.probes = 0
                self._note("half_open", key, OPEN, HALF_OPEN)
            if st.probes < self.probes:
                st.probes += 1
                return True
            if self.telemetry is not None:
                self.telemetry.incr("circuit.short_circuits")
            return False

    def check(self, key) -> None:
        """Raise the short-circuit error now if *key* is firmly open.

        A non-consuming entry-point guard (``submit`` / ``map_batches``):
        it never takes a half-open probe, so the probe stays available
        for the execution site that actually measures the outcome.
        """
        with self._lock:
            st = self._keys.get(key)
            firmly_open = (
                st is not None
                and st.state == OPEN
                and self.clock() - st.opened_at < self.reset_timeout
            )
            if firmly_open and self.telemetry is not None:
                self.telemetry.incr("circuit.short_circuits")
        if firmly_open:
            raise self.open_error(key)

    def record_success(self, key) -> None:
        with self._lock:
            st = self._keys.get(key)
            if st is None:
                return
            if st.state in (HALF_OPEN, OPEN):
                self._note("closed", key, st.state, CLOSED)
            st.state = CLOSED
            st.failures = 0
            st.probes = 0
            st.last_error = None

    def record_failure(self, key, exc: Optional[BaseException] = None) -> None:
        with self._lock:
            st = self._state_locked(key)
            if exc is not None:
                st.last_error = exc
            if st.state == HALF_OPEN:
                st.state = OPEN
                st.opened_at = self.clock()
                st.probes = 0
                self._note("reopened", key, HALF_OPEN, OPEN)
                return
            if st.state == OPEN:
                st.opened_at = self.clock()
                return
            st.failures += 1
            if st.failures >= self.failures:
                st.state = OPEN
                st.opened_at = self.clock()
                self._note("opened", key, CLOSED, OPEN)

    def state(self, key) -> str:
        with self._lock:
            st = self._keys.get(key)
            return st.state if st is not None else CLOSED

    def states(self) -> Dict[str, dict]:
        """Every tracked key's state, failure count and last error type."""
        with self._lock:
            return {
                str(key): {
                    "state": st.state,
                    "failures": st.failures,
                    "last_error": type(st.last_error).__name__
                    if st.last_error is not None
                    else None,
                }
                for key, st in self._keys.items()
            }

    def open_error(self, key) -> BaseException:
        """The fast failure an open *key* short-circuits into.

        Replicates the type of the last recorded failure when it can be
        built from a single message (so a plan that kept failing
        verification keeps failing with :class:`VerificationError`, a
        dead-fleet plan with :class:`WorkerError`); falls back to
        :class:`CircuitOpenError`.  Either way the instance carries
        ``short_circuited = True``.
        """
        with self._lock:
            st = self._keys.get(key)
            last = st.last_error if st is not None else None
        message = (
            f"circuit open for plan {key}: failing fast"
            + (
                f" (last failure: {type(last).__name__}: {last})"
                if last is not None
                else ""
            )
        )
        if last is not None and not isinstance(last, CircuitOpenError):
            try:
                replica = type(last)(message)
            except Exception:
                replica = CircuitOpenError(message)
        else:
            replica = CircuitOpenError(message)
        replica.short_circuited = True
        return replica

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            open_keys = sum(1 for s in self._keys.values() if s.state != CLOSED)
        return (
            f"PlanBreaker(failures={self.failures}, "
            f"reset_timeout={self.reset_timeout}, tracked={len(self._keys)}, "
            f"non_closed={open_keys})"
        )
