"""Resilience layer: deterministic fault injection and self-healing.

At the paper's production scale one spline-build campaign spans ~1e12
right-hand sides across long-running jobs; transient failures (a crashed
worker process, an exhausted shared-memory segment, a poisoned right-hand
side) are routine events there, not exceptions.  This package holds the
machinery that turns those events into recoveries instead of lost work —
and, just as importantly, the machinery that *proves* the recoveries in
CI by making every failure mode reproducible on demand:

* :mod:`~repro.runtime.resilience.faults` — a seeded, serializable
  :class:`~repro.runtime.resilience.faults.FaultPlan` injectable at named
  hook points threaded through the runtime (worker crash/hang, slow
  solve, shm allocation failure, RHS corruption, factorization raise,
  forced verification failure).  Off by default with zero hot-path cost;
  activated via ``EngineConfig(faults=...)`` or the ``REPRO_FAULT_PLAN``
  environment variable.
* :mod:`~repro.runtime.resilience.supervisor` — health checks over the
  sharded worker pool: dead (and hung) workers are detected, their
  in-flight shards are restored and requeued to survivors, and the
  worker is respawned under an exponential-backoff-with-jitter policy
  bounded by a restart budget.
* :mod:`~repro.runtime.resilience.circuit` — a per-plan-key circuit
  breaker (closed → open → half-open) that short-circuits known-failing
  plans into fast failures instead of burning full-cost retries.

The :class:`~repro.runtime.engine.SolveEngine` ties these into a
graceful degradation ladder: ``processes`` falls back to ``threads``
when the restart budget is spent, and to serial in-caller solves when
the thread pool itself fails — every transition logged and counted, and
no accepted request is ever silently dropped.
"""

from repro.runtime.resilience.circuit import CircuitOpenError, PlanBreaker
from repro.runtime.resilience.faults import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    HOOK_SITES,
)
from repro.runtime.resilience.supervisor import SupervisorPolicy, WorkerSupervisor

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "HOOK_SITES",
    "ENV_VAR",
    "PlanBreaker",
    "CircuitOpenError",
    "WorkerSupervisor",
    "SupervisorPolicy",
]
