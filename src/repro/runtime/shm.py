"""Shared-memory block transport for the sharded executor.

The process-sharded backend must move ``(n, B)`` right-hand-side blocks
between the parent and its worker processes without pickling them — at
the paper's widths (matrix ~1000, batch 1e5) a pickled batch would cost
more than the solve it carries.  Instead the parent owns a small pool of
:mod:`multiprocessing.shared_memory` segments; a batch is assembled
directly into a pooled segment, workers attach by name and solve their
column shard *in place*, and the parent reads the coefficients out of the
very same buffer.  One logical copy in (the assemble/gather the thread
path also pays), zero copies across the process boundary.

Two wrinkles this module hides:

* **Resource tracking.**  On CPython < 3.13 attaching to an existing
  segment (``SharedMemory(name=...)``) *also* registers it with the
  attaching process's resource tracker, so a worker exiting would unlink
  a segment the parent still owns.  :func:`attach` suppresses that
  registration; only the creating :class:`SharedBlock` ever unlinks.
* **Reuse and growth.**  Segments cannot be resized, so a
  :class:`SharedBlock` whose capacity is exceeded is unlinked and
  recreated (with a fresh name) at the larger size; the
  :class:`SharedBlockPool` hands blocks out round-robin under a condition
  variable so steady-state traffic recycles warm segments instead of
  allocating per batch.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from multiprocessing import shared_memory
from typing import List, Optional

from repro.exceptions import ReproError

__all__ = [
    "SharedBlock",
    "SharedBlockPool",
    "ShmError",
    "attach",
    "DEFAULT_POOL_BLOCKS",
]

#: default number of pooled segments — one per concurrently solving batch
DEFAULT_POOL_BLOCKS = 2

#: every live owner-side segment, so abnormal interpreter exits (an
#: uncaught exception, SystemExit, KeyboardInterrupt) unlink them even
#: when SolveEngine.shutdown() is never reached.  A WeakSet: a block that
#: was closed and collected normally simply is not here anymore.  SIGKILL
#: skips atexit entirely — that case is covered by the multiprocessing
#: resource tracker, which outlives the owner and unlinks what it leaked.
_LIVE_BLOCKS: "weakref.WeakSet[SharedBlock]" = weakref.WeakSet()
_GUARD_LOCK = threading.Lock()
_GUARD_INSTALLED = False


def _cleanup_live_blocks() -> None:  # pragma: no cover - exercised in a
    # subprocess by tests/test_resilience.py (atexit of *this* interpreter
    # only runs at exit, where coverage no longer records)
    for block in list(_LIVE_BLOCKS):
        try:
            block.close()
        except Exception:
            pass


def _register_owner(block: "SharedBlock") -> None:
    global _GUARD_INSTALLED
    with _GUARD_LOCK:
        if not _GUARD_INSTALLED:
            atexit.register(_cleanup_live_blocks)
            _GUARD_INSTALLED = True
        _LIVE_BLOCKS.add(block)


class ShmError(ReproError, RuntimeError):
    """A shared-memory segment could not be created, grown or attached."""


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The attaching process must *never* unlink the segment — that right
    stays with the creating :class:`SharedBlock` — but CPython < 3.13
    registers every attachment with the resource tracker.  Under the
    ``fork`` start method parent and workers *share* one tracker process,
    so an attach-then-unregister in a worker would strip the parent's own
    registration; instead the registration is suppressed for the duration
    of the attach.  Python 3.13+ exposes the same intent as
    ``track=False``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(res_name, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedBlock:
    """One owned shared-memory segment, growable by recreation.

    Only the parent process constructs these; workers see the segment
    through :func:`attach` by ``name``.  Because growth replaces the
    segment (and its name), consumers must re-read :attr:`name` after
    every :meth:`ensure`.
    """

    __slots__ = ("_shm", "__weakref__")

    def __init__(self, nbytes: int) -> None:
        if nbytes < 1:
            raise ValueError(f"a shared block needs >= 1 byte, got {nbytes}")
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=int(nbytes))
        )
        _register_owner(self)

    @property
    def name(self) -> str:
        if self._shm is None:
            raise ShmError("shared block already closed")
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        if self._shm is None:
            raise ShmError("shared block already closed")
        return self._shm.buf

    @property
    def capacity(self) -> int:
        return 0 if self._shm is None else self._shm.size

    def ensure(self, nbytes: int) -> "SharedBlock":
        """Guarantee at least *nbytes* of capacity, recreating if needed."""
        if self._shm is None:
            raise ShmError("shared block already closed")
        if nbytes > self._shm.size:
            self.close()
            # Grow past the request so a streak of slightly-larger
            # batches does not recreate the segment every time.
            self._shm = shared_memory.SharedMemory(
                create=True, size=int(nbytes + (nbytes >> 2))
            )
        return self

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SharedBlockPool:
    """A bounded, recycling pool of :class:`SharedBlock` segments.

    ``acquire`` blocks until a segment is free (the pool size bounds how
    many batches can be in flight through shared memory at once, which
    the engine already bounds by its thread count), grows the segment to
    the requested capacity, and hands it out; ``release`` returns it for
    the next batch, still warm in the page cache.
    """

    def __init__(
        self,
        blocks: int = DEFAULT_POOL_BLOCKS,
        initial_bytes: int = 1,
        faults=None,
        telemetry=None,
    ) -> None:
        if blocks < 1:
            raise ValueError(f"pool needs >= 1 block, got {blocks}")
        self.blocks = int(blocks)
        self.faults = faults
        self.telemetry = telemetry
        self._free: List[SharedBlock] = [
            SharedBlock(max(1, int(initial_bytes))) for _ in range(self.blocks)
        ]
        self._lent = 0
        # Requested bytes per outstanding lease, keyed by block identity,
        # so the pool can report its concurrent peak — the number an
        # out-of-core campaign checks against its memory budget.
        self._lease_bytes = {}
        self._lent_bytes = 0
        self.peak_lease_bytes = 0
        self._cv = threading.Condition()
        self._closed = False

    def acquire(self, nbytes: int) -> SharedBlock:
        if self.faults is not None:
            self.faults.fire("shm.acquire", nbytes=int(nbytes))
        with self._cv:
            while not self._free:
                if self._closed:
                    raise ShmError("shared block pool is closed")
                self._cv.wait()
            if self._closed:
                raise ShmError("shared block pool is closed")
            block = self._free.pop()
            self._lent += 1
        try:
            block = block.ensure(max(1, int(nbytes)))
        except BaseException:
            self.release(block)
            raise
        with self._cv:
            self._lease_bytes[id(block)] = int(nbytes)
            self._lent_bytes += int(nbytes)
            if self._lent_bytes > self.peak_lease_bytes:
                self.peak_lease_bytes = self._lent_bytes
        if self.telemetry is not None:
            self.telemetry.observe("shm.lease_bytes", int(nbytes))
        return block

    def release(self, block: SharedBlock) -> None:
        with self._cv:
            self._lent -= 1
            self._lent_bytes -= self._lease_bytes.pop(id(block), 0)
            if self._closed:
                block.close()
            else:
                self._free.append(block)
            self._cv.notify()

    def close(self) -> None:
        """Unlink every pooled segment; outstanding leases unlink on release."""
        with self._cv:
            self._closed = True
            for block in self._free:
                block.close()
            self._free.clear()
            self._cv.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._cv:
            return (
                f"SharedBlockPool(blocks={self.blocks}, free={len(self._free)}, "
                f"lent={self._lent}, closed={self._closed})"
            )
