"""Process-sharded batch execution — scaling the solve past the GIL.

The engine's thread pool overlaps *different* batches, but a single
coalesced ``(n, B)`` block is still solved by one Python thread: the
solver stack is orchestrated in Python, so threads cannot put more than
one core behind one batch.  Related 5-D/6-D semi-Lagrangian codes
distribute exactly this workload over nodes and worker partitions; the
:class:`ShardedExecutor` is the single-machine analogue:

* a persistent pool of ``multiprocessing`` **worker processes**, each
  holding its own :class:`~repro.runtime.plan_cache.PlanCache`-resident
  factorization per :class:`~repro.runtime.plan_cache.PlanKey` (factor
  once *per worker*, ever);
* each ``(n, B)`` block is split **column-wise** with the same balanced
  :class:`~repro.distributed.decompose.Decomposition` the distributed
  layer uses for rank blocks — whole columns only, so every shard runs
  the identical kernels on the identical values;
* shards travel through pooled :mod:`multiprocessing.shared_memory`
  segments (:mod:`repro.runtime.shm`): the parent assembles the batch
  straight into the segment, workers attach by name and solve their
  column range **in place**, and the parent scatters results out of the
  same buffer — no right-hand-side bytes are ever pickled;
* the gather is deterministic: shards write disjoint column ranges and
  the parent waits for every shard's acknowledgement before touching the
  block, so the coefficients are **bitwise identical** to the
  single-process path (the batched kernels treat columns independently —
  the same property the coalescer already relies on).

Wire-up is one knob: ``SolveEngine(executor="processes", num_workers=4)``
— ``submit()``, ``map_batches()``, ``SplineBuilder(engine=...)`` and
``BatchedAdvection1D(engine=...)`` all route through the shards
transparently, and per-worker :class:`~repro.runtime.telemetry.Telemetry`
snapshots merge into the engine's fleet view.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import signal
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional

import numpy as np

from repro.distributed.decompose import Decomposition
from repro.exceptions import ReproError
from repro.runtime import shm as shm_mod
from repro.runtime.shm import SharedBlock, SharedBlockPool
from repro.runtime.telemetry import Telemetry

__all__ = ["ShardedExecutor", "ShmLease", "WorkerError", "DEFAULT_START_METHOD"]


def _default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits the loaded
    solver stack), ``spawn`` otherwise."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


DEFAULT_START_METHOD = _default_start_method()

_STOP = "stop"
_SOLVE = "solve"
_SNAPSHOT = "snapshot"
_COLLECTOR_STOP = ("__collector_stop__", None, None)


class WorkerError(ReproError, RuntimeError):
    """A worker process failed (or died) while solving a shard."""


def _portable_exception(exc: BaseException) -> BaseException:
    """An exception safe to send over a result queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WorkerError(f"{type(exc).__name__}: {exc}")


class _AttachCache:
    """Worker-side cache of attached segments, bounded and name-keyed.

    The parent recreates (renames) a pooled segment when it grows, so
    stale names must eventually be let go; a small LRU bound keeps the
    worker's open-handle count proportional to the parent's pool.
    """

    def __init__(self, max_entries: int = 16) -> None:
        self.max_entries = max_entries
        self._open: Dict[str, object] = {}

    def buf(self, name: str) -> memoryview:
        seg = self._open.pop(name, None)
        if seg is None:
            seg = shm_mod.attach(name)
        self._open[name] = seg  # re-insert: dict order is the LRU order
        while len(self._open) > self.max_entries:
            stale_name, old = next(iter(self._open.items()))
            del self._open[stale_name]
            try:
                old.close()
            except BufferError:  # an ndarray still references the mmap
                pass
        return seg.buf

    def close(self) -> None:
        for seg in self._open.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._open.clear()


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """One worker process: attach, factor-once per key, solve shards.

    Runs until a ``stop`` message.  Every solve acknowledges on the
    result queue (success or portable exception); the parent's gather
    waits on those acks, which is what makes the column-sharded solve
    deterministic.
    """
    # The parent handles interrupts and shuts workers down explicitly; a
    # Ctrl-C during tests must not kill a shard mid-write.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from repro.runtime.plan_cache import PlanCache

    telemetry = Telemetry()
    cache = PlanCache(telemetry=telemetry)
    segments = _AttachCache()
    try:
        while True:
            message = task_q.get()
            kind = message[0]
            if kind == _STOP:
                result_q.put((message[1], "ok", telemetry.snapshot()))
                break
            if kind == _SNAPSHOT:
                result_q.put((message[1], "ok", telemetry.snapshot()))
                continue
            task_id, key, seg_name, shape, dtype_name, col0, col1 = message[1:]
            try:
                _solve_shard(
                    cache, telemetry, segments, key, seg_name, shape,
                    dtype_name, col0, col1,
                )
                result_q.put((task_id, "ok", None))
            except BaseException as exc:  # noqa: BLE001 - ship to parent
                telemetry.incr("worker.shard_failures")
                result_q.put((task_id, "err", _portable_exception(exc)))
    finally:
        segments.close()


def _solve_shard(
    cache, telemetry, segments, key, seg_name, shape, dtype_name, col0, col1
) -> None:
    """Solve one column shard in place in the named shared segment.

    A separate function so the ndarray over the segment's buffer dies
    with the call — a lingering reference would make the attach cache's
    eviction a :class:`BufferError`.
    """
    block = np.ndarray(
        shape, dtype=np.dtype(dtype_name), buffer=segments.buf(seg_name)
    )
    builder = cache.builder(key)
    telemetry.incr("worker.shards_solved")
    telemetry.observe("worker.shard_cols", col1 - col0)
    with telemetry.span("worker.shard_solve"):
        builder.solve(block[:, col0:col1], in_place=True)


class ShmLease:
    """A leased shared block viewed as an ``(n, B)`` ndarray.

    ``array`` is writable by the parent (assemble/scatter) and by every
    worker holding a shard of it; ``name`` is what ships to workers.
    The lease must be released back to its executor exactly once.
    """

    __slots__ = ("block", "array")

    def __init__(self, block: SharedBlock, shape, dtype) -> None:
        self.block = block
        self.array = np.ndarray(shape, dtype=dtype, buffer=block.buf)

    @property
    def name(self) -> str:
        return self.block.name


class ShardedExecutor:
    """Persistent worker-process pool solving column shards of batches.

    Parameters
    ----------
    num_workers:
        Worker processes (and the widest column split of one block).
    telemetry:
        Parent-side :class:`Telemetry` for shard accounting; worker-side
        telemetry lives in the workers and merges on demand.
    start_method:
        ``multiprocessing`` start method; default ``fork`` when available.
    pool_blocks:
        Shared-memory segments kept warm; bounds concurrently in-flight
        blocks (default ``num_workers`` — the engine's own thread bound).
    """

    def __init__(
        self,
        num_workers: int,
        telemetry: Optional[Telemetry] = None,
        start_method: Optional[str] = None,
        pool_blocks: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        ctx = mp.get_context(start_method or DEFAULT_START_METHOD)
        self._tasks = [ctx.Queue() for _ in range(self.num_workers)]
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(rank, self._tasks[rank], self._results),
                name=f"repro-shard-{rank}",
                daemon=True,
            )
            for rank in range(self.num_workers)
        ]
        for proc in self._procs:
            proc.start()
        self._pool = SharedBlockPool(
            blocks=pool_blocks if pool_blocks is not None else self.num_workers
        )
        self._lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._next_id = 0
        self._closed = False
        self._final_snapshots: List[dict] = []
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-shard-collector", daemon=True
        )
        self._collector.start()

    # -- result plumbing -------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            task_id, status, payload = self._results.get()
            if task_id == _COLLECTOR_STOP[0]:
                return
            with self._lock:
                fut = self._pending.pop(task_id, None)
            if fut is None:  # pragma: no cover - late ack after failure
                continue
            if status == "ok":
                fut.set_result(payload)
            else:
                fut.set_exception(payload)

    def _issue(self, rank: int, message_tail: tuple, kind: str = _SOLVE) -> Future:
        with self._lock:
            if self._closed:
                raise WorkerError("sharded executor is shut down")
            task_id = self._next_id
            self._next_id += 1
            fut: Future = Future()
            self._pending[task_id] = fut
        self._tasks[rank].put((kind, task_id) + message_tail)
        return fut

    def _await(self, fut: Future, what: str):
        """Wait on *fut*, watching worker liveness so a dead process
        surfaces as :class:`WorkerError` instead of a silent hang."""
        while True:
            try:
                return fut.result(timeout=1.0)
            except FutureTimeoutError:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead and not self._closed:
                    self._fail_pending(
                        WorkerError(f"worker process died during {what}: {dead}")
                    )
                    return fut.result(timeout=0)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(exc)

    # -- leases ----------------------------------------------------------

    def lease(self, shape, dtype) -> ShmLease:
        """A pooled shared block viewed as ``shape``/*dtype* (blocking)."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return ShmLease(self._pool.acquire(nbytes), shape, np.dtype(dtype))

    def release(self, lease: ShmLease) -> None:
        self._pool.release(lease.block)

    # -- the sharded solve ----------------------------------------------

    def solve(self, key, lease: ShmLease) -> None:
        """Solve ``lease.array`` in place, column-sharded over the workers.

        Shard *r* of the balanced decomposition goes to worker *r*; the
        call returns only after every shard acknowledged, so the block is
        fully solved (and safe to scatter) on return.  If any shard
        failed, the first failure is re-raised — after all acks, so no
        worker is still writing into the lease.
        """
        n, cols = lease.array.shape
        if cols == 0:
            return
        ranks = min(self.num_workers, cols)
        decomp = Decomposition(extent=cols, ranks=ranks)
        self.telemetry.incr("sharded.blocks")
        self.telemetry.observe("sharded.shards_per_block", ranks)
        shape = tuple(int(s) for s in lease.array.shape)
        dtype_name = lease.array.dtype.name
        futures = []
        failure: Optional[BaseException] = None
        with self.telemetry.span("sharded.solve"):
            for rank in range(ranks):
                col0, col1 = decomp.bounds(rank)
                self.telemetry.observe("sharded.shard_cols", col1 - col0)
                try:
                    futures.append(
                        self._issue(
                            rank, (key, lease.name, shape, dtype_name, col0, col1)
                        )
                    )
                except BaseException as exc:  # noqa: BLE001 - drain first
                    failure = exc
                    break
            # Wait for every issued shard even on failure: the lease must
            # not be recycled while a worker can still write into it.
            for fut in futures:
                try:
                    self._await(fut, "a shard solve")
                except BaseException as exc:  # noqa: BLE001 - re-raise below
                    failure = failure or exc
        if failure is not None:
            raise failure

    # -- telemetry and lifecycle ----------------------------------------

    def worker_snapshots(self, timeout: float = 10.0) -> List[dict]:
        """Every worker's :meth:`Telemetry.snapshot`, gathered in rank order.

        After :meth:`shutdown` this returns the final snapshots captured
        while the workers drained, so post-mortem merges keep working.
        """
        with self._lock:
            closed = self._closed
        if closed:
            return list(self._final_snapshots)
        futures = [
            self._issue(rank, (), kind=_SNAPSHOT)
            for rank in range(self.num_workers)
        ]
        return [fut.result(timeout=timeout) for fut in futures]

    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._procs)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers (capturing their final telemetry), free all shm."""
        with self._lock:
            if self._closed:
                return
        # The stop message doubles as the final snapshot request.
        finals = []
        try:
            finals = [
                self._issue(rank, (), kind=_STOP)
                for rank in range(self.num_workers)
                if self._procs[rank].is_alive()
            ]
        except WorkerError:  # pragma: no cover - raced with failure
            pass
        deadline = time.perf_counter() + timeout
        for fut in finals:
            try:
                self._final_snapshots.append(
                    fut.result(timeout=max(0.1, deadline - time.perf_counter()))
                )
            except Exception:  # pragma: no cover - worker died mid-stop
                pass
        with self._lock:
            self._closed = True
        self._fail_pending(WorkerError("sharded executor shut down"))
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.perf_counter()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._results.put(_COLLECTOR_STOP)
        self._collector.join(timeout=2.0)
        self._pool.close()
        for q in self._tasks:
            q.close()
        self._results.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(workers={self.num_workers}, "
            f"alive={sum(p.is_alive() for p in self._procs)}, "
            f"closed={self._closed})"
        )
