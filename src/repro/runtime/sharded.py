"""Process-sharded batch execution — scaling the solve past the GIL.

The engine's thread pool overlaps *different* batches, but a single
coalesced ``(n, B)`` block is still solved by one Python thread: the
solver stack is orchestrated in Python, so threads cannot put more than
one core behind one batch.  Related 5-D/6-D semi-Lagrangian codes
distribute exactly this workload over nodes and worker partitions; the
:class:`ShardedExecutor` is the single-machine analogue:

* a persistent pool of ``multiprocessing`` **worker processes**, each
  holding its own :class:`~repro.runtime.plan_cache.PlanCache`-resident
  factorization per :class:`~repro.runtime.plan_cache.PlanKey` (factor
  once *per worker*, ever);
* each ``(n, B)`` block is split **column-wise** with the same balanced
  :class:`~repro.distributed.decompose.Decomposition` the distributed
  layer uses for rank blocks — whole columns only, so every shard runs
  the identical kernels on the identical values;
* shards travel through pooled :mod:`multiprocessing.shared_memory`
  segments (:mod:`repro.runtime.shm`): the parent assembles the batch
  straight into the segment, workers attach by name and solve their
  column range **in place**, and the parent scatters results out of the
  same buffer — no right-hand-side bytes are ever pickled;
* the gather is deterministic: shards write disjoint column ranges and
  the parent waits for every shard's acknowledgement before touching the
  block, so the coefficients are **bitwise identical** to the
  single-process path (the batched kernels treat columns independently —
  the same property the coalescer already relies on).

Resilience (PR 5) extends the pool with a supervision API consumed by
:class:`~repro.runtime.resilience.supervisor.WorkerSupervisor`: every
in-flight shard is a :class:`_PendingTask` carrying everything needed to
*reissue* it — its message tail, its restore callback (an interrupted
in-place solve leaves partial garbage in the shared block, so the shard's
columns are re-filled from the original request data before the retry),
and its attempt count.  A dead worker's shards requeue onto survivors
(bitwise-identical results, because shard boundaries and the kernels are
deterministic), the rank respawns under the supervisor's backoff, and
:meth:`solve_array` offers a pickled-transport fallback that keeps
multi-core solving alive when shared memory itself is the failing part.

Wire-up is one knob: ``SolveEngine(executor="processes", num_workers=4)``
— ``submit()``, ``map_batches()``, ``SplineBuilder(engine=...)`` and
``BatchedAdvection1D(engine=...)`` all route through the shards
transparently, and per-worker :class:`~repro.runtime.telemetry.Telemetry`
snapshots merge into the engine's fleet view.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_conn
import pickle
import signal
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.decompose import Decomposition
from repro.exceptions import ReproError
from repro.runtime import shm as shm_mod
from repro.runtime.shm import SharedBlock, SharedBlockPool
from repro.runtime.telemetry import Telemetry

__all__ = ["ShardedExecutor", "ShmLease", "WorkerError", "DEFAULT_START_METHOD"]


def _default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits the loaded
    solver stack), ``spawn`` otherwise."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


DEFAULT_START_METHOD = _default_start_method()

_STOP = "stop"
_SOLVE = "solve"
_SOLVE_ARR = "solve_arr"
_SNAPSHOT = "snapshot"

#: default seconds a dispatch will wait for the supervisor to bring a
#: worker back before giving up — well past the default backoff ceiling,
#: so the only way to hit it is a pool that genuinely cannot heal.  Tuned
#: for same-host pipes; configurable per executor (and scaled up by the
#: cluster transport, whose workers respawn over TCP) via the
#: ``live_wait_timeout`` parameter / ``EngineConfig(live_wait_timeout=)``.
_LIVE_WAIT_TIMEOUT = 30.0


class WorkerError(ReproError, RuntimeError):
    """A worker process failed (or died) while solving a shard.

    Carries the shard's context when known — which worker held it, the
    plan key it was solving, the ``(col0, col1)`` column range, how many
    delivery attempts it consumed, and (once the engine's per-request
    retry path has attributed it) the *tenant* whose request it failed —
    so a campaign log names the exact shard that died instead of just
    "a worker died", and a multi-tenant report can say whose it was.
    """

    def __init__(
        self,
        message: str = "",
        worker_id: Optional[int] = None,
        key=None,
        cols: Optional[Tuple[int, int]] = None,
        attempt: Optional[int] = None,
        tenant=None,
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.key = key
        self.cols = cols
        self.attempt = attempt
        self.tenant = tenant

    def __reduce__(self):
        # Default reduction re-calls __init__ with self.args only, which
        # would drop the shard context on the worker->parent queue hop.
        return (
            type(self),
            (
                self.args[0] if self.args else "",
                self.worker_id,
                self.key,
                self.cols,
                self.attempt,
                self.tenant,
            ),
        )

    def __str__(self) -> str:
        base = self.args[0] if self.args else ""
        context = []
        if self.worker_id is not None:
            context.append(f"worker={self.worker_id}")
        if self.key is not None:
            context.append(f"key={self.key}")
        if self.cols is not None:
            context.append(f"cols=[{self.cols[0]}, {self.cols[1]})")
        if self.attempt is not None:
            context.append(f"attempt={self.attempt}")
        if self.tenant is not None:
            context.append(f"tenant={self.tenant}")
        return f"{base} [{', '.join(context)}]" if context else base


def _portable_exception(exc: BaseException) -> BaseException:
    """An exception safe to send over a result queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WorkerError(f"{type(exc).__name__}: {exc}")


class _AttachCache:
    """Worker-side cache of attached segments, bounded and name-keyed.

    The parent recreates (renames) a pooled segment when it grows, so
    stale names must eventually be let go; a small LRU bound keeps the
    worker's open-handle count proportional to the parent's pool.
    """

    def __init__(self, max_entries: int = 16) -> None:
        self.max_entries = max_entries
        self._open: Dict[str, object] = {}

    def buf(self, name: str) -> memoryview:
        seg = self._open.pop(name, None)
        if seg is None:
            seg = shm_mod.attach(name)
        self._open[name] = seg  # re-insert: dict order is the LRU order
        while len(self._open) > self.max_entries:
            stale_name, old = next(iter(self._open.items()))
            del self._open[stale_name]
            try:
                old.close()
            except BufferError:  # an ndarray still references the mmap
                pass
        return seg.buf

    def close(self) -> None:
        for seg in self._open.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._open.clear()


def _worker_main(
    worker_id: int, task_q, result_conn, fault_json=None, plan_store_dir=None
) -> None:
    """One worker process: attach, factor-once per key, solve shards.

    Runs until a ``stop`` message.  Every solve acknowledges on
    *result_conn* (success or portable exception); the parent's gather
    waits on those acks, which is what makes the column-sharded solve
    deterministic.  The connection is this worker's **private** pipe end
    — never a queue shared with other workers, whose cross-process write
    lock a crashing worker (``os._exit`` mid-ack, an external SIGKILL)
    could take to its grave and starve every survivor.  A private pipe
    confines the damage: the parent sees this worker's death as EOF on
    this one connection and nothing else stalls.  ``fault_json`` is the
    parent's serialized
    :class:`~repro.runtime.resilience.faults.FaultPlan`; the worker's
    private copy fires the ``sharded.worker_solve`` hook (with
    ``worker=worker_id``) before each shard, with fresh visit counters —
    a respawned worker counts from zero.  ``plan_store_dir`` (when set)
    backs the worker's plan cache with the shared durable
    :class:`~repro.runtime.durable.PlanStore`, so a fresh or respawned
    worker warm-starts from disk instead of refactorizing.
    """
    # The parent handles interrupts and shuts workers down explicitly; a
    # Ctrl-C during tests must not kill a shard mid-write.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from repro.runtime.plan_cache import PlanCache

    faults = None
    if fault_json:
        from repro.runtime.resilience.faults import FaultPlan

        faults = FaultPlan.from_json(fault_json)
    telemetry = Telemetry()
    store = None
    if plan_store_dir:
        from repro.runtime.durable import PlanStore

        store = PlanStore(plan_store_dir, telemetry=telemetry, faults=faults)
    cache = PlanCache(telemetry=telemetry, store=store)
    segments = _AttachCache()
    try:
        while True:
            message = task_q.get()
            kind = message[0]
            if kind == _STOP:
                result_conn.send((message[1], "ok", telemetry.snapshot()))
                break
            if kind == _SNAPSHOT:
                result_conn.send((message[1], "ok", telemetry.snapshot()))
                continue
            if kind == _SOLVE_ARR:
                task_id, key, shard, col0, col1 = message[1:]
                try:
                    if faults is not None:
                        faults.fire(
                            "sharded.worker_solve",
                            worker=worker_id,
                            key=key,
                            cols=(col0, col1),
                        )
                    result_conn.send(
                        (
                            task_id,
                            "ok",
                            _solve_array_shard(cache, telemetry, key, shard),
                        )
                    )
                except BaseException as exc:  # noqa: BLE001 - ship to parent
                    telemetry.incr("worker.shard_failures")
                    result_conn.send((task_id, "err", _portable_exception(exc)))
                continue
            task_id, key, seg_name, shape, dtype_name, col0, col1 = message[1:]
            try:
                if faults is not None:
                    faults.fire(
                        "sharded.worker_solve",
                        worker=worker_id,
                        key=key,
                        cols=(col0, col1),
                    )
                _solve_shard(
                    cache, telemetry, segments, key, seg_name, shape,
                    dtype_name, col0, col1,
                )
                result_conn.send((task_id, "ok", None))
            except BaseException as exc:  # noqa: BLE001 - ship to parent
                telemetry.incr("worker.shard_failures")
                result_conn.send((task_id, "err", _portable_exception(exc)))
    finally:
        segments.close()
        try:
            result_conn.close()
        except OSError:  # pragma: no cover - already broken
            pass


def _solve_shard(
    cache, telemetry, segments, key, seg_name, shape, dtype_name, col0, col1
) -> None:
    """Solve one column shard in place in the named shared segment.

    A separate function so the ndarray over the segment's buffer dies
    with the call — a lingering reference would make the attach cache's
    eviction a :class:`BufferError`.
    """
    block = np.ndarray(
        shape, dtype=np.dtype(dtype_name), buffer=segments.buf(seg_name)
    )
    builder = cache.builder(key)
    telemetry.incr("worker.shards_solved")
    telemetry.observe("worker.shard_cols", col1 - col0)
    with telemetry.span("worker.shard_solve"):
        builder.solve(block[:, col0:col1], in_place=True)


def _solve_array_shard(cache, telemetry, key, shard: np.ndarray) -> np.ndarray:
    """Solve a pickled-transport shard in place and return it.

    The fallback path when shared memory is unavailable: the shard
    arrived as its own array through the task queue, so the solved
    coefficients ride the acknowledgement back the same way.
    """
    builder = cache.builder(key)
    telemetry.incr("worker.shards_solved")
    telemetry.incr("worker.pickled_shards")
    telemetry.observe("worker.shard_cols", shard.shape[1])
    with telemetry.span("worker.shard_solve"):
        builder.solve(shard, in_place=True)
    return shard


class ShmLease:
    """A leased shared block viewed as an ``(n, B)`` ndarray.

    ``array`` is writable by the parent (assemble/scatter) and by every
    worker holding a shard of it; ``name`` is what ships to workers.
    The lease must be released back to its executor exactly once.
    """

    __slots__ = ("block", "array")

    def __init__(self, block: SharedBlock, shape, dtype) -> None:
        self.block = block
        self.array = np.ndarray(shape, dtype=dtype, buffer=block.buf)

    @property
    def name(self) -> str:
        return self.block.name


class _PendingTask:
    """One in-flight message and everything needed to reissue it.

    ``tail`` is the message payload after ``(kind, task_id)``, verbatim;
    ``restore`` (solve shards only) re-fills the shard's columns from
    the original request data — mandatory before a retry, because the
    dead worker may have half-overwritten them in place.  ``attempt``
    counts deliveries consumed so a shard cannot requeue forever.
    """

    __slots__ = (
        "future", "rank", "kind", "tail", "restore",
        "attempt", "issued_at", "key", "cols",
    )

    def __init__(
        self,
        rank: int,
        kind: str,
        tail: tuple,
        restore: Optional[Callable[[], None]] = None,
        key=None,
        cols: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.future: Future = Future()
        self.rank = rank
        self.kind = kind
        self.tail = tail
        self.restore = restore
        self.attempt = 0
        self.issued_at = time.monotonic()
        self.key = key
        self.cols = cols


class ShardedExecutor:
    """Persistent worker-process pool solving column shards of batches.

    Parameters
    ----------
    num_workers:
        Worker processes (and the widest column split of one block).
    telemetry:
        Parent-side :class:`Telemetry` for shard accounting; worker-side
        telemetry lives in the workers and merges on demand.
    start_method:
        ``multiprocessing`` start method; default ``fork`` when available.
    pool_blocks:
        Shared-memory segments kept warm; bounds concurrently in-flight
        blocks (default ``num_workers`` — the engine's own thread bound).
    faults:
        Optional :class:`~repro.runtime.resilience.faults.FaultPlan`.
        The parent fires ``sharded.dispatch`` and ``shm.acquire``; a
        serialized copy ships to every worker (including respawns) for
        ``sharded.worker_solve``.
    supervise:
        Run a :class:`~repro.runtime.resilience.supervisor.WorkerSupervisor`
        next to the pool: dead workers respawn under backoff and their
        in-flight shards requeue onto survivors.  Off by default at this
        layer — the raw executor keeps PR 4's fail-fast semantics — and
        switched on by :class:`~repro.runtime.engine.SolveEngine`.
    policy:
        Supervisor tunables (ignored unless ``supervise``).
    plan_store_dir:
        Optional durable :class:`~repro.runtime.durable.PlanStore`
        directory shared by every worker (spawned and respawned): each
        worker's plan cache warm-starts from it and writes fresh
        factorizations back.
    live_wait_timeout:
        Seconds a dispatch waits for a live worker (e.g. mid-respawn)
        before failing with :class:`WorkerError`; ``None`` uses the
        module default, tuned for same-host pipes.
    """

    #: this executor's shard transport can carry shared-memory leases
    #: (the cluster executor's wire transport sets this False and the
    #: engine skips the lease rung entirely)
    supports_shm = True

    def __init__(
        self,
        num_workers: int,
        telemetry: Optional[Telemetry] = None,
        start_method: Optional[str] = None,
        pool_blocks: Optional[int] = None,
        faults=None,
        supervise: bool = False,
        policy=None,
        plan_store_dir=None,
        live_wait_timeout: Optional[float] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if live_wait_timeout is not None and live_wait_timeout <= 0:
            raise ValueError(
                f"live_wait_timeout must be > 0 or None, got {live_wait_timeout}"
            )
        self.live_wait_timeout = (
            _LIVE_WAIT_TIMEOUT if live_wait_timeout is None else float(live_wait_timeout)
        )
        self.num_workers = int(num_workers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.faults = faults
        self.plan_store_dir = (
            None if plan_store_dir is None else str(plan_store_dir)
        )
        self._fault_json = faults.to_json() if faults is not None else None
        self._ctx = mp.get_context(start_method or DEFAULT_START_METHOD)
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._pending: Dict[int, _PendingTask] = {}
        self._parked: Dict[int, List[_PendingTask]] = {}
        self._rr = 0
        self._next_id = 0
        self._closed = False
        self._final_snapshots: List[dict] = []
        # Results travel over one pipe *per worker* (single writer each):
        # a queue shared by all workers would share one cross-process
        # write lock, and a worker crashing while holding it would starve
        # every survivor's acks forever.  The collector multiplexes the
        # read ends with ``multiprocessing.connection.wait``; a dead
        # worker surfaces as EOF on its own connection only.
        self._reader_conns: List[mp_conn.Connection] = []
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._collector_stop = False
        self._tasks = []
        self._procs = []
        for rank in range(self.num_workers):
            q, rx, proc = self._spawn_worker(rank)
            self._tasks.append(q)
            self._procs.append(proc)
            self._reader_conns.append(rx)
        self._pool = SharedBlockPool(
            blocks=pool_blocks if pool_blocks is not None else self.num_workers,
            faults=faults,
            telemetry=self.telemetry,
        )
        self._live: List[bool] = [True] * self.num_workers
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-shard-collector", daemon=True
        )
        self._collector.start()
        self._supervisor = None
        if supervise:
            from repro.runtime.resilience.supervisor import (
                SupervisorPolicy,
                WorkerSupervisor,
            )

            self._supervisor = WorkerSupervisor(
                self,
                policy if policy is not None else SupervisorPolicy(),
                self.telemetry,
            )
            self._supervisor.start()

    # -- result plumbing -------------------------------------------------

    def _spawn_worker(self, rank: int):
        """Launch one worker: fresh task queue, fresh private result pipe.

        The parent's copy of the write end closes right after the start,
        so the worker holds the only writer and its death is a clean EOF
        on the read end — never a half-held shared lock.
        """
        rx, tx = self._ctx.Pipe(duplex=False)
        q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(rank, q, tx, self._fault_json, self.plan_store_dir),
            name=f"repro-shard-{rank}",
            daemon=True,
        )
        try:
            proc.start()
        except BaseException:  # pragma: no cover - resource exhaustion
            rx.close()
            tx.close()
            raise
        tx.close()
        return q, rx, proc

    def _wake_collector(self) -> None:
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):  # pragma: no cover - closing down
            pass

    def _retire_conn(self, conn) -> None:
        with self._lock:
            if conn in self._reader_conns:
                self._reader_conns.remove(conn)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                conns = list(self._reader_conns)
            # The 1 s timeout is a backstop only; wake tokens refresh the
            # wait set the moment a respawn adds a fresh connection.
            ready = mp_conn.wait(conns + [self._wake_r], timeout=1.0)
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        self._wake_r.recv_bytes()
                    except (EOFError, OSError):  # pragma: no cover
                        return
                    if self._collector_stop:
                        return
                    continue
                try:
                    task_id, status, payload = conn.recv()
                except (EOFError, OSError):
                    # This worker died (possibly mid-ack: a truncated
                    # message ends the stream).  Its pending shards are
                    # the supervisor's job; only this pipe retires.
                    self._retire_conn(conn)
                    continue
                except Exception:  # pragma: no cover - corrupt stream
                    self._retire_conn(conn)
                    continue
                with self._lock:
                    task = self._pending.pop(task_id, None)
                if task is None:  # a late ack from a terminated/requeued shard
                    continue
                if status == "ok":
                    task.future.set_result(payload)
                else:
                    task.future.set_exception(payload)

    def _issue(self, rank: int, message_tail: tuple, kind: str = _SOLVE) -> Future:
        """Issue a rank-directed control message (snapshot / stop)."""
        with self._lock:
            if self._closed:
                raise WorkerError("sharded executor is shut down")
            task_id = self._next_id
            self._next_id += 1
            task = _PendingTask(rank, kind, message_tail)
            self._pending[task_id] = task
            q = self._tasks[rank]
        q.put((kind, task_id) + message_tail)
        return task.future

    def _issue_live(
        self,
        tail: tuple,
        kind: str,
        restore: Optional[Callable[[], None]],
        key,
        cols: Tuple[int, int],
    ) -> Future:
        """Register and issue one solve shard to the next live worker.

        Pick, register and queue-grab happen under one lock hold, so a
        shard can never be sent to a rank that was already marked down —
        and a rank that dies *after* the send still carries the shard in
        ``_pending``, where the supervisor's requeue finds it.  With no
        live rank the call waits for the supervisor to respawn one,
        failing fast when the pool is closed, unsupervised, or exhausted
        (never deadlocks: a hard timeout backstops the wait).
        """
        deadline = time.monotonic() + self.live_wait_timeout
        with self._lock:
            while True:
                if self._closed:
                    raise WorkerError("sharded executor is shut down")
                live = [
                    rank for rank in range(self.num_workers) if self._live[rank]
                ]
                if live:
                    self._rr += 1
                    rank = live[self._rr % len(live)]
                    task_id = self._next_id
                    self._next_id += 1
                    task = _PendingTask(rank, kind, tail, restore, key, cols)
                    self._pending[task_id] = task
                    q = self._tasks[rank]
                    break
                if self._supervisor is None or self._supervisor.exhausted:
                    raise WorkerError(
                        "no live worker processes"
                        + (
                            " and the restart budget is exhausted"
                            if self._supervisor is not None
                            else ""
                        ),
                        key=key,
                        cols=cols,
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerError(
                        f"timed out after {self.live_wait_timeout:.1f}s "
                        "waiting for a live worker; "
                        f"ranks awaited: {self._rank_states_locked()}",
                        key=key,
                        cols=cols,
                    )
                self._cv.wait(timeout=min(0.05, remaining))
        q.put((kind, task_id) + tail)
        return task.future

    def _rank_states_locked(self) -> Dict[int, str]:
        """Per-rank lease state for timeout diagnostics (under the lock).

        ``live`` — routable; ``down`` — marked down, process still up
        (death being handled); ``dead`` — marked down and the process is
        gone (respawn pending or budget spent).
        """
        states = {}
        for rank in range(self.num_workers):
            if self._live[rank]:
                states[rank] = "live"
            elif self._procs[rank].is_alive():
                states[rank] = "down"
            else:
                states[rank] = "dead"
        return states

    def _await(self, fut: Future, what: str):
        """Wait on *fut*, watching worker liveness so a dead process
        surfaces as :class:`WorkerError` instead of a silent hang.

        Under supervision the watching is the supervisor's job — every
        pending shard is either acknowledged, requeued, or failed by it —
        so the wait continues across worker deaths, with one backstop:
        a future the pool no longer *tracks* (neither pending nor parked)
        can never resolve, so after a few grace ticks it fails as
        :class:`WorkerError` rather than hanging the caller forever.
        The grace period covers the honest untracked window while the
        supervisor restores and reissues a requeued shard.
        """
        untracked_ticks = 0
        while True:
            try:
                return fut.result(timeout=1.0)
            except FutureTimeoutError:
                if self._supervisor is not None:
                    with self._lock:
                        tracked = any(
                            t.future is fut for t in self._pending.values()
                        ) or any(
                            t.future is fut
                            for tasks in self._parked.values()
                            for t in tasks
                        )
                    if tracked or fut.done():
                        untracked_ticks = 0
                        continue
                    untracked_ticks += 1
                    if untracked_ticks < 3:
                        continue
                    raise WorkerError(
                        f"in-flight shard lost by the pool during {what} "
                        "(neither pending, parked, nor resolved)"
                    ) from None
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead and not self._closed:
                    self._fail_pending(
                        WorkerError(f"worker process died during {what}: {dead}")
                    )
                    return fut.result(timeout=0)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
            parked, self._parked = self._parked, {}
        tasks = list(pending.values())
        for rank_tasks in parked.values():
            tasks.extend(rank_tasks)
        for task in tasks:
            if not task.future.done():
                task.future.set_exception(exc)

    # -- the supervision API ----------------------------------------------
    #
    # Consumed by resilience.supervisor.WorkerSupervisor; everything here
    # is safe to call from its monitor thread concurrently with solves.

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def exhausted(self) -> bool:
        """True once the supervisor spent its restart budget (always
        ``False`` for an unsupervised pool)."""
        return self._supervisor is not None and self._supervisor.exhausted

    @property
    def peak_lease_bytes(self) -> int:
        """Concurrent peak of shared-memory bytes leased for shard blocks."""
        return self._pool.peak_lease_bytes

    @property
    def supervisor(self):
        return self._supervisor

    def is_marked_live(self, rank: int) -> bool:
        return self._live[rank]

    def proc_alive(self, rank: int) -> bool:
        return self._procs[rank].is_alive()

    def mark_down(self, rank: int) -> None:
        """Stop routing new shards at *rank* (its death is being handled)."""
        with self._lock:
            self._live[rank] = False
            self._cv.notify_all()

    def terminate_worker(self, rank: int) -> None:
        """Kill *rank* now (hang remediation) and wait until it is dead.

        The join matters: a requeued shard must never race a terminated
        worker that is still mid-write in the shared block.
        """
        proc = self._procs[rank]
        proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - terminate() ignored
            proc.kill()
            proc.join(timeout=2.0)

    def oldest_pending_age(self, rank: int, now: float) -> Optional[float]:
        """Age in seconds of *rank*'s oldest in-flight shard, or ``None``."""
        with self._lock:
            oldest = None
            for task in self._pending.values():
                if task.rank != rank or task.kind not in (_SOLVE, _SOLVE_ARR):
                    continue
                if oldest is None or task.issued_at < oldest:
                    oldest = task.issued_at
        return None if oldest is None else now - oldest

    def _pick_survivor_locked(self) -> Optional[int]:
        live = [
            rank
            for rank in range(self.num_workers)
            if self._live[rank] and self._procs[rank].is_alive()
        ]
        if not live:
            return None
        self._rr += 1
        return live[self._rr % len(live)]

    def _fail_task(self, task: _PendingTask, rank: int, message: str) -> None:
        if task.future.done():  # pragma: no cover - raced with an ack
            return
        task.future.set_exception(
            WorkerError(
                message,
                worker_id=rank,
                key=task.key,
                cols=task.cols,
                attempt=task.attempt,
            )
        )

    def _reissue(self, task: _PendingTask, rank: int) -> bool:
        with self._lock:
            if self._closed:
                return False
            task_id = self._next_id
            self._next_id += 1
            task.rank = rank
            task.attempt += 1
            task.issued_at = time.monotonic()
            self._pending[task_id] = task
            q = self._tasks[rank]
        q.put((task.kind, task_id) + task.tail)
        return True

    def requeue_rank(
        self, rank: int, max_retries: int, allow_park: bool = True
    ) -> int:
        """Move dead *rank*'s in-flight shards to survivors; return count.

        Each shard is **restored first** — its column range re-filled
        from the original request data — because the dead worker may
        have half-overwritten it in place; re-solving restored columns
        is bitwise identical to the undisturbed run.  A shard past
        *max_retries* fails with full context.  With no survivor the
        shard parks on *rank* when a respawn is coming (``allow_park``),
        else fails fast.  Control messages (snapshot/stop) always fail.
        """
        with self._lock:
            victims = [
                (task_id, task)
                for task_id, task in self._pending.items()
                if task.rank == rank
            ]
            for task_id, _ in victims:
                del self._pending[task_id]
        requeued = 0
        for _, task in victims:
            if task.future.done():  # the ack beat the death notice
                continue
            if task.kind not in (_SOLVE, _SOLVE_ARR):
                self._fail_task(task, rank, "worker died before answering")
                continue
            if task.attempt >= max_retries:
                self._fail_task(
                    task,
                    rank,
                    f"shard failed after {task.attempt + 1} deliveries",
                )
                continue
            try:
                if task.restore is not None:
                    task.restore()
            except BaseException as exc:  # noqa: BLE001 - surface to caller
                if not task.future.done():
                    task.future.set_exception(exc)
                continue
            with self._lock:
                target = self._pick_survivor_locked()
            if target is None:
                if allow_park and not self._closed:
                    with self._lock:
                        self._parked.setdefault(rank, []).append(task)
                    continue
                self._fail_task(task, rank, "no live workers to requeue onto")
                continue
            if self._reissue(task, target):
                requeued += 1
                self.telemetry.incr("sharded.requeued_shards")
            else:
                self._fail_task(task, rank, "executor closed during requeue")
        return requeued

    def respawn(self, rank: int) -> bool:
        """Relaunch dead *rank* with a **fresh task queue**, reissuing its
        parked shards; returns whether a new process is running.

        The fresh queue is load-bearing: messages queued to the dead
        process must never be drained by its replacement — every one of
        them was either acknowledged, requeued, or failed already, and a
        replay would double-solve (harmless) or double-ack (confusing).
        """
        with self._lock:
            if self._closed or self._live[rank]:
                return False
        old = self._procs[rank]
        if old.is_alive():  # pragma: no cover - defensive
            old.terminate()
        old.join(timeout=2.0)
        try:
            new_q, rx, proc = self._spawn_worker(rank)
        except BaseException:  # pragma: no cover - resource exhaustion
            with self._lock:
                parked = self._parked.pop(rank, [])
            for task in parked:
                self._fail_task(task, rank, "worker respawn failed")
            return False
        with self._lock:
            self._tasks[rank] = new_q
            self._procs[rank] = proc
            self._live[rank] = True
            self._reader_conns.append(rx)
            parked = self._parked.pop(rank, [])
            self._cv.notify_all()
        # The dead incarnation's pipe stays in the wait set until its EOF
        # drains — acks it sent before dying are still honored.
        self._wake_collector()
        for task in parked:
            if not self._reissue(task, rank):  # pragma: no cover - closing
                self._fail_task(task, rank, "executor closed during respawn")
        return True

    # -- leases ----------------------------------------------------------

    def lease(self, shape, dtype) -> ShmLease:
        """A pooled shared block viewed as ``shape``/*dtype* (blocking)."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return ShmLease(self._pool.acquire(nbytes), shape, np.dtype(dtype))

    def release(self, lease: ShmLease) -> None:
        self._pool.release(lease.block)

    # -- the sharded solve ----------------------------------------------

    def solve(
        self,
        key,
        lease: ShmLease,
        restore: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Solve ``lease.array`` in place, column-sharded over the workers.

        The balanced decomposition is fixed by ``num_workers`` (not by
        how many workers happen to be alive), and each shard goes to the
        next live rank; the call returns only after every shard
        acknowledged, so the block is fully solved (and safe to scatter)
        on return.  If any shard failed, the first failure is re-raised
        — after all acks, so no worker is still writing into the lease.

        *restore*, called as ``restore(col0, col1)``, must re-fill that
        column range of ``lease.array`` with its original (unsolved)
        values; with it, a shard lost to a worker death is restored and
        requeued instead of failing the whole block.
        """
        n, cols = lease.array.shape
        if cols == 0:
            return
        ranks = min(self.num_workers, cols)
        decomp = Decomposition(extent=cols, ranks=ranks)
        self.telemetry.incr("sharded.blocks")
        self.telemetry.observe("sharded.shards_per_block", ranks)
        shape = tuple(int(s) for s in lease.array.shape)
        dtype_name = lease.array.dtype.name
        futures = []
        failure: Optional[BaseException] = None
        with self.telemetry.span("sharded.solve"):
            for shard in range(ranks):
                col0, col1 = decomp.bounds(shard)
                if col1 == col0:
                    continue  # zero-width block (ranks > extent): nothing to do
                self.telemetry.observe("sharded.shard_cols", col1 - col0)
                try:
                    if self.faults is not None:
                        self.faults.fire(
                            "sharded.dispatch", key=key, cols=(col0, col1)
                        )
                    shard_restore = (
                        None
                        if restore is None
                        else (lambda c0=col0, c1=col1: restore(c0, c1))
                    )
                    futures.append(
                        self._issue_live(
                            (key, lease.name, shape, dtype_name, col0, col1),
                            _SOLVE,
                            shard_restore,
                            key,
                            (col0, col1),
                        )
                    )
                except BaseException as exc:  # noqa: BLE001 - drain first
                    failure = exc
                    break
            # Wait for every issued shard even on failure: the lease must
            # not be recycled while a worker can still write into it.
            for fut in futures:
                try:
                    self._await(fut, "a shard solve")
                except BaseException as exc:  # noqa: BLE001 - re-raise below
                    failure = failure or exc
        if failure is not None:
            raise failure

    def solve_array(
        self, key, block: np.ndarray, restore: Optional[Callable] = None
    ) -> None:
        """Solve *block* in place, shipping shards as pickled arrays.

        The degraded-transport rung of the resilience ladder: when the
        shared-memory pool cannot serve (:class:`~repro.runtime.shm.ShmError`),
        each shard travels through the task queue as its own array and
        the solved coefficients ride the acknowledgement back.  Slower —
        the shard bytes are pickled both ways — but still multi-core,
        and bitwise identical (same decomposition, same kernels).  No
        restore callback is needed for requeue: the queued tail holds
        the parent's pristine copy of the shard.
        """
        n, cols = block.shape
        if cols == 0:
            return
        ranks = min(self.num_workers, cols)
        decomp = Decomposition(extent=cols, ranks=ranks)
        self.telemetry.incr("sharded.pickled_blocks")
        self.telemetry.observe("sharded.shards_per_block", ranks)
        entries = []
        failure: Optional[BaseException] = None
        with self.telemetry.span("sharded.solve"):
            for shard in range(ranks):
                col0, col1 = decomp.bounds(shard)
                if col1 == col0:
                    continue  # zero-width block (ranks > extent): nothing to do
                self.telemetry.observe("sharded.shard_cols", col1 - col0)
                try:
                    if self.faults is not None:
                        self.faults.fire(
                            "sharded.dispatch", key=key, cols=(col0, col1)
                        )
                    payload = np.ascontiguousarray(block[:, col0:col1])
                    entries.append(
                        (
                            self._issue_live(
                                (key, payload, col0, col1),
                                _SOLVE_ARR,
                                None,
                                key,
                                (col0, col1),
                            ),
                            col0,
                            col1,
                        )
                    )
                except BaseException as exc:  # noqa: BLE001 - drain first
                    failure = exc
                    break
            for fut, col0, col1 in entries:
                try:
                    block[:, col0:col1] = self._await(fut, "a pickled shard solve")
                except BaseException as exc:  # noqa: BLE001 - re-raise below
                    failure = failure or exc
        if failure is not None:
            raise failure

    # -- telemetry and lifecycle ----------------------------------------

    def worker_snapshots(self, timeout: float = 10.0) -> List[dict]:
        """Every live worker's :meth:`Telemetry.snapshot`, in rank order.

        After :meth:`shutdown` this returns the final snapshots captured
        while the workers drained, so post-mortem merges keep working.
        Ranks that are down (dead, or mid-respawn) are skipped rather
        than failing the whole fleet view.
        """
        with self._lock:
            closed = self._closed
        if closed:
            return list(self._final_snapshots)
        futures = [
            self._issue(rank, (), kind=_SNAPSHOT)
            for rank in range(self.num_workers)
            if self._live[rank] and self._procs[rank].is_alive()
        ]
        snapshots = []
        for fut in futures:
            try:
                snapshots.append(fut.result(timeout=timeout))
            except Exception:  # pragma: no cover - died while answering
                pass
        return snapshots

    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._procs)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers (capturing their final telemetry), free all shm."""
        with self._lock:
            if self._closed:
                return
        # The supervisor goes first, so a worker we stop on purpose is
        # not "healed" back into existence mid-shutdown.
        if self._supervisor is not None:
            self._supervisor.stop()
        # The stop message doubles as the final snapshot request.
        finals = []
        try:
            finals = [
                self._issue(rank, (), kind=_STOP)
                for rank in range(self.num_workers)
                if self._live[rank] and self._procs[rank].is_alive()
            ]
        except WorkerError:  # pragma: no cover - raced with failure
            pass
        deadline = time.perf_counter() + timeout
        for fut in finals:
            try:
                self._final_snapshots.append(
                    fut.result(timeout=max(0.1, deadline - time.perf_counter()))
                )
            except Exception:  # pragma: no cover - worker died mid-stop
                pass
        with self._lock:
            self._closed = True
            self._cv.notify_all()
        self._fail_pending(WorkerError("sharded executor shut down"))
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.perf_counter()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._collector_stop = True
        self._wake_collector()
        self._collector.join(timeout=2.0)
        self._pool.close()
        for q in self._tasks:
            q.close()
        with self._lock:
            conns, self._reader_conns = self._reader_conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for end in (self._wake_r, self._wake_w):
            try:
                end.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(workers={self.num_workers}, "
            f"alive={sum(p.is_alive() for p in self._procs)}, "
            f"closed={self._closed})"
        )
