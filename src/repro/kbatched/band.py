"""LAPACK band-storage helpers.

Band matrices are stored column-wise in the LAPACK convention so the
kernels here are directly comparable with the LAPACK routines they mirror
(and cross-checkable against SciPy in the test suite):

* **General band** (for ``gbtrf``/``gbtrs``): ``ab[kl + ku + i - j, j] =
  A[i, j]``, with ``kl`` extra rows of head-room on top for the fill-in that
  partial pivoting creates, giving a ``(2*kl + ku + 1, n)`` array.
* **Symmetric positive-definite band, lower** (for ``pbtrf``/``pbtrs``):
  ``ab[i - j, j] = A[i, j]`` for ``j <= i <= j + kd``, a ``(kd + 1, n)``
  array whose row 0 is the diagonal.
"""

from __future__ import annotations

from typing import Tuple

from repro.backend import Array, asnumpy, get_namespace
from repro.exceptions import ShapeError


def dense_band_widths(a: Array, tol: float = 0.0) -> Tuple[int, int]:
    """Return ``(kl, ku)``: number of sub- and super-diagonals of *a*.

    Entries with ``|a[i, j]| <= tol`` count as zero.  A zero matrix reports
    ``(0, 0)``.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {a.shape}")
    xp = get_namespace(a)
    keep = xp.nonzero(xp.abs(a) > tol)
    rows = asnumpy(keep[0])
    cols = asnumpy(keep[1])
    if rows.size == 0:
        return 0, 0
    kl = max(int((rows - cols).max()), 0)
    ku = max(int((cols - rows).max()), 0)
    return kl, ku


def dense_to_band(a: Array, kl: int, ku: int) -> Array:
    """Pack dense *a* into ``(kl + ku + 1, n)`` LAPACK band storage."""
    n = a.shape[0]
    if a.shape != (n, n):
        raise ShapeError(f"expected square matrix, got {a.shape}")
    xp = get_namespace(a)
    ab = xp.zeros((kl + ku + 1, n), dtype=a.dtype)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(n, j + kl + 1)
        ab[ku + lo - j : ku + hi - j, j] = a[lo:hi, j]
    return ab


def dense_to_lu_band(a: Array, kl: int, ku: int) -> Array:
    """Pack *a* into ``(2*kl + ku + 1, n)`` storage with fill-in head-room.

    Rows ``0..kl-1`` are the zero-initialized fill area that ``gbtrf``'s row
    interchanges populate; the matrix itself sits in rows ``kl..2*kl+ku``.
    """
    n = a.shape[0]
    xp = get_namespace(a)
    ab = xp.zeros((2 * kl + ku + 1, n), dtype=a.dtype)
    ab[kl:, :] = dense_to_band(a, kl, ku)
    return ab


def band_to_dense(ab: Array, kl: int, ku: int) -> Array:
    """Unpack ``(kl + ku + 1, n)`` band storage back to a dense matrix."""
    if ab.shape[0] != kl + ku + 1:
        raise ShapeError(
            f"band storage has {ab.shape[0]} rows, expected kl+ku+1={kl + ku + 1}"
        )
    n = ab.shape[1]
    xp = get_namespace(ab)
    a = xp.zeros((n, n), dtype=ab.dtype)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(n, j + kl + 1)
        a[lo:hi, j] = ab[ku + lo - j : ku + hi - j, j]
    return a


def spd_dense_to_band_lower(a: Array, kd: int) -> Array:
    """Pack the lower triangle of SPD *a* into ``(kd + 1, n)`` storage."""
    n = a.shape[0]
    if a.shape != (n, n):
        raise ShapeError(f"expected square matrix, got {a.shape}")
    xp = get_namespace(a)
    ab = xp.zeros((kd + 1, n), dtype=a.dtype)
    for j in range(n):
        hi = min(n, j + kd + 1)
        ab[0 : hi - j, j] = a[j:hi, j]
    return ab


def spd_dense_to_band_upper(a: Array, kd: int) -> Array:
    """Pack the upper triangle of SPD *a* into ``(kd + 1, n)`` storage,
    with ``ab[kd + i - j, j] = A[i, j]`` (row ``kd`` = the diagonal)."""
    n = a.shape[0]
    if a.shape != (n, n):
        raise ShapeError(f"expected square matrix, got {a.shape}")
    xp = get_namespace(a)
    ab = xp.zeros((kd + 1, n), dtype=a.dtype)
    for j in range(n):
        lo = max(0, j - kd)
        ab[kd + lo - j : kd + 1, j] = a[lo : j + 1, j]
    return ab


def spd_band_upper_to_dense(ab: Array) -> Array:
    """Unpack upper SPD band storage to a dense symmetric matrix."""
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    xp = get_namespace(ab)
    a = xp.zeros((n, n), dtype=ab.dtype)
    for j in range(n):
        lo = max(0, j - kd)
        a[lo : j + 1, j] = ab[kd + lo - j : kd + 1, j]
        a[j, lo : j + 1] = ab[kd + lo - j : kd + 1, j]
    return a


def spd_band_lower_to_dense(ab: Array) -> Array:
    """Unpack lower SPD band storage to a dense symmetric matrix."""
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    xp = get_namespace(ab)
    a = xp.zeros((n, n), dtype=ab.dtype)
    for j in range(n):
        hi = min(n, j + kd + 1)
        a[j:hi, j] = ab[0 : hi - j, j]
        a[j, j:hi] = ab[0 : hi - j, j]
    return a
