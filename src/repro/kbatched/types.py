"""Tag types mirroring KokkosBatched's template parameters.

The C++ API selects behaviour with tag template parameters
(``KokkosBatched::Trans::NoTranspose`` etc.); here they are enums passed as
keyword arguments, keeping ported call sites recognizable.
"""

from __future__ import annotations

import enum


class Uplo(enum.Enum):
    """Which triangle of a symmetric matrix is stored (``ArgUplo``)."""

    LOWER = "L"
    UPPER = "U"


class Trans(enum.Enum):
    """Transposition mode of an operand (``ArgTrans``)."""

    NO_TRANSPOSE = "N"
    TRANSPOSE = "T"


class Side(enum.Enum):
    """Side of a triangular multiply/solve."""

    LEFT = "L"
    RIGHT = "R"


class Diag(enum.Enum):
    """Whether a triangular matrix has an implicit unit diagonal."""

    UNIT = "U"
    NON_UNIT = "N"


class Algo(enum.Enum):
    """Algorithm variant (``ArgAlgo``).

    The paper only exercises the ``Unblocked`` variants (cache blocking is
    mentioned as a possible future optimization for ``gbtrs``); ``Blocked``
    is accepted and currently dispatches to the same unblocked kernels.
    """

    UNBLOCKED = "Unblocked"
    BLOCKED = "Blocked"
