"""Tag types mirroring KokkosBatched's template parameters.

The C++ API selects behaviour with tag template parameters
(``KokkosBatched::Trans::NoTranspose`` etc.); here they are enums passed as
keyword arguments, keeping ported call sites recognizable.
"""

from __future__ import annotations

import enum
import threading
import warnings


class Uplo(enum.Enum):
    """Which triangle of a symmetric matrix is stored (``ArgUplo``)."""

    LOWER = "L"
    UPPER = "U"


class Trans(enum.Enum):
    """Transposition mode of an operand (``ArgTrans``)."""

    NO_TRANSPOSE = "N"
    TRANSPOSE = "T"


class Side(enum.Enum):
    """Side of a triangular multiply/solve."""

    LEFT = "L"
    RIGHT = "R"


class Diag(enum.Enum):
    """Whether a triangular matrix has an implicit unit diagonal."""

    UNIT = "U"
    NON_UNIT = "N"


class Algo(enum.Enum):
    """Algorithm variant (``ArgAlgo``).

    The paper only exercises the ``Unblocked`` variants (cache blocking is
    mentioned as a possible future optimization for ``gbtrs``); ``Blocked``
    is accepted and currently dispatches to the same unblocked kernels.
    """

    UNBLOCKED = "Unblocked"
    BLOCKED = "Blocked"


_BLOCKED_FALLBACK_WARNED: set = set()
_BLOCKED_FALLBACK_LOCK = threading.Lock()


def warn_blocked_fallback(kernel: str) -> None:
    """Emit a one-time :class:`PendingDeprecationWarning` when *kernel*
    receives ``Algo.BLOCKED`` but dispatches to its unblocked variant.

    The aliasing used to be silent, which let perf-model users attribute
    Table III "Blocked" timings to code that never ran.  The warning fires
    once per kernel name per process; tests reset the memo via
    :func:`_reset_blocked_fallback_warnings`.
    """
    with _BLOCKED_FALLBACK_LOCK:
        if kernel in _BLOCKED_FALLBACK_WARNED:
            return
        _BLOCKED_FALLBACK_WARNED.add(kernel)
    warnings.warn(
        f"Algo.BLOCKED is not implemented for {kernel}; falling back to the "
        f"unblocked kernel (identical numerics, unblocked performance "
        f"characteristics — read Table III attributions as UNBLOCKED)",
        PendingDeprecationWarning,
        stacklevel=3,
    )


def _reset_blocked_fallback_warnings() -> None:
    """Clear the one-time warning memo (test helper)."""
    with _BLOCKED_FALLBACK_LOCK:
        _BLOCKED_FALLBACK_WARNED.clear()
