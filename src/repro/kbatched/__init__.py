"""Batched serial LAPACK/BLAS kernels — the Kokkos-kernels analogue.

This subpackage reproduces the paper's first contribution: *batched serial*
versions of the LAPACK solvers that Kokkos-kernels lacked —

======== =============================================== ==================
 kernel   matrix type                                     paper reference
======== =============================================== ==================
 getrf/s  general (dense LU, partial pivoting)            §II-B1, Listing 2
 gbtrf/s  general banded                                  Table I
 pbtrf/s  positive-definite symmetric banded (Cholesky)   Table I
 pttrf/s  positive-definite symmetric tridiagonal (LDLᵀ)  Listing 1
======== =============================================== ==================

plus the BLAS pieces the spline builder composes them with (``gemm``,
``gemv``), the COO sparse-storage class of Listing 5 and the COO ``spmv``
of Listing 6.

Every solver comes in two backends:

* ``serial_*`` — operates on a *single* right-hand side with explicit
  scalar loops; a line-by-line port of the paper's
  ``KokkosBatched::Serial*`` internal kernels.  These run inside
  :func:`repro.xspace.parallel_for` over the batch index, exactly like
  Listing 2 / 4 / 6.
* plain ``*`` — operates on an ``(n, batch)`` right-hand-side block with
  the batch axis vectorized through NumPy.  The matrix-dimension loop stays
  sequential (the algorithms are "intrinsically sequential" along the
  matrix, §II-C1), so each step is one O(batch) vector operation.  This is
  the performance backend, playing the role the GPU plays in the paper.

All solve kernels follow LAPACK's **in-place** convention: ``b`` holds the
right-hand sides on entry and the solutions on exit — the memory-efficiency
property the paper cites as the reason for choosing Kokkos-kernels over
Ginkgo.
"""

from repro.kbatched.types import (
    Algo,
    Diag,
    Side,
    Trans,
    Uplo,
    warn_blocked_fallback,
)
from repro.kbatched.band import (
    band_to_dense,
    dense_band_widths,
    dense_to_band,
    dense_to_lu_band,
)
from repro.kbatched.getrf import getrf, serial_getrf
from repro.kbatched.getrs import getrs, serial_getrs
from repro.kbatched.gbtrf import gbtrf, serial_gbtrf
from repro.kbatched.gbtrs import gbtrs, serial_gbtrs
from repro.kbatched.pbtrf import pbtrf, serial_pbtrf
from repro.kbatched.pbtrs import pbtrs, serial_pbtrs
from repro.kbatched.pttrf import pttrf, serial_pttrf
from repro.kbatched.pttrs import pttrs, serial_pttrs
from repro.kbatched.blas import axpy, gemm, gemv, serial_gemv, serial_gemm
from repro.kbatched.trsm import serial_trsv, trsm
from repro.kbatched.batched_dense import (
    batched_getrf,
    batched_getrs,
    batched_pttrf,
    batched_pttrs,
)
from repro.kbatched.coo import Coo
from repro.kbatched.spmv import coo_spmm, serial_coo_spmv

__all__ = [
    "Uplo",
    "Trans",
    "Algo",
    "Side",
    "Diag",
    "warn_blocked_fallback",
    "dense_to_band",
    "dense_to_lu_band",
    "band_to_dense",
    "dense_band_widths",
    "getrf",
    "serial_getrf",
    "getrs",
    "serial_getrs",
    "gbtrf",
    "serial_gbtrf",
    "gbtrs",
    "serial_gbtrs",
    "pbtrf",
    "serial_pbtrf",
    "pbtrs",
    "serial_pbtrs",
    "pttrf",
    "serial_pttrf",
    "pttrs",
    "serial_pttrs",
    "gemm",
    "gemv",
    "axpy",
    "serial_gemv",
    "serial_gemm",
    "trsm",
    "serial_trsv",
    "batched_getrf",
    "batched_getrs",
    "batched_pttrf",
    "batched_pttrs",
    "Coo",
    "coo_spmm",
    "serial_coo_spmv",
]
