"""``pttrs`` — solve ``A x = b`` given the LDLᵀ factorization from ``pttrf``.

:func:`serial_pttrs` is the line-by-line port of the paper's Listing 1
(``SerialPttrsInternal<Uplo::Lower, Algo::Pttrs::Unblocked>::invoke``): a
forward substitution with the unit bidiagonal ``L``, a combined
``D``-scaling and backward substitution with ``Lᵀ`` — strictly sequential
along the matrix dimension, in place on ``b``.

:func:`pttrs` applies the identical recurrence to an ``(n, batch)`` block
with every step vectorized across the batch axis — the role the
``parallel_for`` over batches plays on the GPU.
"""

from __future__ import annotations

from repro.backend import Array
from repro.exceptions import ShapeError
from repro.kbatched.types import Algo, Uplo, warn_blocked_fallback


def serial_pttrs(
    d: Array,
    e: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
    algo: Algo = Algo.UNBLOCKED,
) -> int:
    """Solve for a single right-hand side, in place.

    Parameters
    ----------
    d, e:
        Factorized diagonal / multipliers from :func:`~repro.kbatched.pttrf`.
        With ``uplo=UPPER`` the factorization is interpreted as ``UᵀDU``
        with ``e`` the super-diagonal multipliers — the arithmetic is
        identical for a symmetric matrix, matching LAPACK.
    b:
        Right-hand side of length ``n``; overwritten with the solution.

    Returns
    -------
    int
        0 on success (KokkosBatched convention).
    """
    if algo is Algo.BLOCKED:
        warn_blocked_fallback("pttrs")
    del uplo, algo  # single arithmetic path, kept for API fidelity
    n = d.shape[0]
    if b.shape[0] != n:
        raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
    if n == 0:
        return 0
    # Solve A * X = B using the factorization L * D * L**T (Listing 1)
    for i in range(1, n):
        b[i] -= e[i - 1] * b[i - 1]
    b[n - 1] /= d[n - 1]
    for i in range(n - 2, -1, -1):
        b[i] = b[i] / d[i] - b[i + 1] * e[i]
    return 0


def pttrs(
    d: Array,
    e: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
) -> int:
    """Solve for an ``(n, batch)`` right-hand-side block, in place.

    Each of the ``2n`` recurrence steps is a single vector operation over
    the batch axis, so the Python-level loop length is ``O(n)`` independent
    of the batch size.
    """
    del uplo
    n = d.shape[0]
    if b.ndim != 2 or b.shape[0] != n:
        raise ShapeError(f"b must have shape (n={n}, batch), got {b.shape}")
    if n == 0:
        return 0
    for i in range(1, n):
        b[i, ...] -= e[i - 1] * b[i - 1, ...]
    b[n - 1, ...] /= d[n - 1]
    for i in range(n - 2, -1, -1):
        b[i, ...] /= d[i]
        b[i, ...] -= e[i] * b[i + 1, ...]
    return 0
