"""Dense BLAS kernels used by the spline builder.

``gemm``/``gemv`` mirror ``KokkosBlas::gemm`` / ``KokkosBatched::SerialGemv``
(the building blocks of the paper's Listings 2 and 4).  The vectorized
variants delegate the arithmetic to the operands' array-API namespace but
keep the exact ``C = alpha·op(A)·B + beta·C`` update semantics, in place on
the output — the in-place property is what lets the builder run without
per-step allocations.  Result dtype == operand dtype: ``alpha``/``beta``
are Python scalars, which the standard's promotion rules keep from
upcasting float32 operands.

The ``serial_*`` variants are scalar-loop reference implementations used
for per-batch fused kernels and for the test oracle.
"""

from __future__ import annotations

from repro.backend import Array, get_namespace, ordered_matmul
from repro.exceptions import ShapeError
from repro.kbatched.types import Trans


def _op(a: Array, trans: Trans) -> Array:
    return a if trans is Trans.NO_TRANSPOSE else a.T


def gemm(
    alpha: float,
    a: Array,
    b: Array,
    beta: float,
    c: Array,
    trans_a: Trans = Trans.NO_TRANSPOSE,
    trans_b: Trans = Trans.NO_TRANSPOSE,
) -> None:
    """``C <- alpha * op(A) @ op(B) + beta * C`` in place on *c*.

    Result dtype == dtype of *c* (no silent promotion).
    """
    opa, opb = _op(a, trans_a), _op(b, trans_b)
    if opa.shape[1] != opb.shape[0] or c.shape != (opa.shape[0], opb.shape[1]):
        raise ShapeError(
            f"gemm shape mismatch: op(A){opa.shape} op(B){opb.shape} C{c.shape}"
        )
    prod = opa @ opb
    if beta == 0.0:
        c[...] = prod * alpha
    else:
        c *= beta
        c += alpha * prod


def gemv(
    alpha: float,
    a: Array,
    x: Array,
    beta: float,
    y: Array,
    trans: Trans = Trans.NO_TRANSPOSE,
) -> None:
    """``y <- alpha * op(A) @ x + beta * y`` in place on *y*.

    ``x``/``y`` may be 1-D vectors or ``(len, batch)`` blocks; in the block
    case the product broadcasts across the batch axis, which is how the
    dense corner-block updates of the *fused* builder version are applied
    to all right-hand sides at once.  Result dtype == dtype of *y*.

    The block case deliberately avoids BLAS ``@`` on the NumPy reference
    backend: GEMM picks its blocking (and therefore its reduction order
    over ``k``) from the batch width, so the same column solved inside a
    wider batch can differ by an ulp.  The non-optimized einsum behind
    ``ordered_matmul`` reduces ``k`` in a fixed order per output element
    regardless of batch width, which is what lets the process-sharded
    executor split a batch column-wise and still gather bitwise-identical
    coefficients.  At corner-block shapes (a few rows, huge batch) both are
    memory-bound, so the swap costs ~nothing.  Non-NumPy backends use their
    own ``matmul``; their reduction order is theirs to define.
    """
    xp = get_namespace(a, x, y)
    opa = _op(a, trans)
    if x.shape[0] != opa.shape[1] or y.shape[0] != opa.shape[0]:
        raise ShapeError(
            f"gemv shape mismatch: op(A){opa.shape} x{x.shape} y{y.shape}"
        )
    if x.ndim == 2:
        prod = ordered_matmul(xp, opa, x)
    else:
        prod = opa @ x
    if beta == 0.0:
        y[...] = prod * alpha
    else:
        y *= beta
        y += alpha * prod


def axpy(alpha: float, x: Array, y: Array) -> None:
    """``y <- alpha * x + y`` in place on *y* (result dtype == dtype of
    *y*)."""
    if x.shape != y.shape:
        raise ShapeError(f"axpy shape mismatch: x{x.shape} y{y.shape}")
    y += alpha * x


def serial_gemv(
    alpha: float,
    a: Array,
    x: Array,
    beta: float,
    y: Array,
    trans: Trans = Trans.NO_TRANSPOSE,
) -> int:
    """Scalar-loop ``gemv`` on a single vector pair (KokkosBatched serial).

    Result dtype == dtype of *y*.
    """
    opa = _op(a, trans)
    m, n = opa.shape
    if x.shape[0] != n or y.shape[0] != m:
        raise ShapeError(
            f"serial_gemv shape mismatch: op(A){opa.shape} x{x.shape} y{y.shape}"
        )
    for i in range(m):
        acc = 0.0
        for k in range(n):
            acc += opa[i, k] * x[k]
        y[i] = alpha * acc + beta * y[i]
    return 0


def serial_gemm(
    alpha: float,
    a: Array,
    b: Array,
    beta: float,
    c: Array,
) -> int:
    """Scalar-loop ``gemm`` (reference oracle; no transpose modes).

    Result dtype == dtype of *c*.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or c.shape != (m, n):
        raise ShapeError(f"serial_gemm shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            c[i, j] = alpha * acc + beta * c[i, j]
    return 0
