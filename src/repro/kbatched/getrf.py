"""``getrf`` — dense LU factorization with partial pivoting.

Two variants, selected by the ``algo`` tag as in KokkosBatched:

* ``Algo.UNBLOCKED`` — LAPACK ``dgetf2``: the rank-1-update loop.  In the
  spline builder this factorizes the tiny dense Schur complement ``δ'``
  (size = corner-block width, at most the spline degree), once at setup.
* ``Algo.BLOCKED`` — LAPACK ``dgetrf``-style right-looking blocked LU:
  panel factorization + triangular solve + GEMM trailing update.  The
  paper names cache-blocked solver variants as a future optimization
  (§V-B); this is the factorization-side counterpart.  It applies the
  same partial-pivoting strategy, so the factors agree with the
  unblocked variant to round-off (the trailing update is a single GEMM
  instead of a sequence of rank-1 updates, which reorders the sums).
"""

from __future__ import annotations

# NumPy is the pivot-index plumbing shim: ``ipiv`` is host int64 by
# contract.  Matrix arithmetic goes through the resolved namespace.
import numpy as np

from repro.backend import Array, get_namespace, outer
from repro.exceptions import ShapeError, SingularMatrixError
from repro.kbatched.trsm import trsm
from repro.kbatched.types import Algo, Diag, Uplo

#: Default panel width of the blocked algorithm.
DEFAULT_BLOCK = 32


def _getf2_panel(a: Array, col0: int, col1: int, ipiv: np.ndarray) -> None:
    """Factor the panel ``a[col0:, col0:col1]`` in place, swapping *full*
    rows of ``a`` (so previously-factored columns and the trailing block
    receive the interchanges immediately, as ``dgetrf`` does)."""
    xp = get_namespace(a)
    n = a.shape[0]
    for j in range(col0, col1):
        jp = j + int(xp.argmax(xp.abs(a[j:, j])))
        ipiv[j] = jp
        if complex(a[jp, j]) == 0:
            raise SingularMatrixError(f"zero pivot at column {j}", index=j)
        if jp != j:
            tmp = xp.asarray(a[j, ...], copy=True)
            a[j, ...] = a[jp, ...]
            a[jp, ...] = tmp
        if j < n - 1:
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < col1:
                a[j + 1 :, j + 1 : col1] -= outer(
                    xp, a[j + 1 :, j], a[j, j + 1 : col1]
                )


def serial_getrf(
    a: Array,
    algo: Algo = Algo.UNBLOCKED,
    block_size: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Factorize square *a* in place; return the pivot array ``ipiv``.

    On exit the strictly lower triangle of ``a`` holds the multipliers of
    the unit-lower ``L`` and the upper triangle holds ``U``;
    ``ipiv[j] = p`` records the row interchange performed at step ``j``.

    Raises
    ------
    SingularMatrixError
        On an exactly-zero pivot.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"getrf expects a square matrix, got shape {a.shape}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n = a.shape[0]
    ipiv = np.arange(n, dtype=np.int64)
    if algo is Algo.UNBLOCKED or n <= block_size:
        _getf2_panel(a, 0, n, ipiv)
        return ipiv
    for k in range(0, n, block_size):
        kb = min(block_size, n - k)
        # Panel LU (full-row interchanges happen inside).
        _getf2_panel(a, k, k + kb, ipiv)
        if k + kb < n:
            # TRSM: U12 = L11^{-1} A12 (unit lower triangular solve).
            trsm(a[k : k + kb, k : k + kb], a[k : k + kb, k + kb :],
                 uplo=Uplo.LOWER, diag=Diag.UNIT)
            # GEMM trailing update: A22 -= L21 @ U12.
            a[k + kb :, k + kb :] -= (
                a[k + kb :, k : k + kb] @ a[k : k + kb, k + kb :]
            )
    return ipiv


def getrf(
    a: Array,
    algo: Algo = Algo.UNBLOCKED,
    block_size: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Alias of :func:`serial_getrf`; the factorization is inherently serial."""
    return serial_getrf(a, algo=algo, block_size=block_size)
