"""``pbtrs`` — solve ``A x = b`` given the band Cholesky factor from
``pbtrf`` (LAPACK ``dpbtrs``): a banded forward substitution with ``L``
(or ``Uᵀ`` for upper storage) followed by a banded backward substitution
with ``Lᵀ`` (or ``U``), in place on ``b``.

:func:`serial_pbtrs` handles one right-hand side with scalar loops (the
KokkosBatched serial kernel); :func:`pbtrs` handles an ``(n, batch)`` block
with the batch axis vectorized — the inner band loop of length ``kd`` stays
scalar, so each matrix step costs ``kd`` vector operations.
"""

from __future__ import annotations

from repro.backend import Array
from repro.exceptions import ShapeError
from repro.kbatched.types import Algo, Uplo, warn_blocked_fallback


def _check(ab: Array, b: Array) -> int:
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    if b.shape[0] != n:
        raise ShapeError(f"b has leading extent {b.shape[0]}, expected n={n}")
    return kd


def _solve_upper(ab: Array, b: Array) -> None:
    """Solve ``UᵀU x = b`` from upper band storage (works for 1-D or 2-D
    ``b``; every scalar step broadcasts over the batch axis)."""
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    # Forward substitution with Uᵀ (lower): U[j-r, j] is at ab[kd - r, j].
    for j in range(n):
        lm = min(kd, j)
        for r in range(1, lm + 1):
            b[j, ...] -= ab[kd - r, j] * b[j - r, ...]
        b[j, ...] /= ab[kd, j]
    # Backward substitution with U: U[j, j+c] is at ab[kd - c, j + c].
    for j in range(n - 1, -1, -1):
        kn = min(kd, n - 1 - j)
        for c in range(1, kn + 1):
            b[j, ...] -= ab[kd - c, j + c] * b[j + c, ...]
        b[j, ...] /= ab[kd, j]


def serial_pbtrs(
    ab: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
    algo: Algo = Algo.UNBLOCKED,
) -> int:
    """Solve for a single right-hand side, in place. Returns 0 on success."""
    if algo is Algo.BLOCKED:
        warn_blocked_fallback("pbtrs")
    del algo
    kd = _check(ab, b)
    n = ab.shape[1]
    if uplo is Uplo.UPPER:
        _solve_upper(ab, b)
        return 0
    # Forward substitution: L y = b.
    for j in range(n):
        b[j] /= ab[0, j]
        kn = min(kd, n - 1 - j)
        for r in range(1, kn + 1):
            b[j + r] -= ab[r, j] * b[j]
    # Backward substitution: L^T x = y.
    for j in range(n - 1, -1, -1):
        kn = min(kd, n - 1 - j)
        acc = b[j]
        for r in range(1, kn + 1):
            acc -= ab[r, j] * b[j + r]
        b[j] = acc / ab[0, j]
    return 0


def pbtrs(
    ab: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
) -> int:
    """Solve for an ``(n, batch)`` right-hand-side block, in place."""
    kd = _check(ab, b)
    if b.ndim != 2:
        raise ShapeError(f"b must have shape (n, batch), got {b.shape}")
    n = ab.shape[1]
    if uplo is Uplo.UPPER:
        _solve_upper(ab, b)
        return 0
    for j in range(n):
        b[j, ...] /= ab[0, j]
        kn = min(kd, n - 1 - j)
        for r in range(1, kn + 1):
            b[j + r, ...] -= ab[r, j] * b[j, ...]
    for j in range(n - 1, -1, -1):
        kn = min(kd, n - 1 - j)
        for r in range(1, kn + 1):
            b[j, ...] -= ab[r, j] * b[j + r, ...]
        b[j, ...] /= ab[0, j]
    return 0
