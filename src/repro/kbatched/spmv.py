"""Sparse matrix–vector products on COO storage — the paper's Listing 6.

The key optimization of §IV-D: the dense corner-block ``gemv`` touched every
element of the right-hand sides, but the blocks have only a handful of
non-zeros, so iterating over the ``nnz`` coordinate list "drastically
reduces the number of operations" and suppresses the extra memory traffic
(§IV-D reports total bytes dropping from 3.16/2.37 GB back to 1.60/1.59 GB).
"""

from __future__ import annotations

from repro.backend import Array
from repro.exceptions import ShapeError
from repro.kbatched.coo import Coo


def serial_coo_spmv(alpha: float, a: Coo, x: Array, y: Array) -> int:
    """``y += alpha * A @ x`` for a single vector pair, looping over nnz.

    This is exactly the paper's in-kernel loop::

        for nz_idx in range(block.nnz()):
            y[rows_idx[nz]] += alpha * values[nz] * x[cols_idx[nz]]

    Duplicate coordinates accumulate, matching COO semantics.
    """
    if x.shape[0] != a.ncols or y.shape[0] != a.nrows:
        raise ShapeError(
            f"spmv shape mismatch: A{a.shape} x{x.shape} y{y.shape}"
        )
    for nz in range(a.nnz):
        r = int(a.rows_idx[nz])
        c = int(a.cols_idx[nz])
        y[r] += alpha * a.values[nz] * x[c]
    return 0


def coo_spmm(alpha: float, a: Coo, x: Array, y: Array) -> int:
    """``Y += alpha * A @ X`` for ``(n, batch)`` blocks, vectorized over batch.

    The outer loop runs over the (tiny) non-zero list; every step is one
    fused multiply-add across the batch axis.  With ``nnz ≈ 50`` and
    ``batch ≈ 1e5`` this replaces an ``O(N·batch)`` dense update by an
    ``O(nnz·batch)`` one — the same arithmetic saving as the paper's GPU
    kernel.
    """
    if x.ndim != 2 or y.ndim != 2:
        raise ShapeError("coo_spmm expects (n, batch) blocks")
    if x.shape[0] != a.ncols or y.shape[0] != a.nrows or x.shape[1] != y.shape[1]:
        raise ShapeError(
            f"spmm shape mismatch: A{a.shape} X{x.shape} Y{y.shape}"
        )
    for nz in range(a.nnz):
        r = int(a.rows_idx[nz])
        c = int(a.cols_idx[nz])
        y[r, ...] += (alpha * a.values[nz]) * x[c, ...]
    return 0
