"""``gbtrs`` — solve ``A x = b`` from the band LU factorization of
``gbtrf`` (LAPACK ``dgbtrs``, no-transpose): apply the recorded row
interchanges and the banded ``L`` forward sweep, then back-substitute with
the banded ``U`` (bandwidth ``kl + ku`` after fill-in).  In place on ``b``.

:func:`serial_gbtrs` is the per-RHS serial kernel; :func:`gbtrs` is the
batch-vectorized variant operating on ``(n, batch)`` blocks.  These solve
the non-uniform spline systems every time step, so unlike the
factorization they are performance-critical (Table V's non-uniform rows).
"""

from __future__ import annotations

# NumPy appears only as the ``ipiv`` plumbing shim (host int64 pivot
# indices); the solve arithmetic is namespace-agnostic.
import numpy as np

from repro.backend import Array, get_namespace, outer
from repro.exceptions import ShapeError
from repro.kbatched.types import Trans


def _check(ab: Array, kl: int, ku: int, b: Array, trans: Trans) -> int:
    del trans
    if ab.shape[0] != 2 * kl + ku + 1:
        raise ShapeError(
            f"LU band storage must have 2*kl+ku+1={2 * kl + ku + 1} rows, "
            f"got shape {ab.shape}"
        )
    n = ab.shape[1]
    if b.shape[0] != n:
        raise ShapeError(f"b has leading extent {b.shape[0]}, expected n={n}")
    return n


def serial_gbtrs(
    ab: Array,
    ipiv: np.ndarray,
    b: Array,
    kl: int,
    ku: int,
    trans: Trans = Trans.NO_TRANSPOSE,
) -> int:
    """Solve for a single right-hand side, in place. Returns 0 on success.

    ``trans=TRANSPOSE`` solves ``Aᵀ x = b``: forward sweep with ``Uᵀ``,
    then the ``L`` multipliers applied transposed with the row
    interchanges undone in reverse order (LAPACK ``dgbtrs('T', ...)``).
    """
    n = _check(ab, kl, ku, b, trans)
    kv = kl + ku
    if trans is Trans.TRANSPOSE:
        for j in range(n):
            lm = min(kv, j)
            for r in range(1, lm + 1):
                b[j] -= ab[kv - r, j] * b[j - r]
            b[j] /= ab[kv, j]
        if kl > 0:
            for j in range(n - 2, -1, -1):
                km = min(kl, n - 1 - j)
                for r in range(1, km + 1):
                    b[j] -= ab[kv + r, j] * b[j + r]
                jp = int(ipiv[j])
                if jp != j:
                    tj = b[j]
                    b[j] = b[jp]
                    b[jp] = tj
        return 0
    if kl > 0:
        for j in range(n - 1):
            jp = int(ipiv[j])
            if jp != j:
                tj = b[j]
                b[j] = b[jp]
                b[jp] = tj
            km = min(kl, n - 1 - j)
            for r in range(1, km + 1):
                b[j + r] -= ab[kv + r, j] * b[j]
    for j in range(n - 1, -1, -1):
        b[j] /= ab[kv, j]
        lm = min(kv, j)
        for r in range(1, lm + 1):
            b[j - r] -= ab[kv - r, j] * b[j]
    return 0


def gbtrs(
    ab: Array,
    ipiv: np.ndarray,
    b: Array,
    kl: int,
    ku: int,
    trans: Trans = Trans.NO_TRANSPOSE,
) -> int:
    """Solve for an ``(n, batch)`` right-hand-side block, in place.

    Row interchanges become row swaps of the block; every elimination step
    is a rank-1 update of at most ``max(kl, kl + ku)`` block rows.
    """
    n = _check(ab, kl, ku, b, trans)
    if b.ndim != 2:
        raise ShapeError(f"b must have shape (n, batch), got {b.shape}")
    xp = get_namespace(ab, b)
    kv = kl + ku
    if trans is Trans.TRANSPOSE:
        for j in range(n):
            lm = min(kv, j)
            if lm > 0:
                b[j, ...] -= ab[kv - lm : kv, j] @ b[j - lm : j, ...]
            b[j, ...] /= ab[kv, j]
        if kl > 0:
            for j in range(n - 2, -1, -1):
                km = min(kl, n - 1 - j)
                if km > 0:
                    b[j, ...] -= (
                        ab[kv + 1 : kv + km + 1, j] @ b[j + 1 : j + km + 1, ...]
                    )
                jp = int(ipiv[j])
                if jp != j:
                    tmp = xp.asarray(b[j, ...], copy=True)
                    b[j, ...] = b[jp, ...]
                    b[jp, ...] = tmp
        return 0
    if kl > 0:
        for j in range(n - 1):
            jp = int(ipiv[j])
            if jp != j:
                tmp = xp.asarray(b[j, ...], copy=True)
                b[j, ...] = b[jp, ...]
                b[jp, ...] = tmp
            km = min(kl, n - 1 - j)
            if km > 0:
                b[j + 1 : j + km + 1, ...] -= outer(
                    xp, ab[kv + 1 : kv + km + 1, j], b[j, ...]
                )
    for j in range(n - 1, -1, -1):
        b[j, ...] /= ab[kv, j]
        lm = min(kv, j)
        if lm > 0:
            b[j - lm : j, ...] -= outer(xp, ab[kv - lm : kv, j], b[j, ...])
    return 0
