"""``pttrf`` — LDLᵀ factorization of a symmetric positive-definite
tridiagonal matrix (LAPACK ``dpttrf``).

The matrix is described by its diagonal ``d`` (length ``n``) and
off-diagonal ``e`` (length ``n - 1``).  On exit ``d`` holds the diagonal of
``D`` and ``e`` the sub-diagonal multipliers of the unit-bidiagonal ``L``
such that ``A = L · diag(d) · Lᵀ``.

The factorization runs once at setup, on the host, as the paper does
(§II-B1: "we take advantage of existing CPU libraries to factorize the
matrix and copy the result to the device") — so only a serial version is
needed; the batched work lives entirely in :mod:`repro.kbatched.pttrs`.
"""

from __future__ import annotations

from repro.backend import Array
from repro.exceptions import NotPositiveDefiniteError, ShapeError


def serial_pttrf(d: Array, e: Array) -> None:
    """Factorize in place. ``d``/``e`` are overwritten with ``D`` and ``L``.

    Raises
    ------
    NotPositiveDefiniteError
        If a pivot is not strictly positive (the matrix is not SPD).
    """
    n = d.shape[0]
    if e.shape[0] != max(n - 1, 0):
        raise ShapeError(f"e has length {e.shape[0]}, expected n-1={n - 1}")
    if n == 0:
        return
    if d[0] <= 0.0:
        raise NotPositiveDefiniteError("leading pivot is not positive", index=0)
    for i in range(n - 1):
        ei = e[i]
        e[i] = ei / d[i]
        d[i + 1] -= e[i] * ei
        if d[i + 1] <= 0.0:
            raise NotPositiveDefiniteError(
                f"pivot {i + 1} is not positive after elimination", index=i + 1
            )


def pttrf(d: Array, e: Array) -> None:
    """Alias of :func:`serial_pttrf`; the factorization is inherently serial."""
    serial_pttrf(d, e)
