"""``pbtrf`` — Cholesky factorization of a symmetric positive-definite band
matrix (LAPACK ``dpbtf2``, unblocked).

Both LAPACK storage modes are supported:

* **lower** — ``ab[i - j, j] = A[i, j]`` (row 0 = diagonal); on exit
  ``ab`` holds the band of ``L`` with ``A = L Lᵀ``;
* **upper** — ``ab[kd + i - j, j] = A[i, j]`` (row ``kd`` = diagonal); on
  exit ``ab`` holds the band of ``U`` with ``A = Uᵀ U``.

Like ``pttrf``, this runs once at setup on the host (§II-B1), so only the
serial variant exists.
"""

from __future__ import annotations

import math

from repro.backend import Array
from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.kbatched.types import Uplo


def serial_pbtrf(ab: Array, uplo: Uplo = Uplo.LOWER) -> None:
    """Factorize in place (``L Lᵀ`` for lower storage, ``Uᵀ U`` for upper)."""
    if ab.ndim != 2:
        raise ShapeError(f"band storage must be 2-D, got shape {ab.shape}")
    if uplo is Uplo.UPPER:
        _pbtf2_upper(ab)
        return
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    for j in range(n):
        ajj = float(ab[0, j])
        if ajj <= 0.0:
            raise NotPositiveDefiniteError(
                f"pivot {j} is not positive during Cholesky", index=j
            )
        ajj = math.sqrt(ajj)
        ab[0, j] = ajj
        kn = min(kd, n - 1 - j)  # sub-diagonal entries present in column j
        if kn > 0:
            ab[1 : kn + 1, j] /= ajj
            # Rank-1 update of the trailing (kn x kn) band block:
            # A[j+r, j+c] -= L[j+r, j] * L[j+c, j]  for 1 <= c <= r <= kn.
            for c in range(1, kn + 1):
                ab[0 : kn - c + 1, j + c] -= ab[c, j] * ab[c : kn + 1, j]


def _pbtf2_upper(ab: Array) -> None:
    """Upper-storage variant: row ``kd`` is the diagonal, ``U[j, j+c]`` sits
    at ``ab[kd - c, j + c]``."""
    kd = ab.shape[0] - 1
    n = ab.shape[1]
    for j in range(n):
        ajj = float(ab[kd, j])
        if ajj <= 0.0:
            raise NotPositiveDefiniteError(
                f"pivot {j} is not positive during Cholesky", index=j
            )
        ajj = math.sqrt(ajj)
        ab[kd, j] = ajj
        kn = min(kd, n - 1 - j)
        if kn > 0:
            # Scale row j of U: U[j, j+c] at ab[kd - c, j + c].
            for c in range(1, kn + 1):
                ab[kd - c, j + c] /= ajj
            # Update A[j+r, j+c] -= U[j, j+r] * U[j, j+c], 1 <= r <= c <= kn.
            for c in range(1, kn + 1):
                ucj = ab[kd - c, j + c]
                if float(ucj) != 0.0:
                    # Targets ab[kd-c+r, j+c] for r = 1..c; sources
                    # U[j, j+r] = ab[kd - r, j + r].
                    for r in range(1, c + 1):
                        ab[kd - c + r, j + c] -= ab[kd - r, j + r] * ucj


def pbtrf(ab: Array, uplo: Uplo = Uplo.LOWER) -> None:
    """Alias of :func:`serial_pbtrf`; the factorization is inherently serial."""
    serial_pbtrf(ab, uplo=uplo)
