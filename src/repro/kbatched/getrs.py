"""``getrs`` — solve ``A x = b`` from the LU factorization of ``getrf``
(LAPACK ``dgetrs``, no-transpose): apply the row interchanges, forward
substitution with the unit-lower ``L``, backward substitution with ``U``.
In place on ``b``.

This is the second batched kernel of the paper's Listing 2
(``KokkosBatched::SerialGetrs``): it solves the Schur-complement system
``δ' x₁ = b₁ − λ x₀'`` for every batch column.
"""

from __future__ import annotations

# NumPy appears only as the ``ipiv`` plumbing shim (host int64 pivot
# indices); the solve arithmetic is namespace-agnostic.
import numpy as np

from repro.backend import Array, get_namespace
from repro.exceptions import ShapeError
from repro.kbatched.types import Algo, Trans, warn_blocked_fallback


def _check(a: Array, ipiv: np.ndarray, b: Array, trans: Trans) -> int:
    del trans
    n = a.shape[0]
    if a.shape != (n, n):
        raise ShapeError(f"factorized matrix must be square, got {a.shape}")
    if ipiv.shape[0] != n:
        raise ShapeError(f"ipiv has length {ipiv.shape[0]}, expected {n}")
    if b.shape[0] != n:
        raise ShapeError(f"b has leading extent {b.shape[0]}, expected n={n}")
    return n


def serial_getrs(
    a: Array,
    ipiv: np.ndarray,
    b: Array,
    trans: Trans = Trans.NO_TRANSPOSE,
    algo: Algo = Algo.UNBLOCKED,
) -> int:
    """Solve for a single right-hand side, in place. Returns 0 on success.

    ``trans=TRANSPOSE`` solves ``Aᵀ x = b`` from the same factorization:
    ``Uᵀ y = b``, ``Lᵀ z = y``, then the row interchanges applied in
    reverse order.
    """
    if algo is Algo.BLOCKED:
        warn_blocked_fallback("getrs")
    del algo
    n = _check(a, ipiv, b, trans)
    if trans is Trans.TRANSPOSE:
        # U^T y = b (lower, non-unit).
        for i in range(n):
            acc = b[i]
            for k in range(i):
                acc -= a[k, i] * b[k]
            b[i] = acc / a[i, i]
        # L^T z = y (upper, unit).
        for i in range(n - 1, -1, -1):
            acc = b[i]
            for k in range(i + 1, n):
                acc -= a[k, i] * b[k]
            b[i] = acc
        # x = P z: undo the interchanges in reverse order.
        for j in range(n - 1, -1, -1):
            jp = int(ipiv[j])
            if jp != j:
                tj = b[j]
                b[j] = b[jp]
                b[jp] = tj
        return 0
    # Apply row interchanges (LASWP).
    for j in range(n):
        jp = int(ipiv[j])
        if jp != j:
            tj = b[j]
            b[j] = b[jp]
            b[jp] = tj
    # L y = b (unit lower).
    for i in range(1, n):
        acc = b[i]
        for k in range(i):
            acc -= a[i, k] * b[k]
        b[i] = acc
    # U x = y.
    for i in range(n - 1, -1, -1):
        acc = b[i]
        for k in range(i + 1, n):
            acc -= a[i, k] * b[k]
        b[i] = acc / a[i, i]
    return 0


def getrs(
    a: Array,
    ipiv: np.ndarray,
    b: Array,
    trans: Trans = Trans.NO_TRANSPOSE,
) -> int:
    """Solve for an ``(n, batch)`` right-hand-side block, in place."""
    n = _check(a, ipiv, b, trans)
    if b.ndim != 2:
        raise ShapeError(f"b must have shape (n, batch), got {b.shape}")
    xp = get_namespace(a, b)
    if trans is Trans.TRANSPOSE:
        for i in range(n):
            if i > 0:
                b[i, ...] -= a[:i, i] @ b[:i, ...]
            b[i, ...] /= a[i, i]
        for i in range(n - 1, -1, -1):
            if i < n - 1:
                b[i, ...] -= a[i + 1 :, i] @ b[i + 1 :, ...]
        for j in range(n - 1, -1, -1):
            jp = int(ipiv[j])
            if jp != j:
                tmp = xp.asarray(b[j, ...], copy=True)
                b[j, ...] = b[jp, ...]
                b[jp, ...] = tmp
        return 0
    for j in range(n):
        jp = int(ipiv[j])
        if jp != j:
            tmp = xp.asarray(b[j, ...], copy=True)
            b[j, ...] = b[jp, ...]
            b[jp, ...] = tmp
    for i in range(1, n):
        b[i, ...] -= a[i, :i] @ b[:i, ...]
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            b[i, ...] -= a[i, i + 1 :] @ b[i + 1 :, ...]
        b[i, ...] /= a[i, i]
    return 0
