"""COO (coordinate-list) sparse storage — the paper's Listing 5.

The builder's corner blocks (``λ`` and the precomputed ``β = Q⁻¹γ``) are
tiny and extremely sparse (§IV-D: for degree 3 / N=1000 the (1, 999)
bottom-left block has 2 non-zeros and the (999, 1) top-right block 48).
COO was chosen in the paper precisely to serve both the row-access and the
column-access side without maintaining CSR *and* CSC.

Coordinates are always host NumPy ``int64`` arrays (kernels consume them
as Python ints); *values* live in whichever array-API namespace they
arrive in, and their floating dtype — real **or complex**, single **or**
double — is preserved exactly.  Only genuine integer/boolean inputs are
promoted, to the namespace's default real floating dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# NumPy here is an index-plumbing/ingress shim only: coordinate arrays are
# host int64 by contract.  Values go through the resolved namespace.
import numpy as np

from repro.backend import (
    add_at_2d,
    ascopy,
    asnumpy,
    astype,
    get_namespace,
    is_floating,
    is_integral,
    take_2d,
)
from repro.exceptions import ShapeError


@dataclass
class Coo:
    """A COO sparse matrix: parallel arrays of row index / col index / value.

    Mirrors the paper's ``Coo`` struct: ``m_nrows``/``m_ncols`` extents,
    ``m_rows_idx``/``m_cols_idx`` coordinates and ``m_values`` entries, all
    accessible inside kernels.
    """

    nrows: int
    ncols: int
    rows_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    cols_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    values: "np.ndarray" = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        self.rows_idx = np.asarray(self.rows_idx, dtype=np.int64)
        self.cols_idx = np.asarray(self.cols_idx, dtype=np.int64)
        xp = get_namespace(self.values, default=np)
        values = xp.asarray(self.values)
        # Preserve every floating dtype — float32 solve paths and complex
        # corner math alike.  Promote only genuine integer/boolean input,
        # to the namespace's default real floating dtype.
        if is_integral(xp, values.dtype):
            values = astype(xp, values, xp.float64)
        elif not is_floating(xp, values.dtype):
            raise ShapeError(
                f"Coo values must be floating-point or integer, got dtype "
                f"{values.dtype}"
            )
        self.values = values
        if not (self.rows_idx.shape == self.cols_idx.shape == self.values.shape):
            raise ShapeError(
                "rows_idx / cols_idx / values must have identical shapes, got "
                f"{self.rows_idx.shape}/{self.cols_idx.shape}/{self.values.shape}"
            )
        if self.rows_idx.size:
            if int(self.rows_idx.min()) < 0 or int(self.rows_idx.max()) >= self.nrows:
                raise ShapeError("row index out of range")
            if int(self.cols_idx.min()) < 0 or int(self.cols_idx.max()) >= self.ncols:
                raise ShapeError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.rows_idx.size)

    @property
    def shape(self):
        return (self.nrows, self.ncols)

    @classmethod
    def from_dense(cls, a, drop_tol: float = 0.0) -> "Coo":
        """Build from a dense matrix, dropping entries with ``|v| <= drop_tol``.

        The value dtype of *a* is preserved (result dtype == input dtype).
        The drop tolerance is how the exponentially-decaying ``β`` block is
        compressed to its ~48 significant entries (see
        ``benchmarks/bench_ablation_droptol.py`` for the accuracy/nnz
        trade-off).
        """
        if a.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
        xp = get_namespace(a)
        keep = xp.nonzero(xp.abs(a) > drop_tol)
        rows = asnumpy(keep[0]).astype(np.int64)
        cols = asnumpy(keep[1]).astype(np.int64)
        return cls(a.shape[0], a.shape[1], rows, cols,
                   take_2d(xp, a, rows, cols))

    def to_dense(self):
        """Expand to a dense matrix (summing duplicate coordinates).

        Result dtype == stored value dtype.
        """
        xp = get_namespace(self.values)
        out = xp.zeros(self.shape, dtype=self.values.dtype)
        add_at_2d(xp, out, self.rows_idx, self.cols_idx, self.values)
        return out

    def transpose(self) -> "Coo":
        """Return the transpose; COO makes this a metadata swap."""
        return Coo(self.ncols, self.nrows, self.cols_idx.copy(),
                   self.rows_idx.copy(), ascopy(self.values))

    def to_namespace(self, xp) -> "Coo":
        """Stage a copy whose values live in namespace *xp* (coordinates
        stay host NumPy by contract)."""
        if get_namespace(self.values) is xp:
            return self
        return Coo(self.nrows, self.ncols, self.rows_idx.copy(),
                   self.cols_idx.copy(), xp.asarray(asnumpy(self.values)))
