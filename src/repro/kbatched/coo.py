"""COO (coordinate-list) sparse storage — the paper's Listing 5.

The builder's corner blocks (``λ`` and the precomputed ``β = Q⁻¹γ``) are
tiny and extremely sparse (§IV-D: for degree 3 / N=1000 the (1, 999)
bottom-left block has 2 non-zeros and the (999, 1) top-right block 48).
COO was chosen in the paper precisely to serve both the row-access and the
column-access side without maintaining CSR *and* CSC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError


@dataclass
class Coo:
    """A COO sparse matrix: parallel arrays of row index / col index / value.

    Mirrors the paper's ``Coo`` struct: ``m_nrows``/``m_ncols`` extents,
    ``m_rows_idx``/``m_cols_idx`` coordinates and ``m_values`` entries, all
    accessible inside kernels.
    """

    nrows: int
    ncols: int
    rows_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    cols_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        self.rows_idx = np.asarray(self.rows_idx, dtype=np.int64)
        self.cols_idx = np.asarray(self.cols_idx, dtype=np.int64)
        values = np.asarray(self.values)
        # Preserve floating dtypes (float32 solve paths); promote the rest.
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(np.float64)
        self.values = values
        if not (self.rows_idx.shape == self.cols_idx.shape == self.values.shape):
            raise ShapeError(
                "rows_idx / cols_idx / values must have identical shapes, got "
                f"{self.rows_idx.shape}/{self.cols_idx.shape}/{self.values.shape}"
            )
        if self.values.size:
            if self.rows_idx.min(initial=0) < 0 or self.rows_idx.max(initial=0) >= self.nrows:
                raise ShapeError("row index out of range")
            if self.cols_idx.min(initial=0) < 0 or self.cols_idx.max(initial=0) >= self.ncols:
                raise ShapeError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.size)

    @property
    def shape(self):
        return (self.nrows, self.ncols)

    @classmethod
    def from_dense(cls, a: np.ndarray, drop_tol: float = 0.0) -> "Coo":
        """Build from a dense matrix, dropping entries with ``|v| <= drop_tol``.

        The drop tolerance is how the exponentially-decaying ``β`` block is
        compressed to its ~48 significant entries (see
        ``benchmarks/bench_ablation_droptol.py`` for the accuracy/nnz
        trade-off).
        """
        if a.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
        rows, cols = np.nonzero(np.abs(a) > drop_tol)
        return cls(a.shape[0], a.shape[1], rows, cols, a[rows, cols])

    def to_dense(self) -> np.ndarray:
        """Expand to a dense matrix (summing duplicate coordinates)."""
        out = np.zeros(self.shape, dtype=self.values.dtype)
        np.add.at(out, (self.rows_idx, self.cols_idx), self.values)
        return out

    def transpose(self) -> "Coo":
        """Return the transpose; COO makes this a metadata swap."""
        return Coo(self.ncols, self.nrows, self.cols_idx.copy(),
                   self.rows_idx.copy(), self.values.copy())
