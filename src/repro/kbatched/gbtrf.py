"""``gbtrf`` — LU factorization of a general band matrix with partial
pivoting (LAPACK ``dgbtf2``, unblocked).

Storage is the LAPACK convention produced by
:func:`repro.kbatched.band.dense_to_lu_band`: ``ab`` has shape
``(2*kl + ku + 1, n)`` with ``A[i, j]`` at ``ab[kl + ku + i - j, j]``; the
top ``kl`` rows are head-room for the fill-in created by row interchanges.
On exit the band of ``U`` occupies rows ``0..kl+ku`` and the multipliers of
``L`` rows ``kl+ku+1..2*kl+ku``; ``ipiv`` records the interchanges.

This factorization handles the *non-uniform* spline matrices (Table I:
general banded for every non-uniform degree) and runs once at setup.
"""

from __future__ import annotations

# NumPy is the pivot-index plumbing shim: ``ipiv`` is host int64 by
# contract (kernels consume it as Python ints).  Matrix arithmetic goes
# through the resolved namespace.
import numpy as np

from repro.backend import Array, get_namespace
from repro.exceptions import ShapeError, SingularMatrixError


def serial_gbtrf(ab: Array, kl: int, ku: int) -> np.ndarray:
    """Factorize in place and return the pivot index array ``ipiv``.

    ``ipiv[j] = p`` means rows ``j`` and ``p`` (zero-based, ``p >= j``) were
    swapped at step ``j``.

    Raises
    ------
    SingularMatrixError
        If an exactly-zero pivot is met (``U[j, j] == 0``).
    """
    if ab.ndim != 2 or ab.shape[0] != 2 * kl + ku + 1:
        raise ShapeError(
            f"LU band storage must have 2*kl+ku+1={2 * kl + ku + 1} rows, "
            f"got shape {ab.shape}"
        )
    xp = get_namespace(ab)
    n = ab.shape[1]
    kv = kl + ku  # superdiagonals of U, including fill-in
    ipiv = np.arange(n, dtype=np.int64)
    ju = 0  # last column affected by interchanges so far
    for j in range(n):
        km = min(kl, n - 1 - j)  # sub-diagonal entries in column j
        col = ab[kv : kv + km + 1, j]
        jp = int(xp.argmax(xp.abs(col)))
        ipiv[j] = j + jp
        if complex(col[jp]) == 0:
            raise SingularMatrixError(f"zero pivot at column {j}", index=j)
        ju = max(ju, min(j + ku + jp, n - 1))
        if jp != 0:
            # Swap matrix rows j and j+jp over columns j..ju; in band
            # storage a matrix row is an anti-diagonal of ``ab``, so the
            # swap walks it entry-wise (moves are exact in either order).
            for c in range(j, ju + 1):
                r1 = kv + j - c
                r2 = kv + j + jp - c
                tmp = ab[r1, c]
                ab[r1, c] = ab[r2, c]
                ab[r2, c] = tmp
        if km > 0:
            ab[kv + 1 : kv + km + 1, j] /= ab[kv, j]
            for c in range(j + 1, ju + 1):
                ujc = ab[kv + j - c, c]
                if complex(ujc) != 0:
                    lo = kv + j - c + 1
                    ab[lo : lo + km, c] -= ujc * ab[kv + 1 : kv + km + 1, j]
    return ipiv


def gbtrf(ab: Array, kl: int, ku: int) -> np.ndarray:
    """Alias of :func:`serial_gbtrf`; the factorization is inherently serial."""
    return serial_gbtrf(ab, kl, ku)
