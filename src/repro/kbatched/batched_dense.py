"""Multi-matrix batched solvers — the *standard* batched regime.

§II-B: "most of the batched solvers are optimized to deal with multiple
matrices as well as multiple right-hand sides" — cuBLAS-style batches where
every problem has its own matrix ``A[i]``.  The paper's whole point is that
its problem is *not* this shape (one fixed matrix, enormous RHS batch), and
that forcing it into this shape wastes memory and factorization work.

This module implements the standard regime anyway — vectorized across the
matrix batch, the way a batched library would — so the repository can
*demonstrate* the contrast quantitatively
(``benchmarks/bench_ablation_multimatrix.py``): replicating the spline
matrix into a multi-matrix batch costs ``n×`` the memory and refactorizes
the same matrix ``batch`` times.

It is also independently useful whenever the matrices genuinely differ per
batch entry (e.g. spatially varying collision operators).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError, SingularMatrixError


def _check_batch_square(a: np.ndarray) -> Tuple[int, int]:
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ShapeError(
            f"expected a (batch, n, n) matrix batch, got shape {a.shape}"
        )
    return a.shape[0], a.shape[1]


def batched_getrf(a: np.ndarray) -> np.ndarray:
    """LU-factorize every matrix of a ``(batch, n, n)`` stack in place.

    Partial pivoting is applied per matrix; the elimination loop runs over
    the (shared, small) matrix dimension with every arithmetic step
    vectorized across the batch — the standard batched-library layout.

    Returns ``ipiv`` of shape ``(batch, n)``.

    Raises
    ------
    SingularMatrixError
        If any matrix in the batch hits an exactly-zero pivot (the index
        attribute holds the elimination step).
    """
    batch, n = _check_batch_square(a)
    ipiv = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)).copy()
    rows = np.arange(batch)
    for j in range(n):
        # Per-matrix pivot search in column j, rows j..n-1.
        jp = j + np.argmax(np.abs(a[:, j:, j]), axis=1)
        pivots = a[rows, jp, j]
        if np.any(pivots == 0.0):
            raise SingularMatrixError(
                f"zero pivot at column {j} in at least one batch entry",
                index=j,
            )
        ipiv[:, j] = jp
        # Swap rows j <-> jp per matrix (no-ops where jp == j).
        rj = a[rows, j, :].copy()
        a[rows, j, :] = a[rows, jp, :]
        a[rows, jp, :] = rj
        if j < n - 1:
            a[:, j + 1 :, j] /= a[:, j : j + 1, j]
            a[:, j + 1 :, j + 1 :] -= (
                a[:, j + 1 :, j : j + 1] * a[:, j : j + 1, j + 1 :]
            )
    return ipiv


def batched_getrs(a: np.ndarray, ipiv: np.ndarray, b: np.ndarray) -> None:
    """Solve every system of the stack in place on ``b``.

    ``b`` has shape ``(batch, n)`` (one RHS per matrix, the cuBLAS
    ``getrsBatched`` shape) or ``(batch, n, nrhs)``.
    """
    batch, n = _check_batch_square(a)
    if ipiv.shape != (batch, n):
        raise ShapeError(f"ipiv must have shape ({batch}, {n}), got {ipiv.shape}")
    squeeze = b.ndim == 2
    bb = b[:, :, None] if squeeze else b
    if bb.shape[0] != batch or bb.shape[1] != n:
        raise ShapeError(
            f"b must have shape ({batch}, {n}[, nrhs]), got {b.shape}"
        )
    rows = np.arange(batch)
    for j in range(n):
        jp = ipiv[:, j]
        rj = bb[rows, j, :].copy()
        bb[rows, j, :] = bb[rows, jp, :]
        bb[rows, jp, :] = rj
    for i in range(1, n):
        bb[:, i, :] -= np.einsum("bk,bkr->br", a[:, i, :i], bb[:, :i, :])
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            bb[:, i, :] -= np.einsum(
                "bk,bkr->br", a[:, i, i + 1 :], bb[:, i + 1 :, :]
            )
        bb[:, i, :] /= a[:, i : i + 1, i]
    if squeeze:
        b[...] = bb[:, :, 0]


def batched_pttrf(d: np.ndarray, e: np.ndarray) -> None:
    """LDLᵀ-factorize a stack of SPD tridiagonal matrices in place.

    ``d`` is ``(batch, n)`` diagonals, ``e`` is ``(batch, n-1)``
    off-diagonals — the multi-matrix analogue of
    :func:`repro.kbatched.pttrf`.
    """
    if d.ndim != 2 or e.ndim != 2 or e.shape != (d.shape[0], max(d.shape[1] - 1, 0)):
        raise ShapeError(
            f"expected d (batch, n) and e (batch, n-1), got {d.shape} / {e.shape}"
        )
    n = d.shape[1]
    if n == 0:
        return
    if np.any(d[:, 0] <= 0.0):
        raise SingularMatrixError("non-positive leading pivot in batch", index=0)
    for i in range(n - 1):
        ei = e[:, i].copy()
        e[:, i] = ei / d[:, i]
        d[:, i + 1] -= e[:, i] * ei
        if np.any(d[:, i + 1] <= 0.0):
            raise SingularMatrixError(
                f"non-positive pivot at step {i + 1} in at least one batch entry",
                index=i + 1,
            )


def batched_pttrs(d: np.ndarray, e: np.ndarray, b: np.ndarray) -> None:
    """Solve every tridiagonal system of the stack in place on ``b``
    (shape ``(batch, n)``)."""
    if b.shape != d.shape:
        raise ShapeError(f"b must have shape {d.shape}, got {b.shape}")
    n = d.shape[1]
    if n == 0:
        return
    for i in range(1, n):
        b[:, i] -= e[:, i - 1] * b[:, i - 1]
    b[:, n - 1] /= d[:, n - 1]
    for i in range(n - 2, -1, -1):
        b[:, i] /= d[:, i]
        b[:, i] -= e[:, i] * b[:, i + 1]
