"""Multi-matrix batched solvers — the *standard* batched regime.

§II-B: "most of the batched solvers are optimized to deal with multiple
matrices as well as multiple right-hand sides" — cuBLAS-style batches where
every problem has its own matrix ``A[i]``.  The paper's whole point is that
its problem is *not* this shape (one fixed matrix, enormous RHS batch), and
that forcing it into this shape wastes memory and factorization work.

This module implements the standard regime anyway — vectorized across the
matrix batch, the way a batched library would — so the repository can
*demonstrate* the contrast quantitatively
(``benchmarks/bench_ablation_multimatrix.py``): replicating the spline
matrix into a multi-matrix batch costs ``n×`` the memory and refactorizes
the same matrix ``batch`` times.

It is also independently useful whenever the matrices genuinely differ per
batch entry (e.g. spatially varying collision operators).

Pivot bookkeeping (``ipiv``) is host NumPy by contract; the matrix
arithmetic is namespace-agnostic with a fancy-indexed NumPy fast path for
the per-batch row interchanges (the standard has no batched gather-write,
so other backends fall back to a per-matrix loop).
"""

from __future__ import annotations

from typing import Tuple

# NumPy here is the ``ipiv`` plumbing shim and the fancy-index fast path.
import numpy as np

from repro.backend import (
    Array,
    asnumpy,
    get_namespace,
    is_numpy_namespace,
    ordered_batched_vecmat,
)
from repro.exceptions import ShapeError, SingularMatrixError


def _check_batch_square(a: Array) -> Tuple[int, int]:
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ShapeError(
            f"expected a (batch, n, n) matrix batch, got shape {a.shape}"
        )
    return a.shape[0], a.shape[1]


def batched_getrf(a: Array) -> np.ndarray:
    """LU-factorize every matrix of a ``(batch, n, n)`` stack in place.

    Partial pivoting is applied per matrix; the elimination loop runs over
    the (shared, small) matrix dimension with every arithmetic step
    vectorized across the batch — the standard batched-library layout.
    Factors keep the input dtype.

    Returns ``ipiv`` of shape ``(batch, n)`` (host NumPy ``int64``).

    Raises
    ------
    SingularMatrixError
        If any matrix in the batch hits an exactly-zero pivot (the index
        attribute holds the elimination step).
    """
    batch, n = _check_batch_square(a)
    xp = get_namespace(a)
    ipiv = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)).copy()
    rows = np.arange(batch)
    for j in range(n):
        # Per-matrix pivot search in column j, rows j..n-1.
        jp = asnumpy(xp.argmax(xp.abs(a[:, j:, j]), axis=1)).astype(np.int64)
        jp = j + jp
        if is_numpy_namespace(xp):
            pivots = a[rows, jp, j]
            if np.any(pivots == 0.0):
                raise SingularMatrixError(
                    f"zero pivot at column {j} in at least one batch entry",
                    index=j,
                )
            ipiv[:, j] = jp
            # Swap rows j <-> jp per matrix (no-ops where jp == j).
            rj = a[rows, j, :].copy()
            a[rows, j, :] = a[rows, jp, :]
            a[rows, jp, :] = rj
        else:
            ipiv[:, j] = jp
            for i in range(batch):
                p = int(jp[i])
                if float(a[i, p, j]) == 0.0:
                    raise SingularMatrixError(
                        f"zero pivot at column {j} in at least one batch "
                        f"entry",
                        index=j,
                    )
                if p != j:
                    tmp = xp.asarray(a[i, j, :], copy=True)
                    a[i, j, :] = a[i, p, :]
                    a[i, p, :] = tmp
        if j < n - 1:
            a[:, j + 1 :, j] /= a[:, j : j + 1, j]
            a[:, j + 1 :, j + 1 :] -= (
                a[:, j + 1 :, j : j + 1] * a[:, j : j + 1, j + 1 :]
            )
    return ipiv


def _swap_rhs_rows(xp, bb, jp: np.ndarray, j: int) -> None:
    """Per-matrix row interchange of the RHS stack at step *j*."""
    if is_numpy_namespace(xp):
        rows = np.arange(bb.shape[0])
        rj = bb[rows, j, :].copy()
        bb[rows, j, :] = bb[rows, jp, :]
        bb[rows, jp, :] = rj
        return
    for i in range(bb.shape[0]):
        p = int(jp[i])
        if p != j:
            tmp = xp.asarray(bb[i, j, :], copy=True)
            bb[i, j, :] = bb[i, p, :]
            bb[i, p, :] = tmp


def batched_getrs(a: Array, ipiv: np.ndarray, b: Array) -> None:
    """Solve every system of the stack in place on ``b``.

    ``b`` has shape ``(batch, n)`` (one RHS per matrix, the cuBLAS
    ``getrsBatched`` shape) or ``(batch, n, nrhs)``; its dtype is
    preserved.
    """
    batch, n = _check_batch_square(a)
    if ipiv.shape != (batch, n):
        raise ShapeError(f"ipiv must have shape ({batch}, {n}), got {ipiv.shape}")
    xp = get_namespace(a, b)
    squeeze = b.ndim == 2
    if squeeze:
        if b.shape != (batch, n):
            raise ShapeError(
                f"b must have shape ({batch}, {n}[, nrhs]), got {b.shape}"
            )
        # reshape is a view on NumPy; if a backend copies, the final
        # write-back below restores in-place semantics either way.
        bb = xp.reshape(b, (batch, n, 1))
    else:
        bb = b
        if bb.shape[0] != batch or bb.shape[1] != n:
            raise ShapeError(
                f"b must have shape ({batch}, {n}[, nrhs]), got {b.shape}"
            )
    ipiv = np.asarray(ipiv, dtype=np.int64)
    for j in range(n):
        _swap_rhs_rows(xp, bb, ipiv[:, j], j)
    for i in range(1, n):
        bb[:, i, :] -= ordered_batched_vecmat(xp, a[:, i, :i], bb[:, :i, :])
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            bb[:, i, :] -= ordered_batched_vecmat(
                xp, a[:, i, i + 1 :], bb[:, i + 1 :, :]
            )
        bb[:, i, :] /= a[:, i : i + 1, i]
    if squeeze:
        b[...] = bb[:, :, 0]


def batched_pttrf(d: Array, e: Array) -> None:
    """LDLᵀ-factorize a stack of SPD tridiagonal matrices in place.

    ``d`` is ``(batch, n)`` diagonals, ``e`` is ``(batch, n-1)``
    off-diagonals — the multi-matrix analogue of
    :func:`repro.kbatched.pttrf`.  Factors keep the input dtype.
    """
    if d.ndim != 2 or e.ndim != 2 or e.shape != (d.shape[0], max(d.shape[1] - 1, 0)):
        raise ShapeError(
            f"expected d (batch, n) and e (batch, n-1), got {d.shape} / {e.shape}"
        )
    xp = get_namespace(d, e)
    n = d.shape[1]
    if n == 0:
        return
    if bool(xp.any(d[:, 0] <= 0.0)):
        raise SingularMatrixError("non-positive leading pivot in batch", index=0)
    for i in range(n - 1):
        ei = xp.asarray(e[:, i], copy=True)
        e[:, i] = ei / d[:, i]
        d[:, i + 1] -= e[:, i] * ei
        if bool(xp.any(d[:, i + 1] <= 0.0)):
            raise SingularMatrixError(
                f"non-positive pivot at step {i + 1} in at least one batch entry",
                index=i + 1,
            )


def batched_pttrs(d: Array, e: Array, b: Array) -> None:
    """Solve every tridiagonal system of the stack in place on ``b``
    (shape ``(batch, n)``); result dtype == RHS dtype."""
    if b.shape != d.shape:
        raise ShapeError(f"b must have shape {d.shape}, got {b.shape}")
    n = d.shape[1]
    if n == 0:
        return
    for i in range(1, n):
        b[:, i] -= e[:, i - 1] * b[:, i - 1]
    b[:, n - 1] /= d[:, n - 1]
    for i in range(n - 2, -1, -1):
        b[:, i] /= d[:, i]
        b[:, i] -= e[:, i] * b[:, i + 1]
