"""Triangular solves: ``trsv`` (single RHS) and ``trsm`` (RHS block).

The building blocks the factorization-solve pairs are composed of, exposed
as public kernels with the KokkosBatched tag-dispatch API.  ``trsm`` is
also what the blocked ``getrf`` uses for its panel update (``U₁₂ =
L₁₁⁻¹ A₁₂``).

Only left-side solves are implemented (`op(A) X = B`); that is all the
spline stack needs.
"""

from __future__ import annotations

from repro.backend import Array
from repro.exceptions import ShapeError, SingularMatrixError
from repro.kbatched.types import Diag, Trans, Uplo


def _check(a: Array, b: Array) -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"triangular matrix must be square, got {a.shape}")
    if b.shape[0] != a.shape[0]:
        raise ShapeError(
            f"rhs leading extent {b.shape[0]} != matrix size {a.shape[0]}"
        )
    return a.shape[0]


def trsm(
    a: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
    trans: Trans = Trans.NO_TRANSPOSE,
    diag: Diag = Diag.NON_UNIT,
) -> None:
    """Solve ``op(A) X = B`` in place on *b* (vector or ``(n, batch)``).

    Only the relevant triangle of *a* is read; with ``diag=UNIT`` the
    diagonal is taken as 1 without being read (LAPACK convention).
    """
    n = _check(a, b)
    lower = (uplo is Uplo.LOWER) != (trans is Trans.TRANSPOSE)
    read = (lambda i, k: a[k, i]) if trans is Trans.TRANSPOSE else (
        lambda i, k: a[i, k]
    )
    unit = diag is Diag.UNIT
    if not unit:
        for i in range(n):
            if complex(read(i, i)) == 0:
                raise SingularMatrixError(f"zero diagonal at row {i}", index=i)
    if lower:
        for i in range(n):
            for k in range(i):
                v = read(i, k)
                if complex(v) != 0:
                    b[i, ...] = b[i, ...] - v * b[k, ...]
            if not unit:
                b[i, ...] = b[i, ...] / read(i, i)
    else:
        for i in range(n - 1, -1, -1):
            for k in range(i + 1, n):
                v = read(i, k)
                if complex(v) != 0:
                    b[i, ...] = b[i, ...] - v * b[k, ...]
            if not unit:
                b[i, ...] = b[i, ...] / read(i, i)


def serial_trsv(
    a: Array,
    b: Array,
    uplo: Uplo = Uplo.LOWER,
    trans: Trans = Trans.NO_TRANSPOSE,
    diag: Diag = Diag.NON_UNIT,
) -> int:
    """Single-RHS triangular solve (KokkosBatched serial kernel)."""
    if b.ndim != 1:
        raise ShapeError(f"trsv expects a vector rhs, got shape {b.shape}")
    trsm(a, b, uplo=uplo, trans=trans, diag=diag)
    return 0
