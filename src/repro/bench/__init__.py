"""Shared helpers for the benchmark harness in ``benchmarks/``.

* :mod:`~repro.bench.workloads` — the paper's workload generators (the
  distribution-function fields, velocity grids and problem-size sweeps);
* :mod:`~repro.bench.report` — fixed-width ASCII table / series rendering
  so every benchmark prints rows directly comparable with the paper's
  tables and figures.
"""

from repro.bench.workloads import (
    PAPER_BATCH,
    PAPER_NX,
    default_field,
    fig2_batch_sweep,
    make_advection_workload,
)
from repro.bench.report import Table, format_series, format_sparsity_pattern
from repro.bench.plot import ascii_loglog, parse_series_file, render_panels

__all__ = [
    "ascii_loglog",
    "parse_series_file",
    "render_panels",
    "PAPER_NX",
    "PAPER_BATCH",
    "default_field",
    "make_advection_workload",
    "fig2_batch_sweep",
    "Table",
    "format_series",
    "format_sparsity_pattern",
]
