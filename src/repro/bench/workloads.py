"""Workload generators matching the paper's benchmark settings.

§IV fixes ``(N_x, N_v) = (1000, 100000)`` with 10 iterations for the
optimization study; §V fixes ``N_x = 1024`` and sweeps
``N_v ∈ [100, 100000]`` for Fig. 2.  Host-scale defaults are smaller so the
pure-NumPy benchmarks finish in seconds; every benchmark accepts the paper
sizes via environment variables (see ``benchmarks/README`` note in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.advection.semilag import BatchedAdvection1D
from repro.core.builder.builder import SplineBuilder
from repro.core.spec import BSplineSpec

#: The paper's §IV problem size.
PAPER_NX = 1000
PAPER_BATCH = 100_000


def default_field(x: np.ndarray, nv: int, seed: int = 0) -> np.ndarray:
    """A smooth batched field ``f[v_j, x_i]``: per-batch phase-shifted
    sine + Gaussian bump, the kind of profile the advection solver sees."""
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=nv)
    f = np.sin(2.0 * np.pi * x[None, :] + phases[:, None])
    f += np.exp(-0.5 * ((x[None, :] - 0.5) / 0.1) ** 2)
    return np.ascontiguousarray(f)


def make_advection_workload(
    nx: int,
    nv: int,
    degree: int = 3,
    uniform: bool = True,
    dt: float = 0.0123,
    builder_cls=SplineBuilder,
    **builder_kwargs,
) -> Tuple[BatchedAdvection1D, np.ndarray]:
    """Build the Algorithm-2 benchmark: an advection object plus its field."""
    spec = BSplineSpec(degree=degree, n_points=nx, uniform=uniform)
    builder = builder_cls(spec, **builder_kwargs)
    velocities = np.linspace(-1.0, 1.0, nv)
    adv = BatchedAdvection1D(builder, velocities, dt)
    f = default_field(adv.x, nv)
    return adv, f


def fig2_batch_sweep(max_nv: int = 100_000, points_per_decade: int = 2) -> List[int]:
    """The Fig. 2 ``N_v`` sweep: log-spaced between 100 and *max_nv*."""
    lo, hi = 2.0, np.log10(max_nv)
    count = max(2, int((hi - lo) * points_per_decade) + 1)
    values = np.unique(np.rint(np.logspace(lo, hi, count)).astype(int))
    values[-1] = max_nv  # logspace endpoint can round off by one ulp
    return [int(v) for v in np.unique(values)]
