"""ASCII rendering of tables, series and sparsity patterns.

Every benchmark prints its result in the same layout as the paper's table
or figure so the comparison in EXPERIMENTS.md is a visual diff.

Benchmarks that want a *machine*-readable trajectory additionally write a
``BENCH_<name>.json`` document via :func:`write_bench_json` — a stable
envelope (``name`` / ``created_by`` / ``data``) under
``benchmarks/results/`` that CI uploads as an artifact, so successive PRs
accumulate a comparable performance record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

import numpy as np


class Table:
    """A fixed-width ASCII table with a title (paper-table look-alike)."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print(self.render())
        print()

    def to_dict(self) -> dict:
        """The table as plain data: title, columns, and row dicts."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(zip(self.columns, row)) for row in self.rows],
        }


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def _jsonable(value):
    """Coerce NumPy scalars/arrays so ``json.dumps`` accepts the payload."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, np.generic):
        return value.item()
    return value


def write_bench_json(
    name: str,
    data: dict,
    results_dir: Union[str, Path, None] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under *results_dir* and return its path.

    The envelope is ``{"name", "created_by", "data"}`` — ``data`` is the
    benchmark's own payload (NumPy scalars are coerced to plain Python).
    *results_dir* defaults to ``benchmarks/results/`` relative to the
    repository root when run from a checkout, else the current directory.
    """
    if results_dir is None:
        here = Path.cwd()
        candidate = here / "benchmarks" / "results"
        results_dir = candidate if candidate.parent.is_dir() else here
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    stem = name if name.startswith("BENCH_") else f"BENCH_{name}"
    path = results_dir / f"{stem}.json"
    doc = {
        "name": stem,
        "created_by": "repro.bench.report.write_bench_json",
        "data": _jsonable(data),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def format_series(
    label: str, xs: Iterable, ys: Iterable, x_name: str = "x", y_name: str = "y"
) -> str:
    """One figure curve as aligned ``x y`` pairs (a printable Fig.-2 line)."""
    lines = [f"# {label}", f"# {x_name:>12s} {y_name:>14s}"]
    for x, y in zip(xs, ys):
        lines.append(f"{_fmt(x):>14s} {_fmt(y):>14s}")
    return "\n".join(lines)


def format_sparsity_pattern(a: np.ndarray, tol: float = 1e-12) -> str:
    """Render a matrix's sparsity pattern with ``x`` / ``.`` (Fig. 1)."""
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {a.shape}")
    rows = []
    for i in range(a.shape[0]):
        rows.append(" ".join("x" if abs(v) > tol else "." for v in a[i]))
    return "\n".join(rows)
