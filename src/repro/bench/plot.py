"""ASCII chart rendering for the figure benchmarks.

The paper's artifact post-processes its benchmark JSON with a
``comparison.py`` script into the six Fig. 2 panels; this module is the
plotting half of our equivalent (``tools/comparison.py``): log-log ASCII
charts with one glyph per curve, rendered from the series files the
benchmarks write.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Sequence, Tuple

GLYPHS = "ox*+#@%&"


def parse_series_file(text: str) -> Dict[str, List[Tuple[float, float]]]:
    """Parse the output of :func:`repro.bench.report.format_series` blocks.

    Returns ``{label: [(x, y), ...]}``.  Blocks start with ``# <label>``,
    followed by a ``# <xname> <yname>`` header and data lines.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    label = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            label = None
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            # The column-header line contains exactly two tokens and
            # follows a label; anything else opens a new series.
            if label is not None and len(body.split()) == 2 and label in series:
                continue
            label = body
            series[label] = []
            continue
        if label is None:
            continue
        parts = line.split()
        if len(parts) == 2:
            try:
                series[label].append((float(parts[0]), float(parts[1])))
            except ValueError:
                pass
    return {k: v for k, v in series.items() if v}


def ascii_loglog(
    curves: Dict[str, Sequence[Tuple[float, float]]],
    title: str,
    width: int = 64,
    height: int = 20,
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Render a log-log ASCII chart of *curves* with a glyph legend."""
    points = [(x, y) for pts in curves.values() for x, y in pts if x > 0 and y > 0]
    if not points:
        return f"{title}\n(no positive data)"
    lx = [math.log10(x) for x, _ in points]
    ly = [math.log10(y) for _, y in points]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x1 = x1 if x1 > x0 else x0 + 1.0
    y1 = y1 if y1 > y0 else y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (label, pts) in enumerate(curves.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"  {glyph}  {label}")
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            col = int((math.log10(x) - x0) / (x1 - x0) * (width - 1))
            row = int((y1 - math.log10(y)) / (y1 - y0) * (height - 1))
            grid[row][col] = glyph
    lines = [title, "=" * min(len(title), width + 2)]
    lines.append(f"10^{y1:.1f} +" + "-" * width + "+")
    for r, row in enumerate(grid):
        lines.append("       |" + "".join(row) + "|")
    lines.append(f"10^{y0:.1f} +" + "-" * width + "+")
    lines.append(f"        10^{x0:.1f} {x_name}  ...  10^{x1:.1f}   ({y_name}, log-log)")
    lines.extend(legend)
    return "\n".join(lines)


def group_key(label: str) -> str:
    """Panel key for a Fig.-2 series label ``device / library / config``."""
    parts = [p.strip() for p in label.split("/")]
    return " / ".join(parts[:2]) if len(parts) >= 2 else label


def curve_key(label: str) -> str:
    """Curve name within a panel (the spline configuration part)."""
    parts = [p.strip() for p in label.split("/")]
    return parts[-1] if parts else label


def render_panels(series: Dict[str, List[Tuple[float, float]]],
                  x_name: str = "Nv", y_name: str = "GLUPS") -> str:
    """Group series into Fig.-2-style panels and render each as a chart."""
    panels: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for label, pts in series.items():
        panels.setdefault(group_key(label), {})[curve_key(label)] = pts
    chunks = []
    for panel, curves in panels.items():
        chunks.append(ascii_loglog(curves, f"Panel: {panel}",
                                   x_name=x_name, y_name=y_name))
    return "\n\n".join(chunks)
