"""Test-support helpers: seeded RNGs and structured random matrices.

Shared by the unit tests and the benchmark harness.  These live in the
package (rather than a ``conftest.py``) so both suites can import them by
a stable name — with ``tests/`` and ``benchmarks/`` collected in the same
pytest run, a bare ``from conftest import ...`` is ambiguous between the
two directories' conftest modules.

Every generator is diagonally dominant by construction, so the matrices
are guaranteed non-singular (and SPD where advertised) at any size.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rng_for",
    "random_spd_tridiagonal",
    "tridiagonal_to_dense",
    "random_spd_banded",
    "random_banded",
    "random_general",
]


def rng_for(seed: int = 0) -> np.random.Generator:
    """A fresh deterministic generator for *seed*."""
    return np.random.default_rng(seed)


def random_spd_tridiagonal(n: int, rng: np.random.Generator):
    """Return ``(d, e)`` of a strictly diagonally dominant SPD tridiagonal."""
    e = rng.uniform(-1.0, 1.0, size=max(n - 1, 0))
    d = np.empty(n)
    for i in range(n):
        neighbors = 0.0
        if i > 0:
            neighbors += abs(e[i - 1])
        if i < n - 1:
            neighbors += abs(e[i])
        d[i] = neighbors + rng.uniform(0.5, 2.0)
    return d, e


def tridiagonal_to_dense(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Assemble the dense symmetric tridiagonal from its ``(d, e)`` bands."""
    n = d.shape[0]
    a = np.diag(d)
    if n > 1:
        a += np.diag(e, 1) + np.diag(e, -1)
    return a


def random_spd_banded(n: int, kd: int, rng: np.random.Generator) -> np.ndarray:
    """Dense SPD matrix with half-bandwidth ``kd`` (diagonally dominant)."""
    a = np.zeros((n, n))
    for off in range(1, kd + 1):
        vals = rng.uniform(-1.0, 1.0, size=n - off)
        a += np.diag(vals, off) + np.diag(vals, -off)
    row_sums = np.sum(np.abs(a), axis=1)
    a[np.diag_indices(n)] = row_sums + rng.uniform(0.5, 2.0, size=n)
    return a


def random_banded(n: int, kl: int, ku: int, rng: np.random.Generator) -> np.ndarray:
    """Dense general band matrix, diagonally dominant (hence non-singular)."""
    a = np.zeros((n, n))
    for off in range(1, ku + 1):
        a += np.diag(rng.uniform(-1.0, 1.0, size=n - off), off)
    for off in range(1, kl + 1):
        a += np.diag(rng.uniform(-1.0, 1.0, size=n - off), -off)
    row_sums = np.sum(np.abs(a), axis=1)
    signs = np.where(rng.uniform(size=n) < 0.5, -1.0, 1.0)
    a[np.diag_indices(n)] = signs * (row_sums + rng.uniform(0.5, 2.0, size=n))
    return a


def random_general(n: int, rng: np.random.Generator) -> np.ndarray:
    """Dense well-conditioned general matrix."""
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] += n  # diagonally dominant
    return a
