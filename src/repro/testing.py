"""Test-support helpers: seeded RNGs, random matrices, verify cases.

Shared by the unit tests and the benchmark harness.  These live in the
package (rather than a ``conftest.py``) so both suites can import them by
a stable name — with ``tests/`` and ``benchmarks/`` collected in the same
pytest run, a bare ``from conftest import ...`` is ambiguous between the
two directories' conftest modules.

Every matrix generator is diagonally dominant by construction, so the
matrices are guaranteed non-singular (and SPD where advertised) at any
size.  :func:`random_verify_cases` samples the spline spec space for the
property-based oracle tests, and :func:`timing_tolerance` is the one
shared slack knob behind every host-timing assertion.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "rng_for",
    "random_spd_tridiagonal",
    "tridiagonal_to_dense",
    "random_spd_banded",
    "random_banded",
    "random_general",
    "VerifyCase",
    "random_verify_cases",
    "timing_tolerance",
]


def rng_for(seed: int = 0) -> np.random.Generator:
    """A fresh deterministic generator for *seed*."""
    return np.random.default_rng(seed)


def random_spd_tridiagonal(n: int, rng: np.random.Generator):
    """Return ``(d, e)`` of a strictly diagonally dominant SPD tridiagonal."""
    e = rng.uniform(-1.0, 1.0, size=max(n - 1, 0))
    d = np.empty(n)
    for i in range(n):
        neighbors = 0.0
        if i > 0:
            neighbors += abs(e[i - 1])
        if i < n - 1:
            neighbors += abs(e[i])
        d[i] = neighbors + rng.uniform(0.5, 2.0)
    return d, e


def tridiagonal_to_dense(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Assemble the dense symmetric tridiagonal from its ``(d, e)`` bands."""
    n = d.shape[0]
    a = np.diag(d)
    if n > 1:
        a += np.diag(e, 1) + np.diag(e, -1)
    return a


def random_spd_banded(n: int, kd: int, rng: np.random.Generator) -> np.ndarray:
    """Dense SPD matrix with half-bandwidth ``kd`` (diagonally dominant)."""
    a = np.zeros((n, n))
    for off in range(1, kd + 1):
        vals = rng.uniform(-1.0, 1.0, size=n - off)
        a += np.diag(vals, off) + np.diag(vals, -off)
    row_sums = np.sum(np.abs(a), axis=1)
    a[np.diag_indices(n)] = row_sums + rng.uniform(0.5, 2.0, size=n)
    return a


def random_banded(n: int, kl: int, ku: int, rng: np.random.Generator) -> np.ndarray:
    """Dense general band matrix, diagonally dominant (hence non-singular)."""
    a = np.zeros((n, n))
    for off in range(1, ku + 1):
        a += np.diag(rng.uniform(-1.0, 1.0, size=n - off), off)
    for off in range(1, kl + 1):
        a += np.diag(rng.uniform(-1.0, 1.0, size=n - off), -off)
    row_sums = np.sum(np.abs(a), axis=1)
    signs = np.where(rng.uniform(size=n) < 0.5, -1.0, 1.0)
    a[np.diag_indices(n)] = signs * (row_sums + rng.uniform(0.5, 2.0, size=n))
    return a


def random_general(n: int, rng: np.random.Generator) -> np.ndarray:
    """Dense well-conditioned general matrix."""
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] += n  # diagonally dominant
    return a


# -- verification cases ---------------------------------------------------


@dataclass(frozen=True)
class VerifyCase:
    """One randomly sampled spline configuration for the oracle tests.

    ``spec`` is a :class:`~repro.core.spec.BSplineSpec`; the remaining
    fields parameterize how it is solved and which right-hand sides the
    oracles replay (``seed`` feeds the deterministic RHS generator of
    :mod:`repro.verify.oracle`).
    """

    spec: object
    version: int
    backend: str
    dtype: np.dtype
    batch: int
    seed: int

    @property
    def label(self) -> str:
        """Stable, readable pytest ID for this case."""
        s = self.spec
        return (
            f"deg{s.degree}-{s.boundary}-{'uni' if s.uniform else 'nonuni'}"
            f"-n{s.n_points}-v{self.version}-{self.backend}"
            f"-{np.dtype(self.dtype).name}-b{self.batch}-s{self.seed}"
        )


def random_verify_cases(
    count: int = 100, seed: int = 2024_08_05, max_points: int = 48
) -> list:
    """Sample *count* :class:`VerifyCase` instances from a fixed PRNG.

    The sampler covers every categorical axis (degree 3-5, periodic and
    clamped boundaries, uniform and stretched meshes, §IV versions 0-2,
    both backends, both working precisions) with random sizes and batch
    widths; the fixed *seed* makes the suite reproducible — a failing
    case's pytest ID pins it completely.
    """
    from repro.core.spec import BSplineSpec

    rng = np.random.default_rng(seed)
    cases = []
    for index in range(count):
        degree = int(rng.integers(3, 6))
        boundary = "periodic" if rng.uniform() < 0.5 else "clamped"
        lo = degree + 2 if boundary == "periodic" else degree + 1
        spec = BSplineSpec(
            degree=degree,
            n_points=int(rng.integers(lo + 2, max_points + 1)),
            uniform=bool(rng.uniform() < 0.5),
            boundary=boundary,
        )
        cases.append(
            VerifyCase(
                spec=spec,
                version=int(rng.integers(0, 3)),
                backend="vectorized" if rng.uniform() < 0.5 else "serial",
                dtype=np.dtype(np.float64 if rng.uniform() < 0.5 else np.float32),
                batch=int(rng.integers(1, 9)),
                seed=index,
            )
        )
    return cases


# -- timing assertions ----------------------------------------------------


def timing_tolerance(factor: float) -> float:
    """The slack multiplier behind every host-timing assertion.

    Host timings on shared CI runners are noisy; each performance
    assertion states its *intended* bound (e.g. "fused is at most 1.25x
    the baseline") and widens it by the ``REPRO_TIMING_SLACK`` environment
    variable (default 1.0), so one knob loosens the whole suite on a
    loaded machine instead of each test growing its own fudge factor.
    """
    if factor <= 0:
        raise ValueError(f"timing factor must be > 0, got {factor}")
    slack = float(os.environ.get("REPRO_TIMING_SLACK", "1.0"))
    if slack <= 0:
        raise ValueError(f"REPRO_TIMING_SLACK must be > 0, got {slack}")
    return factor * slack
