"""Reproduction scoreboard — every paper claim, one pass/fail line.

Collects the quantitative shape claims of the paper's evaluation and
checks each live, writing a single ``SUMMARY.txt`` scoreboard.  This is the
file to read first when judging the reproduction.

Run standalone with ``--quick`` for a fast CI smoke at reduced sizes
(informational only — the pytest entry point asserts no FAIL at the
full harness sizes, where the timing-sensitive claims are stable)::

    python benchmarks/bench_summary_scoreboard.py --quick
"""

import sys
from pathlib import Path

try:
    from repro.bench import Table, default_field
except ImportError:  # running as a script from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.bench import Table, default_field

import numpy as np
from repro.core import (
    BSplineSpec,
    GinkgoSplineBuilder,
    SplineBuilder,
    classify_matrix,
    expected_type,
)
from repro.core.bsplines import split_cyclic_banded
from repro.core.spec import paper_configurations
from repro.perfmodel import PAPER_DEVICES, pennycook_metric
from repro.perfmodel.counters import solver_traffic, version_traffic
from repro.perfmodel.devicesim import paper_simulators
from repro.testing import timing_tolerance

PAPER_TABLE3 = {
    "Icelake": (145.8, 112.1, 82.0),
    "A100": (11.39, 5.06, 2.98),
    "MI250X": (16.14, 11.34, 3.22),
}


def checks(nx: int, nv: int):
    """Yield (claim, passed, evidence) triples."""
    # -- Table I ------------------------------------------------------------
    ok = all(
        classify_matrix(split_cyclic_banded(s.make_space().collocation_matrix()).q)
        is expected_type(s.degree, s.uniform)
        for s in paper_configurations(nx)
    )
    yield "Table I: all six Q classifications match", ok, "6/6 configs"

    # -- Fig. 1 -------------------------------------------------------------
    a = BSplineSpec(degree=3, n_points=nx).make_space().collocation_matrix()
    blocks = split_cyclic_banded(a)
    nnz_lam = int(np.count_nonzero(np.abs(blocks.lam) > 1e-14))
    yield ("Fig. 1/§IV-D: degree-3 λ corner has exactly 2 non-zeros",
           nnz_lam == 2, f"nnz = {nnz_lam}")

    # -- §IV byte counts -------------------------------------------------------
    base = solver_traffic(1000, 100_000, "pttrs", 3)
    fused = version_traffic(1000, 100_000, 1)
    spmv = version_traffic(1000, 100_000, 2)
    ok = (
        abs(base.loads_bytes / 1e9 - 1.58) / 1.58 < 0.05
        and abs(fused.loads_bytes / 1e9 - 3.16) / 3.16 < 0.05
        and abs(spmv.loads_bytes / 1e9 - 1.60) / 1.60 < 0.05
    )
    yield ("§IV: traffic model reproduces Nsight byte counts within 5%", ok,
           f"{base.loads_bytes / 1e9:.2f}/{fused.loads_bytes / 1e9:.2f}/"
           f"{spmv.loads_bytes / 1e9:.2f} GB vs 1.58/3.16/1.60")

    # -- Table III: host measured ladder -----------------------------------
    import time

    host_ms = []
    for version in (0, 1, 2):
        builder = SplineBuilder(BSplineSpec(degree=3, n_points=nx),
                                version=version)
        f = default_field(builder.interpolation_points(), nv).T.copy()
        best = float("inf")
        for _ in range(5):
            w = f.copy()
            t0 = time.perf_counter()
            builder.solve(w, in_place=True)
            best = min(best, time.perf_counter() - t0)
        host_ms.append(best * 1e3)
    # v0 and v1 differ by only a few percent at host sizes, so allow
    # scheduler noise on that rung; v2 must beat both outright.
    ok = (
        host_ms[2] < min(host_ms[0], host_ms[1]) * timing_tolerance(1.0)
        and host_ms[1] < host_ms[0] * timing_tolerance(1.25)
    )
    yield ("Table III: v0 > v1 > v2 ladder measured on host", ok,
           f"{host_ms[0]:.1f} > {host_ms[1]:.1f} > {host_ms[2]:.1f} ms")

    # -- Table III: device model within 5% -----------------------------------
    sims = paper_simulators()
    worst = max(
        abs(sims[d].solve_time(1000, 100_000, version=v) * 1e3 - PAPER_TABLE3[d][v])
        / PAPER_TABLE3[d][v]
        for d in PAPER_TABLE3
        for v in (0, 1, 2)
    )
    yield ("Table III: device model within 5% of all nine cells",
           worst < 0.05, f"worst {worst * 100:.1f}%")

    # -- §IV-E asymmetries ----------------------------------------------------
    fusion = {d: sims[d].solve_time(1000, 100_000, 0)
              / sims[d].solve_time(1000, 100_000, 1) for d in PAPER_TABLE3}
    spmv_gain = {d: sims[d].solve_time(1000, 100_000, 1)
                 / sims[d].solve_time(1000, 100_000, 2) for d in PAPER_TABLE3}
    yield ("§IV-E: fusion helps A100 most; spmv helps MI250X most",
           fusion["A100"] == max(fusion.values())
           and spmv_gain["MI250X"] == max(spmv_gain.values()),
           f"fusion {fusion['A100']:.2f}x vs {fusion['MI250X']:.2f}x; "
           f"spmv {spmv_gain['MI250X']:.2f}x vs {spmv_gain['A100']:.2f}x")

    # -- Table IV shape ------------------------------------------------------
    iters = {}
    for spec in paper_configurations(min(nx, 256)):
        b = GinkgoSplineBuilder(spec, solver="bicgstab", tolerance=1e-15,
                                cols_per_chunk=64)
        f = default_field(b.interpolation_points(), 64).T.copy()
        b.solve(np.ascontiguousarray(f))
        iters[(spec.degree, spec.uniform)] = b.last_iterations
    ok = (
        iters[(5, True)] >= iters[(3, True)]
        and iters[(5, False)] >= iters[(3, False)]
        and iters[(5, False)] >= iters[(5, True)]
    )
    yield ("Table IV: iterations grow with degree and non-uniformity",
           ok, str(iters))

    # -- Table V orderings -----------------------------------------------------
    metric = {}
    for spec in paper_configurations(64):
        effs = [
            sims[d.name].solve_bandwidth_gbs(
                1000, 100_000, degree=spec.degree, uniform=spec.uniform
            ) / d.peak_bandwidth_gbs
            for d in PAPER_DEVICES
        ]
        metric[(spec.degree, spec.uniform)] = pennycook_metric(effs)
    ok = (max(metric, key=metric.get) == (3, True)
          and min(metric, key=metric.get) == (5, False))
    yield ("Table V: P(a,p,H) best for uniform d3, worst for non-uniform d5",
           ok, f"P(3,uni) = {metric[(3, True)]:.3f} (paper 0.086), "
               f"P(5,non) = {metric[(5, False)]:.3f} (paper 0.038)")

    # -- Fig. 2 headline --------------------------------------------------------
    gd = sims["A100"].glups(1024, 100_000)
    gg = sims["A100"].glups(1024, 100_000, method="ginkgo", iterations=10)
    yield ("Fig. 2: direct (Kokkos-kernels) beats iterative (Ginkgo)",
           gd > gg, f"{gd:.2f} vs {gg:.3f} GLUPS (A100 model)")


def build_scoreboard(nx: int, nv: int) -> Table:
    table = Table(
        f"Reproduction scoreboard (host checks at N = {nx}, batch = {nv})",
        ["claim", "status", "evidence"],
    )
    for claim, passed, evidence in checks(nx, nv):
        table.add_row(claim, "PASS" if passed else "FAIL", evidence)
    return table


def render_scoreboard(nx: int, nv: int) -> str:
    return build_scoreboard(nx, nv).render()


def test_scoreboard(write_result, nx, nv):
    report = render_scoreboard(nx, nv)
    write_result("SUMMARY", report)
    assert "FAIL" not in report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes for a CI smoke run (informational, exit 0)",
    )
    parser.add_argument("--nx", type=int, default=256)
    parser.add_argument("--nv", type=int, default=20_000)
    args = parser.parse_args(argv)
    if args.quick:
        args.nx, args.nv = 128, 5_000
    table = build_scoreboard(args.nx, args.nv)
    report = table.render()
    print(report)
    # The machine-readable trajectory (BENCH_scoreboard.json) rides on
    # every run; CI uploads it so claim status is diffable across PRs.
    from repro.bench.report import write_bench_json

    path = write_bench_json(
        "scoreboard",
        {"nx": args.nx, "nv": args.nv, "quick": args.quick, **table.to_dict()},
        results_dir=Path(__file__).resolve().parent / "results",
    )
    print(f"\nwrote {path}")
    # Quick mode proves the whole scoreboard path runs at smoke sizes;
    # the timing-sensitive claims are only asserted at full sizes.
    if args.quick:
        return 0
    return 1 if "FAIL" in report else 0


if __name__ == "__main__":
    raise SystemExit(main())
