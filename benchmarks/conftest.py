"""Shared configuration for the benchmark harness.

Problem sizes default to host-friendly values so the whole harness runs in
minutes on a laptop; set the environment variables to reproduce the paper's
exact sizes:

=============== ================= ======================
 variable        default           paper value
=============== ================= ======================
 ``REPRO_NX``    256               1000 (§IV) / 1024 (§V)
 ``REPRO_NV``    20000             100000
 ``REPRO_FIG2_MAX_NV``  20000      100000
=============== ================= ======================

Every experiment writes its rendered table/series to ``results/<name>.txt``
next to this file (and echoes it to stdout when pytest runs with ``-s``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def nx() -> int:
    """Matrix size N_x (paper: 1000 in §IV, 1024 in §V)."""
    return env_int("REPRO_NX", 256)


@pytest.fixture(scope="session")
def nv() -> int:
    """Batch size N_v (paper: 100000)."""
    return env_int("REPRO_NV", 20_000)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write (and echo) a rendered experiment report."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _write
